//! # tpv — Taming Performance Variability caused by Client-Side Hardware Configuration
//!
//! A full Rust reproduction of Antoniou, Volos & Sazeides (IISWC 2024).
//! This facade crate re-exports the whole workspace; see the individual
//! crates for details:
//!
//! * [`math`] — deterministic, platform-pinned transcendental kernels.
//! * [`sim`] — discrete-event simulation substrate.
//! * [`hw`] — hardware configuration knobs of Table II.
//! * [`net`] — NIC/kernel/link timing models.
//! * [`services`] — Memcached-like KV, HDSearch (LSH), Social Network, Synthetic.
//! * [`loadgen`] — the workload-generator taxonomy of §II.
//! * [`stats`] — the statistics toolkit of §III.
//! * [`core`] — the experiment framework, analysis and recommendations.
//!
//! # Quickstart
//!
//! ```
//! use tpv::prelude::*;
//!
//! // Evaluate Memcached at 100K QPS with a low-power and a
//! // high-performance client, 5 runs each.
//! let experiment = Experiment::builder(Benchmark::memcached())
//!     .client(MachineConfig::low_power())
//!     .client(MachineConfig::high_performance())
//!     .server(ServerScenario::baseline())
//!     .qps(&[100_000.0])
//!     .runs(5)
//!     .run_duration(SimDuration::from_ms(50))
//!     .seed(1)
//!     .build();
//! let results = experiment.run();
//! let cell = &results.cells()[0];
//! assert!(cell.summary().avg_median_us() > 0.0);
//! ```

pub use tpv_core as core;
pub use tpv_hw as hw;
pub use tpv_loadgen as loadgen;
pub use tpv_math as math;
pub use tpv_net as net;
pub use tpv_services as services;
pub use tpv_sim as sim;
pub use tpv_stats as stats;

/// The most common imports for running experiments.
pub mod prelude {
    pub use tpv_core::analysis::{Comparison, Summary, Verdict};
    pub use tpv_core::experiment::{Benchmark, Experiment, ExperimentResults, ServerScenario};
    pub use tpv_core::recommend::{recommend, Recommendation};
    pub use tpv_hw::{CState, MachineConfig};
    pub use tpv_loadgen::{LoopMode, PointOfMeasurement, TimingMode};
    pub use tpv_sim::{SimDuration, SimTime};
    pub use tpv_stats::ci::ConfidenceInterval;
}
