//! Conformance suite for the closed-loop controller (`tpv_core::control`)
//! and the hedge seam it drives.
//!
//! The contracts under test:
//!
//! * **Permutation invariance** — permuting the fleet declaration (with a
//!   consistently permuted explicit assignment) changes nothing: window
//!   aggregates, per-shard tails, decisions and hedge counts are all
//!   bit-identical, because policies see label-sorted observations and
//!   every node's randomness is content-addressed.
//! * **Hedge accounting** — a hedge leg dispatches no kernel events
//!   (`EventCountCollector` is hedge-invariant), fires only for measured
//!   requests, never perturbs non-hedged nodes, and caps the hedged
//!   nodes' tails.
//! * **No-op policies** — a policy whose thresholds are never met is
//!   bit-identical to the do-nothing baseline.
//!
//! Worker-count bit-identity (1/2/3/4/8) is pinned by `GOLDEN_CONTROL`
//! in `golden_runtime.rs`.

use tpv_core::collect::EventCountCollector;
use tpv_core::control::{
    AdmissionThrottle, ControlResult, ControlSpec, Controller, DoNothing, HedgePlan, HedgeRequests,
    HedgeSpec, MitigationPolicy, RemediateNode, RerouteHotShard,
};
use tpv_core::pin::PinPolicy;
use tpv_core::runtime::run_sharded_collected_hedged_with;
use tpv_core::topology::{ClientNode, ShardPolicy, ShardSpec, TopologySpec};
use tpv_core::WindowedObserver;
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::SimDuration;

fn kv() -> ServiceConfig {
    ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()))
}

/// An 8-node fleet with two low-power stragglers (labels `bad3`,
/// `bad7`), mirroring the golden controlled fleet's shape.
fn fleet() -> Vec<ClientNode> {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    (0..8)
        .map(|i| {
            let (label, machine) = if i % 4 == 3 {
                (format!("bad{i}"), MachineConfig::low_power())
            } else {
                (format!("agent{i}"), MachineConfig::high_performance())
            };
            ClientNode::new(label, machine, gen, LinkConfig::cloudlab_lan(), 20_000.0)
        })
        .collect()
}

fn spec_with(nodes: Vec<ClientNode>, policy: ShardPolicy) -> ControlSpec {
    ControlSpec {
        service: kv(),
        shards: ShardSpec::uniform(MachineConfig::server_baseline(), 4).with_policy(policy),
        nodes,
        window: SimDuration::from_ms(20),
        windows: 3,
        warmup: SimDuration::from_ms(4),
    }
}

/// The bit-exact projection the invariance tests compare: per-window
/// aggregate rows (floats as bits), per-window shard tails, the decision
/// log rendered through labels, and the hedge count.
#[allow(clippy::type_complexity)]
fn project(r: &ControlResult) -> (Vec<[u64; 5]>, Vec<Vec<[u64; 2]>>, Vec<String>, u64) {
    let windows = r
        .windows
        .iter()
        .map(|w| {
            [
                w.aggregate.samples,
                w.aggregate.p99.as_ns(),
                w.aggregate.avg.as_ns(),
                w.aggregate.achieved_qps.to_bits(),
                w.aggregate.client_energy_core_secs.to_bits(),
            ]
        })
        .collect();
    let shards =
        r.windows.iter().map(|w| w.shards.iter().map(|s| [s.samples, s.p99.as_ns()]).collect()).collect();
    let decisions = r.decisions.iter().map(|d| format!("{}:{:?}", d.window, d.action)).collect();
    (windows, shards, decisions, r.total_hedges())
}

/// Permuting the fleet declaration (with the explicit assignment
/// permuted consistently) must not change one bit of a controlled run —
/// for every shipped policy.
#[test]
fn controlled_runs_are_declaration_order_invariant() {
    let threshold = SimDuration::from_us(150);
    let policies: Vec<Box<dyn MitigationPolicy>> = vec![
        Box::new(DoNothing),
        Box::new(HedgeRequests { threshold, deadline: SimDuration::from_us(120) }),
        Box::new(RerouteHotShard { min_ratio: 1.5, max_moves: 2 }),
        Box::new(RemediateNode { threshold, config: MachineConfig::high_performance() }),
        Box::new(AdmissionThrottle { threshold, factor: 0.5, floor: 0.2 }),
    ];
    let nodes = fleet();
    // Forward: round-robin as an explicit assignment. Reversed: the same
    // node→shard map, permuted consistently with the declaration.
    let forward = spec_with(nodes.clone(), ShardPolicy::Explicit((0..8).map(|i| i % 4).collect()));
    let reversed_nodes: Vec<ClientNode> = nodes.into_iter().rev().collect();
    let reversed = spec_with(reversed_nodes, ShardPolicy::Explicit((0..8).rev().map(|i| i % 4).collect()));
    for policy in &policies {
        let a = Controller::new(&forward, policy.as_ref()).run(2024, 3);
        let b = Controller::new(&reversed, policy.as_ref()).run(2024, 3);
        assert_eq!(
            project(&a),
            project(&b),
            "policy {}: fleet declaration order leaked into the controlled run",
            policy.name()
        );
    }
}

/// The hedge seam's accounting contract, checked against the raw kernel
/// entry point: hedging dispatches no events, fires at least once under
/// a straggler deadline, improves the pooled tail, and leaves every
/// non-hedged node's windowed stats untouched.
#[test]
fn hedging_changes_no_event_counts_and_only_hedged_nodes() {
    let service = kv();
    let nodes = fleet();
    let tier = ShardSpec::uniform(MachineConfig::server_baseline(), 4);
    let topo = TopologySpec {
        shards: Some(&tier),
        service: &service,
        server: &MachineConfig::server_baseline(),
        nodes: &nodes,
        duration: SimDuration::from_ms(40),
        warmup: SimDuration::from_ms(5),
        cohorts: &[],
    };
    let mut plan = HedgePlan::new();
    for label in ["bad3", "bad7"] {
        plan.set(
            label,
            HedgeSpec { deadline: SimDuration::from_us(120), backend: MachineConfig::server_baseline() },
        );
    }
    let n = nodes.len();
    let run = |hedge: Option<&HedgePlan>| {
        run_sharded_collected_hedged_with(&topo, 2024, 3, PinPolicy::Off, hedge, |shard, key| {
            (EventCountCollector::new(), WindowedObserver::for_partition(n, key, shard))
        })
    };
    let (plain, _, (plain_events, plain_obs)) = run(None);
    let (hedged, _, (hedged_events, hedged_obs)) = run(Some(&plan));

    // A hedge never dispatches extra kernel events: the duplicate leg is
    // analytic, so `EventCountCollector` cannot double-count.
    assert_eq!(plain_events.events(), hedged_events.events(), "hedging must not add kernel events");
    // Same requests measured either way; only their latencies improve.
    assert_eq!(plain.samples, hedged.samples);
    assert!(
        hedged.p99 < plain.p99,
        "hedging stragglers must cap the pooled tail ({:?} vs {:?})",
        hedged.p99,
        plain.p99
    );

    let measured = topo.duration - topo.warmup;
    let (plain_nodes, _) = plain_obs.into_windows(measured);
    let (hedged_nodes, _) = hedged_obs.into_windows(measured);
    let mut fired = 0;
    for (p, h) in plain_nodes.iter().zip(&hedged_nodes) {
        if nodes[p.node].label.starts_with("bad") {
            fired += h.hedges;
            assert!(h.p99 < p.p99, "{}: a hedged straggler's tail must improve", nodes[p.node].label);
        } else {
            assert_eq!(p, h, "{}: hedging must not perturb a non-hedged node", nodes[p.node].label);
            assert_eq!(h.hedges, 0, "{}: non-hedged nodes cannot fire hedges", nodes[p.node].label);
        }
    }
    assert!(fired > 0, "the 120 µs deadline must fire against ~210 µs straggler tails");
}

/// A policy whose thresholds are never met must leave the run
/// bit-identical to the do-nothing baseline: unmet mitigation is not
/// merely similar, it is the absence of mitigation.
#[test]
fn unmet_thresholds_reproduce_the_baseline_bit_for_bit() {
    let spec = spec_with(fleet(), ShardPolicy::RoundRobin);
    // Far above any tail this fleet produces (~220 µs stragglers).
    let unreachable = SimDuration::from_ms(50);
    let policies: Vec<Box<dyn MitigationPolicy>> = vec![
        Box::new(HedgeRequests { threshold: unreachable, deadline: SimDuration::from_us(120) }),
        Box::new(RerouteHotShard { min_ratio: 1e9, max_moves: 2 }),
        Box::new(RemediateNode { threshold: unreachable, config: MachineConfig::high_performance() }),
        Box::new(AdmissionThrottle { threshold: unreachable, factor: 0.5, floor: 0.2 }),
    ];
    let baseline = Controller::new(&spec, &DoNothing).run(7, 2);
    for policy in &policies {
        let run = Controller::new(&spec, policy.as_ref()).run(7, 2);
        assert!(run.decisions.is_empty(), "policy {}: thresholds unmet, yet it acted", policy.name());
        assert_eq!(
            project(&run),
            project(&baseline),
            "policy {}: an idle controller must be the baseline",
            policy.name()
        );
    }
}

/// The spread helpers answer the study's question directly: remediation
/// collapses the post-decision pooled spread toward 1 while the baseline
/// keeps reporting the straggler tail in every window.
#[test]
fn remediation_reduces_the_post_decision_spread() {
    let spec = spec_with(fleet(), ShardPolicy::RoundRobin);
    let baseline = Controller::new(&spec, &DoNothing).run(2024, 3);
    let remediated = Controller::new(
        &spec,
        &RemediateNode { threshold: SimDuration::from_us(150), config: MachineConfig::high_performance() },
    )
    .run(2024, 3);
    assert!(
        remediated.worst_window_p99(1) < baseline.worst_window_p99(1),
        "remediation must beat the baseline's post-decision tail"
    );
    // Both runs saw the same pre-decision window 0; only the mitigated
    // windows diverge.
    assert_eq!(baseline.windows[0].aggregate, remediated.windows[0].aggregate);
}
