//! Stream-position and bulk-generation contracts behind `tpv_math`.
//!
//! The PR that introduced `tpv_math` swapped every hot-path sampler from
//! libm onto pinned polynomial kernels and added bulk uniform generation
//! plus batched gap pre-sampling. Both changes are only safe if they are
//! *invisible to the RNG stream*: a sampler must consume exactly as many
//! draws as before, and a bulk fill must produce exactly the bits the
//! scalar path would. These tests pin those two contracts so a future
//! "optimization" cannot silently shift every downstream stream.

use tpv::loadgen::{ArrivalKind, ArrivalProcess, GapBuffer};
use tpv::sim::dist::{
    Deterministic, Empirical, Exponential, GeneralizedPareto, Gev, LogNormal, Normal, Pareto, Sampler,
    Uniform, Zipf,
};
use tpv::sim::{SimDuration, SimRng};

/// Counts the `next_u64` draws `f` consumed from `rng`'s stream.
///
/// Works by probing: advance a pristine clone k draws and check whether
/// its next few outputs match the used generator's. Four consecutive
/// equal xoshiro256++ outputs make a state collision astronomically
/// unlikely, so the first matching k is the draw count.
fn draws_consumed(pristine: &SimRng, used: &SimRng) -> usize {
    for k in 0..=8 {
        let mut probe = pristine.clone();
        for _ in 0..k {
            probe.next_u64();
        }
        let mut b = used.clone();
        if (0..4).all(|_| probe.next_u64() == b.next_u64()) {
            return k;
        }
    }
    panic!("sampler consumed more than 8 draws");
}

fn assert_draws<S: Sampler>(dist: &S, expected: usize, what: &str) {
    for seed in [1u64, 2024, 77] {
        let pristine = SimRng::seed_from_u64(seed);
        let mut rng = pristine.clone();
        dist.sample(&mut rng);
        let got = draws_consumed(&pristine, &rng);
        assert_eq!(got, expected, "{what} consumed {got} draws, contract says {expected}");
    }
}

/// Every sampler's draws-per-sample is part of the determinism contract:
/// Exponential/Pareto/GPD/GEV/Uniform/Zipf/Empirical = 1, Normal and
/// LogNormal = 2 (Box–Muller pair, second variate discarded),
/// Deterministic = 0. The tpv_math swap must not have changed any of
/// them — a different count would shift every later draw on the stream.
#[test]
fn samplers_consume_the_pinned_number_of_draws() {
    assert_draws(&Deterministic::new(3.0), 0, "Deterministic");
    assert_draws(&Uniform::new(2.0, 5.0), 1, "Uniform");
    assert_draws(&Exponential::with_mean(10.0), 1, "Exponential");
    assert_draws(&Normal::new(5.0, 2.0), 2, "Normal (Box-Muller pair)");
    assert_draws(&LogNormal::with_mean(100.0, 0.5), 2, "LogNormal (Box-Muller pair)");
    assert_draws(&Pareto::new(1.0, 1.5), 1, "Pareto");
    assert_draws(&GeneralizedPareto::new(0.0, 1.0, 0.2), 1, "GeneralizedPareto");
    assert_draws(&GeneralizedPareto::new(0.0, 1.0, 0.0), 1, "GeneralizedPareto (shape 0)");
    assert_draws(&Gev::new(0.0, 1.0, 0.3), 1, "Gev");
    assert_draws(&Gev::new(0.0, 1.0, 0.0), 1, "Gev (Gumbel)");
    assert_draws(&Zipf::new(1000, 0.99), 1, "Zipf");
    assert_draws(&Empirical::new(vec![1.0, 2.0, 3.0]), 1, "Empirical");
}

/// Arrival gap draws follow the same contract, expressed through
/// `uniforms_per_gap` (which the batching layer trusts for stride math).
#[test]
fn arrival_gap_strides_match_actual_consumption() {
    let gap = SimDuration::from_us(50);
    for (kind, what) in [
        (ArrivalKind::Exponential, "Exponential arrivals"),
        (ArrivalKind::Deterministic, "Deterministic arrivals"),
        (ArrivalKind::LogNormal(0.7), "LogNormal arrivals"),
    ] {
        let process = ArrivalProcess::new(kind, gap);
        let pristine = SimRng::seed_from_u64(42);
        let mut rng = pristine.clone();
        process.next_gap(&mut rng);
        let got = draws_consumed(&pristine, &rng);
        assert_eq!(got, process.uniforms_per_gap(), "{what}: stride disagrees with consumption");
    }
}

/// Bulk uniform generation is a pure loop-shape change: `fill_f64` must
/// produce, bit for bit, the values `next_f64` would produce called
/// sequentially, leaving the generator at the identical stream position.
#[test]
fn bulk_fill_is_bit_identical_to_sequential_draws() {
    for seed in [0u64, 7, 2024, u64::MAX] {
        for len in [0usize, 1, 2, 63, 64, 65, 1024] {
            let mut bulk_rng = SimRng::seed_from_u64(seed);
            let mut scalar_rng = SimRng::seed_from_u64(seed);
            let mut bulk = vec![0.0f64; len];
            bulk_rng.fill_f64(&mut bulk);
            let scalar: Vec<f64> = (0..len).map(|_| scalar_rng.next_f64()).collect();
            for (i, (a, b)) in bulk.iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} len {len} slot {i}");
            }
            assert_eq!(
                bulk_rng.next_u64(),
                scalar_rng.next_u64(),
                "stream positions diverged after fill (seed {seed}, len {len})"
            );
        }
    }
}

/// The batched gap path (`GapBuffer`) pre-draws uniforms in blocks but
/// must emit the exact gap sequence the scalar `next_gap` path emits
/// from the same stream — including when the process is swapped
/// mid-stream at a phase boundary and the unconsumed tail is
/// re-transformed.
#[test]
fn gap_buffer_reproduces_the_scalar_gap_sequence() {
    let p1 = ArrivalProcess::new(ArrivalKind::LogNormal(0.6), SimDuration::from_us(40));
    let p2 = ArrivalProcess::new(ArrivalKind::LogNormal(0.6), SimDuration::from_us(10));
    for switch_at in [0usize, 5, 64, 100] {
        let mut buf_rng = SimRng::seed_from_u64(9000 + switch_at as u64);
        let mut scalar_rng = buf_rng.clone();
        let mut buf = GapBuffer::new();
        let mut process = p1;
        for i in 0..200 {
            if i == switch_at {
                process = p2;
                buf.reconfigure(&process);
            }
            let batched = buf.next_gap(&process, &mut buf_rng);
            let scalar = process.next_gap(&mut scalar_rng);
            assert_eq!(batched, scalar, "switch_at {switch_at}, gap {i}");
        }
    }
}
