//! Conformance tests of the phase-scheduled dynamic kernel: degenerate
//! schedules collapse to the static runtime bit for bit, real schedules
//! produce visible regime changes, and every determinism contract of the
//! static topology kernel (same-seed reproducibility, permutation
//! invariance) survives the phase layer.

use tpv_core::runtime::{run_once, run_phased, run_topology, RunSpec};
use tpv_core::topology::{ClientNode, NodeDynamics, TopologyError, TopologySpec};
use tpv_hw::{DynamicMachine, MachineConfig};
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{PhaseSchedule, SimDuration, SimTime};

fn kv_service() -> ServiceConfig {
    ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }))
}

const DURATION: SimDuration = SimDuration::from_ms(60);
const WARMUP: SimDuration = SimDuration::from_ms(6);

fn topo<'a>(
    service: &'a ServiceConfig,
    server: &'a MachineConfig,
    nodes: &'a [ClientNode],
) -> TopologySpec<'a> {
    TopologySpec { shards: None, service, server, nodes, duration: DURATION, warmup: WARMUP, cohorts: &[] }
}

/// A single all-covering phase — even with every aspect spelled out
/// redundantly — must reproduce the static kernel bit for bit.
#[test]
fn degenerate_single_phase_schedule_is_bit_identical_to_static() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let machine = MachineConfig::low_power();
    let generator = GeneratorSpec::mutilate();
    let link = LinkConfig::cloudlab_lan();
    let spec = RunSpec {
        service: &service,
        server: &server,
        client: &machine,
        generator: &generator,
        link: &link,
        qps: 80_000.0,
        duration: DURATION,
        warmup: WARMUP,
    };
    let static_result = run_once(&spec, 17);

    let dynamics = NodeDynamics::new(PhaseSchedule::single())
        .with_machines(vec![machine])
        .with_rates(vec![1.0])
        .with_links(vec![link]);
    let nodes = [spec.client_node().with_dynamics(dynamics)];
    let phased = run_phased(&topo(&service, &server, &nodes), 17).expect("valid phased topology");
    assert_eq!(
        phased.fleet.aggregate, static_result,
        "a degenerate schedule must not perturb the static kernel"
    );
    // The whole run is one phase whose stats match the aggregate.
    assert_eq!(phased.phases.len(), 1);
    assert_eq!(phased.phases[0].samples, static_result.samples);
    assert_eq!(phased.phases[0].p99, static_result.p99);
    assert_eq!(phased.phases[0].p50, static_result.p50);
}

/// `run_phased` on a static topology is `run_topology` plus one
/// all-covering phase — same kernel pass, same bits.
#[test]
fn run_phased_on_static_topology_matches_run_topology() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(40);
    let nodes: Vec<ClientNode> = (0..3)
        .map(|i| {
            ClientNode::new(
                format!("n{i}"),
                MachineConfig::high_performance(),
                gen,
                LinkConfig::cloudlab_lan(),
                30_000.0,
            )
        })
        .collect();
    let spec = topo(&service, &server, &nodes);
    let fleet = run_topology(&spec, 23);
    let phased = run_phased(&spec, 23).expect("valid phased topology");
    assert_eq!(phased.fleet, fleet, "phased view must not perturb the fleet result");
    assert_eq!(phased.phases.len(), 1, "static topology has one merged phase");
    assert_eq!(phased.phases[0].samples, fleet.aggregate.samples);
}

/// A mid-run machine decay (HP -> LP) is visible as a latency regime
/// change exactly at the boundary.
#[test]
fn two_phase_machine_flip_shows_a_regime_change() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let boundary = SimTime::ZERO + DURATION / 2;
    let plan = DynamicMachine::new(
        PhaseSchedule::new(vec![boundary]),
        vec![MachineConfig::high_performance(), MachineConfig::low_power()],
    );
    let dynamics = NodeDynamics::new(plan.schedule().clone()).with_machine_plan(plan);
    let nodes = [ClientNode::new(
        "decaying",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        100_000.0,
    )
    .with_dynamics(dynamics)];
    let phased = run_phased(&topo(&service, &server, &nodes), 5).expect("valid phased topology");
    assert_eq!(phased.phases.len(), 2);
    let before = phased.phase(0).unwrap();
    let after = phased.phase(1).unwrap();
    assert!(before.samples > 500 && after.samples > 500);
    assert!(
        after.p99.as_us() > before.p99.as_us() * 1.5,
        "LP phase p99 {} must dwarf HP phase p99 {}",
        after.p99,
        before.p99
    );
    assert!(after.avg > before.avg);
    // The whole-run per-node result blends both regimes and reports the
    // deep wakes only the decayed half can produce.
    let node = &phased.fleet.nodes[0].result;
    assert!(node.client_wakes[2] + node.client_wakes[3] > 0);
}

/// Stepped load: each phase's achieved rate tracks its multiplier.
#[test]
fn stepped_load_tracks_the_multipliers() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let rate = PhasedRate::new(PhaseSchedule::new(vec![SimTime::ZERO + DURATION / 2]), vec![0.5, 2.0]);
    let dynamics = NodeDynamics::new(rate.schedule().clone()).with_rate_plan(rate);
    let nodes = [ClientNode::new(
        "stepped",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        80_000.0,
    )
    .with_dynamics(dynamics)];
    let spec = topo(&service, &server, &nodes);
    let phased = run_phased(&spec, 9).expect("valid phased topology");
    let low = phased.phase(0).unwrap();
    let high = phased.phase(1).unwrap();
    assert!((low.achieved_qps / 40_000.0 - 1.0).abs() < 0.1, "low phase {}", low.achieved_qps);
    assert!((high.achieved_qps / 160_000.0 - 1.0).abs() < 0.1, "high phase {}", high.achieved_qps);
    // The reported target is the time-weighted offered load. Phase 0
    // covers [6ms, 30ms) of the 54ms window, phase 1 covers [30ms, 60ms).
    let expected = 80_000.0 * (0.5 * 24.0 + 2.0 * 30.0) / 54.0;
    let agg = &phased.fleet.aggregate;
    assert!((agg.target_qps / expected - 1.0).abs() < 1e-9, "target {}", agg.target_qps);
    assert!((agg.achieved_qps / agg.target_qps - 1.0).abs() < 0.1);
}

/// Dynamic nodes keep the fleet's permutation-invariance contract: the
/// declaration order of a mixed static/dynamic fleet is presentation.
#[test]
fn dynamic_fleets_are_permutation_invariant() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(40);
    let link = LinkConfig::cloudlab_lan();
    let decay = NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(30)]))
        .with_machines(vec![MachineConfig::high_performance(), MachineConfig::low_power()]);
    let surge = NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(20)])).with_rates(vec![1.0, 1.5]);
    let base = [
        ClientNode::new("decay", MachineConfig::high_performance(), gen, link, 20_000.0).with_dynamics(decay),
        ClientNode::new("steady", MachineConfig::high_performance(), gen, link, 30_000.0),
        ClientNode::new("surge", MachineConfig::high_performance(), gen, link, 10_000.0).with_dynamics(surge),
    ];
    let run_order = |order: &[usize]| {
        let nodes: Vec<ClientNode> = order.iter().map(|&i| base[i].clone()).collect();
        run_phased(&topo(&service, &server, &nodes), 31).expect("valid phased topology")
    };
    let fwd = run_order(&[0, 1, 2]);
    let rev = run_order(&[2, 1, 0]);
    assert_eq!(fwd.fleet.aggregate, rev.fleet.aggregate, "aggregate must ignore declaration order");
    assert_eq!(fwd.phases, rev.phases, "per-phase stats must ignore declaration order");
    for label in ["decay", "steady", "surge"] {
        assert_eq!(
            fwd.fleet.node(label).unwrap().result,
            rev.fleet.node(label).unwrap().result,
            "node '{label}' must be order-independent"
        );
    }
    // A dynamic node and its static twin are different content: the
    // static "steady" node's stream is unchanged by its neighbours'
    // dynamics being declared at all.
    let static_node = &base[1];
    let twin = static_node.clone().with_dynamics(NodeDynamics::new(PhaseSchedule::single()));
    assert_ne!(static_node.content_key(), twin.content_key());
}

/// Same seed, same dynamic topology: bit-identical, and distinct seeds
/// differ.
#[test]
fn dynamic_runs_are_deterministic_per_seed() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let dynamics = NodeDynamics::new(PhaseSchedule::stepped(SimDuration::from_ms(20), 3))
        .with_rates(vec![0.8, 1.4, 1.0])
        .with_machines(vec![
            MachineConfig::high_performance(),
            MachineConfig::high_performance(),
            MachineConfig::low_power(),
        ])
        .with_links(vec![LinkConfig::cloudlab_lan(), LinkConfig::cross_rack(), LinkConfig::cloudlab_lan()]);
    let nodes = [ClientNode::new(
        "busy",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        60_000.0,
    )
    .with_dynamics(dynamics)];
    let spec = topo(&service, &server, &nodes);
    let a = run_phased(&spec, 42).expect("valid phased topology");
    let b = run_phased(&spec, 42).expect("valid phased topology");
    assert_eq!(a, b);
    let c = run_phased(&spec, 43).expect("valid phased topology");
    assert_ne!(a.fleet.aggregate, c.fleet.aggregate);
}

/// A phased rate on a closed-loop generator is rejected with a typed
/// error: closed loops pace by think time, so the rate plan could not
/// change the offered load it would be reported as.
#[test]
fn phased_rate_on_closed_loop_is_rejected() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let dynamics =
        NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(30)])).with_rates(vec![0.5, 2.0]);
    let nodes = [ClientNode::new(
        "closed",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate().closed_loop(SimDuration::from_us(100)),
        LinkConfig::cloudlab_lan(),
        10_000.0,
    )
    .with_dynamics(dynamics)];
    let err = run_phased(&topo(&service, &server, &nodes), 1).unwrap_err();
    assert_eq!(err, TopologyError::PhasedRateClosedLoop { label: "closed".into() });
    assert!(err.to_string().contains("require an open-loop generator"), "{err}");
}

/// A rate plan carrying a non-finite or non-positive multiplier is
/// rejected with a typed error before it can poison `offered_qps()` and
/// every mean-multiplier fold with NaN. `PhasedRate::new` panics on
/// these, so the hole is plans built through the unchecked
/// (deserialization-shaped) seam.
#[test]
fn non_finite_phase_rates_are_rejected() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let schedule = PhaseSchedule::new(vec![SimTime::from_ms(30)]);
    let build = |multipliers: Vec<f64>| {
        let rate = PhasedRate::unchecked(schedule.clone(), multipliers);
        let dynamics = NodeDynamics::new(schedule.clone()).with_rate_plan(rate);
        [ClientNode::new(
            "poisoned",
            MachineConfig::high_performance(),
            GeneratorSpec::mutilate(),
            LinkConfig::cloudlab_lan(),
            10_000.0,
        )
        .with_dynamics(dynamics)]
    };

    let nan_nodes = build(vec![1.0, f64::NAN]);
    let err = run_phased(&topo(&service, &server, &nan_nodes), 1).unwrap_err();
    assert!(
        matches!(
            err,
            TopologyError::NonFinitePhaseRate { ref label, phase: 1, multiplier } if label == "poisoned" && multiplier.is_nan()
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("finite and positive"), "{err}");
    assert!(err.to_string().contains("NaN"), "{err}");

    let negative_nodes = build(vec![-0.5, 2.0]);
    let err = run_phased(&topo(&service, &server, &negative_nodes), 1).unwrap_err();
    assert_eq!(
        err,
        TopologyError::NonFinitePhaseRate { label: "poisoned".into(), phase: 0, multiplier: -0.5 }
    );
    assert!(err.to_string().contains("-0.5"), "{err}");

    let inf_nodes = build(vec![1.0, f64::INFINITY]);
    let err = run_phased(&topo(&service, &server, &inf_nodes), 1).unwrap_err();
    assert!(matches!(err, TopologyError::NonFinitePhaseRate { phase: 1, .. }), "{err:?}");

    // A well-formed plan through the same seam still validates.
    let fine_nodes = build(vec![0.5, 2.0]);
    assert!(run_phased(&topo(&service, &server, &fine_nodes), 1).is_ok());
}

/// The merged schedule is the union of node schedules, and per-phase
/// stats follow it.
#[test]
fn merged_schedule_unions_node_boundaries() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(40);
    let link = LinkConfig::cloudlab_lan();
    let nodes = vec![
        ClientNode::new("a", MachineConfig::high_performance(), gen, link, 20_000.0).with_dynamics(
            NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(20)])).with_rates(vec![1.0, 1.3]),
        ),
        ClientNode::new("b", MachineConfig::high_performance(), gen, link, 20_000.0).with_dynamics(
            NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(40)])).with_rates(vec![1.3, 1.0]),
        ),
    ];
    let spec = topo(&service, &server, &nodes);
    let merged = spec.merged_schedule();
    assert_eq!(merged.boundaries(), &[SimTime::from_ms(20), SimTime::from_ms(40)]);
    let phased = run_phased(&spec, 3).expect("valid phased topology");
    assert_eq!(phased.phases.len(), 3);
    assert!(phased.phases.iter().all(|p| p.samples > 0));
}
