//! Validates the testbed against Little's law and the paper's synthetic-
//! workload linearity check ("the response time increases linearly with
//! the increase of the added delay which validates the implementation"),
//! at three levels: the 1×1 testbed, pooled multi-node fleets, and the
//! per-phase regimes of a stepped-load dynamic run.

use tpv::core::runtime::{run_phased, run_topology};
use tpv::core::topology::{uniform_fleet, ClientNode, NodeDynamics, TopologySpec};
use tpv::loadgen::GeneratorSpec;
use tpv::net::LinkConfig;
use tpv::prelude::*;
use tpv::services::kv::KvConfig;
use tpv::services::{ServiceConfig, ServiceKind};
use tpv::sim::{PhaseSchedule, SimTime};
use tpv::stats::desc::littles_law_concurrency;

fn synthetic_avg_us(delay_us: u64, qps: f64, seed: u64) -> (f64, f64) {
    let results = Experiment::builder(Benchmark::synthetic(SimDuration::from_us(delay_us)))
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[qps])
        .runs(5)
        .run_duration(SimDuration::from_ms(80))
        .seed(seed)
        .build()
        .run();
    let cell = results.cell("HP", "SMToff", qps).unwrap();
    let achieved = cell.samples.iter().map(|r| r.achieved_qps).sum::<f64>() / cell.samples.len() as f64;
    (cell.summary().avg_median_us(), achieved)
}

#[test]
fn response_grows_linearly_with_added_delay_at_low_load() {
    // 2K QPS: negligible queueing; each 200us of delay adds ~200us
    // end-to-end (mild queueing growth is expected and bounded).
    let (a0, _) = synthetic_avg_us(0, 2_000.0, 1);
    let (a200, _) = synthetic_avg_us(200, 2_000.0, 2);
    let (a400, _) = synthetic_avg_us(400, 2_000.0, 3);
    let d1 = a200 - a0;
    let d2 = a400 - a200;
    assert!((d1 - 200.0).abs() < 40.0, "0->200us step added {d1:.1}us");
    assert!((d2 - 200.0).abs() < 40.0, "200->400us step added {d2:.1}us");
}

#[test]
fn littles_law_concurrency_stays_below_worker_count() {
    // The paper bounds its synthetic QPS so concurrency < 10 workers.
    for (delay_us, qps) in [(400u64, 20_000.0f64), (100, 20_000.0), (400, 5_000.0)] {
        let (avg_us, achieved) = synthetic_avg_us(delay_us, qps, 7 + delay_us);
        // Use the server-side portion (approximately service time) for L.
        let service_secs = (delay_us as f64 + 10.0) * 1e-6;
        let concurrency = littles_law_concurrency(achieved, service_secs);
        assert!(
            concurrency < 10.5,
            "delay {delay_us}us @ {qps} QPS: concurrency {concurrency:.1} exceeds workers"
        );
        assert!(avg_us > delay_us as f64, "avg must include the added delay");
    }
}

#[test]
fn achieved_rate_tracks_offered_rate_when_unsaturated() {
    let (_, achieved) = synthetic_avg_us(100, 10_000.0, 42);
    let ratio = achieved / 10_000.0;
    assert!((0.9..1.1).contains(&ratio), "achieved/offered = {ratio:.3}");
}

fn kv_service() -> ServiceConfig {
    ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig::default()))
}

/// Pooling a fleet must conserve Little's law: the pooled concurrency
/// `λ_pooled · W_pooled` equals the sum of per-node `λ_i · W_i` (mean
/// concurrency is additive across independent request streams).
#[test]
fn fleet_pooling_conserves_littles_law() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        120_000.0,
        4,
    );
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(80),
        warmup: SimDuration::from_ms(8),
        cohorts: &[],
    };
    let fleet = run_topology(&topo, 11);
    let agg = &fleet.aggregate;
    let pooled_l = littles_law_concurrency(agg.achieved_qps, agg.avg.as_secs());
    let summed_l: f64 = fleet
        .nodes
        .iter()
        .map(|n| littles_law_concurrency(n.result.achieved_qps, n.result.avg.as_secs()))
        .sum();
    assert!(pooled_l > 1.0, "the fleet must hold real concurrency, got {pooled_l:.2}");
    let rel = (pooled_l - summed_l).abs() / summed_l;
    assert!(rel < 0.02, "pooled L {pooled_l:.3} vs per-node sum {summed_l:.3} ({rel:.3} off)");
    // Sanity: every node achieved its share of the offered load.
    for n in &fleet.nodes {
        let ratio = n.result.achieved_qps / n.result.target_qps;
        assert!((0.85..1.15).contains(&ratio), "{}: achieved/target {ratio:.3}", n.label);
    }
}

/// Per-phase conformance: in a stepped-load run each phase obeys
/// `L = λ·W` with its *own* rate, so the high-load phase holds
/// proportionally more concurrency than the low-load phase.
#[test]
fn stepped_load_phases_obey_littles_law_per_phase() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let duration = SimDuration::from_ms(80);
    let dynamics =
        NodeDynamics::new(PhaseSchedule::new(vec![SimTime::from_ms(40)])).with_rates(vec![0.5, 2.0]);
    let nodes = [ClientNode::new(
        "stepped",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        100_000.0,
    )
    .with_dynamics(dynamics)];
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration,
        warmup: SimDuration::from_ms(8),
        cohorts: &[],
    };
    let phased = run_phased(&topo, 29).expect("valid phased topology");
    let low = phased.phase(0).unwrap();
    let high = phased.phase(1).unwrap();
    // Each phase achieves its own offered rate...
    assert!((low.achieved_qps / 50_000.0 - 1.0).abs() < 0.1, "low {:.0}", low.achieved_qps);
    assert!((high.achieved_qps / 200_000.0 - 1.0).abs() < 0.1, "high {:.0}", high.achieved_qps);
    // ...and holds the concurrency Little's law predicts for it.
    let l_low = littles_law_concurrency(low.achieved_qps, low.avg.as_secs());
    let l_high = littles_law_concurrency(high.achieved_qps, high.avg.as_secs());
    let rate_ratio = high.achieved_qps / low.achieved_qps;
    let l_ratio = l_high / l_low;
    assert!(
        l_ratio >= rate_ratio * 0.9,
        "4x the arrival rate must hold at least ~4x the concurrency: L ratio {l_ratio:.2}, rate ratio {rate_ratio:.2}"
    );
    // The whole-run aggregate blends the two regimes: its concurrency
    // sits strictly between the per-phase extremes.
    let agg = &phased.fleet.aggregate;
    let l_agg = littles_law_concurrency(agg.achieved_qps, agg.avg.as_secs());
    assert!(l_low < l_agg && l_agg < l_high, "blend {l_agg:.2} outside ({l_low:.2}, {l_high:.2})");
}
