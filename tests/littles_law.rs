//! Validates the testbed against Little's law and the paper's synthetic-
//! workload linearity check ("the response time increases linearly with
//! the increase of the added delay which validates the implementation").

use tpv::prelude::*;
use tpv::stats::desc::littles_law_concurrency;

fn synthetic_avg_us(delay_us: u64, qps: f64, seed: u64) -> (f64, f64) {
    let results = Experiment::builder(Benchmark::synthetic(SimDuration::from_us(delay_us)))
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[qps])
        .runs(5)
        .run_duration(SimDuration::from_ms(80))
        .seed(seed)
        .build()
        .run();
    let cell = results.cell("HP", "SMToff", qps).unwrap();
    let achieved = cell.samples.iter().map(|r| r.achieved_qps).sum::<f64>() / cell.samples.len() as f64;
    (cell.summary().avg_median_us(), achieved)
}

#[test]
fn response_grows_linearly_with_added_delay_at_low_load() {
    // 2K QPS: negligible queueing; each 200us of delay adds ~200us
    // end-to-end (mild queueing growth is expected and bounded).
    let (a0, _) = synthetic_avg_us(0, 2_000.0, 1);
    let (a200, _) = synthetic_avg_us(200, 2_000.0, 2);
    let (a400, _) = synthetic_avg_us(400, 2_000.0, 3);
    let d1 = a200 - a0;
    let d2 = a400 - a200;
    assert!((d1 - 200.0).abs() < 40.0, "0->200us step added {d1:.1}us");
    assert!((d2 - 200.0).abs() < 40.0, "200->400us step added {d2:.1}us");
}

#[test]
fn littles_law_concurrency_stays_below_worker_count() {
    // The paper bounds its synthetic QPS so concurrency < 10 workers.
    for (delay_us, qps) in [(400u64, 20_000.0f64), (100, 20_000.0), (400, 5_000.0)] {
        let (avg_us, achieved) = synthetic_avg_us(delay_us, qps, 7 + delay_us);
        // Use the server-side portion (approximately service time) for L.
        let service_secs = (delay_us as f64 + 10.0) * 1e-6;
        let concurrency = littles_law_concurrency(achieved, service_secs);
        assert!(
            concurrency < 10.5,
            "delay {delay_us}us @ {qps} QPS: concurrency {concurrency:.1} exceeds workers"
        );
        assert!(avg_us > delay_us as f64, "avg must include the added delay");
    }
}

#[test]
fn achieved_rate_tracks_offered_rate_when_unsaturated() {
    let (_, achieved) = synthetic_avg_us(100, 10_000.0, 42);
    let ratio = achieved / 10_000.0;
    assert!((0.9..1.1).contains(&ratio), "achieved/offered = {ratio:.3}");
}
