//! Point-of-measurement invariants at the whole-testbed level (§II):
//! NIC ≤ kernel ≤ in-app timestamps, which means NIC-measured latency is
//! a lower bound and the client-side inflation lives above the NIC.

use tpv::loadgen::PointOfMeasurement;
use tpv::prelude::*;
use tpv::services::kv::KvConfig;
use tpv::services::{ServiceConfig, ServiceKind};

fn run_with_pom(pom: PointOfMeasurement, client: MachineConfig, seed: u64) -> f64 {
    let mut bench = Benchmark::memcached();
    bench.service =
        ServiceConfig::new(ServiceKind::Memcached(KvConfig { preload_keys: 2_000, ..KvConfig::default() }));
    bench.generator = bench.generator.with_pom(pom);
    let results = Experiment::builder(bench)
        .client(client)
        .server(ServerScenario::baseline())
        .qps(&[50_000.0])
        .runs(6)
        .run_duration(SimDuration::from_ms(60))
        .seed(seed)
        .build()
        .run();
    results.cells()[0].summary().avg_median_us()
}

#[test]
fn measurement_points_are_ordered_for_lp() {
    let nic = run_with_pom(PointOfMeasurement::Nic, MachineConfig::low_power(), 5);
    let kernel = run_with_pom(PointOfMeasurement::Kernel, MachineConfig::low_power(), 5);
    let app = run_with_pom(PointOfMeasurement::InApp, MachineConfig::low_power(), 5);
    assert!(nic <= kernel + 1.0, "nic {nic:.1} > kernel {kernel:.1}");
    assert!(kernel <= app + 1.0, "kernel {kernel:.1} > app {app:.1}");
    // On LP, the app-level stamp carries the big wake-path inflation.
    assert!(app > nic + 20.0, "LP in-app inflation missing: nic {nic:.1}, app {app:.1}");
}

#[test]
fn nic_measurements_nearly_agree_across_clients() {
    // Hardware timestamps bypass the client's wake path: LP and HP agree
    // (up to the send-side schedule disruption, which stays small at low
    // load).
    let lp = run_with_pom(PointOfMeasurement::Nic, MachineConfig::low_power(), 9);
    let hp = run_with_pom(PointOfMeasurement::Nic, MachineConfig::high_performance(), 9);
    let gap = lp / hp;
    assert!(gap < 1.25, "NIC-level LP/HP gap should be small, got {gap:.2}");
}

#[test]
fn in_app_measurements_disagree_across_clients() {
    let lp = run_with_pom(PointOfMeasurement::InApp, MachineConfig::low_power(), 9);
    let hp = run_with_pom(PointOfMeasurement::InApp, MachineConfig::high_performance(), 9);
    let gap = lp / hp;
    assert!(gap > 1.4, "in-app LP/HP gap should be large, got {gap:.2}");
}
