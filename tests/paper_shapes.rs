//! Reduced-scale checks of the paper's Findings 1–3 — the inequalities
//! that must hold for the reproduction to be meaningful. (Full-scale
//! regeneration lives in `tpv-bench`; these run in CI time budgets.)

use tpv::core::analysis::compare;
use tpv::prelude::*;
use tpv::services::kv::KvConfig;
use tpv::services::{ServiceConfig, ServiceKind};

fn memcached_fast() -> Benchmark {
    let mut b = Benchmark::memcached();
    // Smaller keyspace keeps per-run setup cheap in debug builds.
    b.service =
        ServiceConfig::new(ServiceKind::Memcached(KvConfig { preload_keys: 2_000, ..KvConfig::default() }));
    b
}

#[test]
fn finding1_lp_client_inflates_memcached_measurements() {
    let results = Experiment::builder(memcached_fast())
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[50_000.0])
        .runs(8)
        .run_duration(SimDuration::from_ms(60))
        .seed(11)
        .build()
        .run();
    let lp = results.cell("LP", "SMToff", 50_000.0).unwrap().summary();
    let hp = results.cell("HP", "SMToff", 50_000.0).unwrap().summary();
    // Paper: LP average 80-150% higher; allow a wide band at this scale.
    let gap = lp.avg_median_us() / hp.avg_median_us();
    assert!(gap > 1.4, "LP/HP avg gap {gap:.2} too small");
    assert!(gap < 4.0, "LP/HP avg gap {gap:.2} implausibly large");
    // Tail inflation is at least as large as average inflation.
    let tail_gap = lp.p99_median_us() / hp.p99_median_us();
    assert!(tail_gap > 1.33, "LP/HP p99 gap {tail_gap:.2} too small");
}

#[test]
fn finding2_c1e_hurts_only_at_low_load_for_hp() {
    let results = Experiment::builder(memcached_fast())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .server(ServerScenario::c1e_on())
        .qps(&[10_000.0, 300_000.0])
        .runs(10)
        .run_duration(SimDuration::from_ms(60))
        .seed(22)
        .build()
        .run();
    let slow_at = |q: f64| {
        let off = results.cell("HP", "SMToff", q).unwrap().summary();
        let on = results.cell("HP", "C1Eon", q).unwrap().summary();
        compare(&on, &off).speedup_avg // C1E_ON / C1E_OFF
    };
    let low = slow_at(10_000.0);
    let high = slow_at(300_000.0);
    assert!(low > 1.03, "C1E slowdown at 10K should be visible, got {low:.3}");
    assert!(high < low, "C1E effect must shrink with load: {low:.3} -> {high:.3}");
    assert!((0.97..1.03).contains(&high), "C1E at 300K should vanish, got {high:.3}");
}

#[test]
fn finding3_gap_shrinks_as_service_latency_grows() {
    // Synthetic-service sensitivity at two added delays.
    let gap_at = |delay_us: u64, seed: u64| {
        let results = Experiment::builder(Benchmark::synthetic(SimDuration::from_us(delay_us)))
            .client(MachineConfig::low_power())
            .client(MachineConfig::high_performance())
            .server(ServerScenario::baseline())
            .qps(&[5_000.0])
            .runs(6)
            .run_duration(SimDuration::from_ms(60))
            .seed(seed)
            .build()
            .run();
        let lp = results.cell("LP", "SMToff", 5_000.0).unwrap().summary();
        let hp = results.cell("HP", "SMToff", 5_000.0).unwrap().summary();
        lp.avg_median_us() / hp.avg_median_us()
    };
    let fast_service = gap_at(0, 33);
    let slow_service = gap_at(400, 34);
    assert!(
        fast_service > slow_service + 0.3,
        "gap must shrink with service latency: {fast_service:.2} -> {slow_service:.2}"
    );
    assert!(slow_service < 1.35, "at 400us added delay the clients should nearly agree: {slow_service:.2}");
}

#[test]
fn smt_speedup_is_load_dependent_for_hp() {
    let results = Experiment::builder(memcached_fast())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .server(ServerScenario::smt_on())
        .qps(&[10_000.0, 400_000.0])
        .runs(10)
        .run_duration(SimDuration::from_ms(60))
        .seed(44)
        .build()
        .run();
    let speedup_at = |q: f64| {
        let off = results.cell("HP", "SMToff", q).unwrap().summary();
        let on = results.cell("HP", "SMTon", q).unwrap().summary();
        compare(&off, &on).speedup_avg // SMT_OFF / SMT_ON
    };
    let low = speedup_at(10_000.0);
    let high = speedup_at(400_000.0);
    // SMT only helps under load (the softirq-offload mechanism).
    assert!((0.97..1.04).contains(&low), "SMT should be neutral at low load, got {low:.3}");
    assert!(high > low, "SMT benefit must grow with load: {low:.3} -> {high:.3}");
}
