//! Message audit of [`TopologyError`]'s `Display` arms: every arm must
//! name the offending entity *and* print the value it rejects, so a log
//! line from a thousand-cell sweep identifies the broken cell without a
//! debugger. Historically `EmptyWindow` printed no numbers at all —
//! this table pins each arm's payload into its message.

use tpv_core::topology::TopologyError;
use tpv_sim::SimDuration;

#[test]
fn every_display_arm_prints_the_values_it_rejects() {
    let warmup = SimDuration::from_ms(60);
    let duration = SimDuration::from_ms(60);
    let cases: Vec<(TopologyError, Vec<String>)> = vec![
        (TopologyError::EmptyFleet, vec!["at least one client node".into()]),
        (TopologyError::TooManyNodes { lowered: 70_000 }, vec!["70000".into(), u16::MAX.to_string()]),
        (
            TopologyError::NonPositiveQps { label: "idle".into(), qps: -3.5 },
            vec!["'idle'".into(), "-3.5".into(), "must be positive".into()],
        ),
        (
            TopologyError::TooManyPhases { label: "busy".into(), phases: 100_000 },
            vec!["'busy'".into(), "100000".into(), u16::MAX.to_string()],
        ),
        (
            TopologyError::PhasedRateClosedLoop { label: "closed".into() },
            vec!["'closed'".into(), "open-loop".into()],
        ),
        (
            TopologyError::NonFinitePhaseRate { label: "poisoned".into(), phase: 3, multiplier: f64::NAN },
            vec!["'poisoned'".into(), "phase 3".into(), "NaN".into(), "finite and positive".into()],
        ),
        (
            TopologyError::NonFinitePhaseRate { label: "drained".into(), phase: 0, multiplier: -2.0 },
            vec!["'drained'".into(), "phase 0".into(), "-2".into()],
        ),
        (
            TopologyError::EmptyWindow { warmup, duration },
            vec![format!("{warmup}"), format!("{duration}"), "warmup must be shorter".into()],
        ),
        (
            TopologyError::EmptyCohort { label: "ghost".into() },
            vec!["'ghost'".into(), "population of at least one".into()],
        ),
        (
            TopologyError::TrackedExceedsPopulation { label: "over".into(), tracked: 9, population: 4 },
            vec!["'over'".into(), "9".into(), "4".into()],
        ),
        (
            TopologyError::PooledClosedLoop { label: "pool".into() },
            vec!["'pool'".into(), "open-loop".into(), "track every member".into()],
        ),
    ];
    for (err, needles) in cases {
        let message = err.to_string();
        for needle in needles {
            assert!(message.contains(&needle), "{err:?}: message {message:?} must contain {needle:?}");
        }
    }
}

/// The window message carries both ends of the rejected interval even
/// when they differ — not just the equal-boundary case above.
#[test]
fn empty_window_message_orders_its_bounds() {
    let err =
        TopologyError::EmptyWindow { warmup: SimDuration::from_ms(90), duration: SimDuration::from_ms(60) };
    let message = err.to_string();
    let warmup_at = message.find(&format!("{}", SimDuration::from_ms(90))).expect("warmup in message");
    let duration_at = message.find(&format!("{}", SimDuration::from_ms(60))).expect("duration in message");
    assert!(warmup_at < duration_at, "warmup should precede duration: {message}");
}
