//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, checked with proptest.

use proptest::prelude::*;
use tpv::sim::dist::{Exponential, Sampler};
use tpv::sim::{EventQueue, FifoResource, LatencyHistogram, SimDuration, SimRng, SimTime};
use tpv::stats::ci::{nonparametric_ci_ranks, nonparametric_median_ci};
use tpv::stats::desc;
use tpv::stats::normality::shapiro_wilk;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram's percentile never undershoots the exact quantile and
    /// overshoots by at most the bucket's relative error.
    #[test]
    fn histogram_percentile_brackets_exact_quantile(
        values in prop::collection::vec(1_000u64..1_000_000_000, 10..400),
        p in 1.0f64..100.0,
    ) {
        let mut h = LatencyHistogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(SimDuration::from_ns(v));
        }
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
        let exact = sorted[rank] as f64;
        let got = h.percentile(p).as_ns() as f64;
        prop_assert!(got >= exact * 0.999, "p{p}: {got} < exact {exact}");
        prop_assert!(got <= exact * 1.017 + 1.0, "p{p}: {got} >> exact {exact}");
    }

    /// Event queues pop in non-decreasing time order for arbitrary inputs.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// FIFO resources never travel back in time and conserve busy time.
    #[test]
    fn fifo_resource_conserves_busy_time(
        jobs in prop::collection::vec((0u64..50_000, 1u64..20_000), 1..300),
    ) {
        let mut r = FifoResource::new();
        let mut t = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        let mut last_end = SimTime::ZERO;
        for (gap, work) in jobs {
            t += SimDuration::from_ns(gap);
            let g = r.offer(t, SimDuration::from_ns(work));
            total += SimDuration::from_ns(work);
            prop_assert!(g.end >= last_end);
            prop_assert!(g.start >= t);
            last_end = g.end;
        }
        prop_assert_eq!(r.busy_time(), total);
    }

    /// The paper's Eq. (1)/(2) CI ranks are always valid indices with the
    /// median rank between them.
    #[test]
    fn nonparametric_ci_ranks_bracket_the_median(n in 6usize..5000) {
        if let Some((lo, hi)) = nonparametric_ci_ranks(n, 0.95) {
            prop_assert!(lo >= 1 && hi <= n && lo < hi, "ranks ({lo},{hi}) invalid for n={n}");
            let med_rank = (n + 1) as f64 / 2.0;
            prop_assert!((lo as f64) <= med_rank && med_rank <= hi as f64);
        }
    }

    /// The median always lies inside its own non-parametric CI.
    #[test]
    fn median_is_inside_its_ci(xs in prop::collection::vec(-1e6f64..1e6, 6..200)) {
        if let Some(ci) = nonparametric_median_ci(&xs, 0.95) {
            prop_assert!(ci.low <= ci.mid && ci.mid <= ci.high);
            prop_assert!(ci.contains(desc::median(&xs)));
        }
    }

    /// Shapiro-Wilk is invariant under affine transforms and returns a
    /// valid (W, p) pair for arbitrary non-degenerate samples.
    #[test]
    fn shapiro_wilk_is_affine_invariant(
        seed in 0u64..1_000,
        n in 10usize..200,
        scale in 0.001f64..1e6,
        shift in -1e6f64..1e6,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let d = Exponential::with_mean(10.0);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let a = shapiro_wilk(&xs).unwrap();
        let b = shapiro_wilk(&ys).unwrap();
        prop_assert!((0.0..=1.0).contains(&a.w));
        prop_assert!((0.0..=1.0).contains(&a.p_value));
        prop_assert!((a.w - b.w).abs() < 1e-7, "W not affine-invariant: {} vs {}", a.w, b.w);
    }

    /// RNG forks with distinct labels produce distinct streams;
    /// identical labels produce identical streams.
    #[test]
    fn rng_forks_are_stable_and_distinct(seed in 0u64..10_000, a in 0u64..1000, b in 0u64..1000) {
        let r = SimRng::seed_from_u64(seed);
        let mut fa = r.fork(a);
        let mut fa2 = r.fork(a);
        prop_assert_eq!(fa.next_u64(), fa2.next_u64());
        if a != b {
            let mut fb = r.fork(b);
            let mut fa3 = r.fork(a);
            prop_assert_ne!(fa3.next_u64(), fb.next_u64());
        }
    }

    /// Duration scaling is monotone in the factor.
    #[test]
    fn duration_scaling_is_monotone(ns in 0u64..1_000_000_000, f1 in 0.0f64..10.0, f2 in 0.0f64..10.0) {
        let d = SimDuration::from_ns(ns);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(d.scale(lo) <= d.scale(hi));
    }
}
