//! Conformance contracts of the cohort layer: a pooled superposed
//! arrival process is aggregation, not new physics, so cohort
//! declaration order, execution strategy (worker count) and
//! split/merge refactors of the cohort list must not change what the
//! simulation measures.
//!
//! Complements `tests/golden_runtime.rs`, which pins cohorted values
//! bit-for-bit (`GOLDEN_COHORT`) and checks the `population: 1`
//! identity against every static golden row.

use tpv_core::collect::EventCountCollector;
use tpv_core::runtime::{run_cohorted, run_collected};
use tpv_core::topology::{ClientNode, CohortSpec, ShardSpec, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::SimDuration;

fn kv_service() -> ServiceConfig {
    ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }))
}

/// A cohort template: label, machine class and per-member load.
fn template(label: &str, lp: bool, qps: f64) -> ClientNode {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let machine = if lp { MachineConfig::low_power() } else { MachineConfig::high_performance() };
    ClientNode::new(label, machine, gen, LinkConfig::cloudlab_lan(), qps)
}

fn topo<'a>(
    service: &'a ServiceConfig,
    server: &'a MachineConfig,
    nodes: &'a [ClientNode],
    cohorts: &'a [CohortSpec],
    shards: Option<&'a ShardSpec>,
) -> TopologySpec<'a> {
    TopologySpec {
        shards,
        service,
        server,
        nodes,
        duration: SimDuration::from_ms(40),
        warmup: SimDuration::from_ms(4),
        cohorts,
    }
}

#[test]
fn cohort_declaration_order_is_presentation() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let a = CohortSpec::new(template("alpha", true, 3_000.0), 30).with_tracked(2);
    let b = CohortSpec::new(template("beta", false, 5_000.0), 20).with_tracked(1);
    let c = CohortSpec::new(template("gamma", false, 2_000.0), 10);
    let forward = [a.clone(), b.clone(), c.clone()];
    let permuted = [c, a, b];

    let x = run_cohorted(&topo(&service, &server, &[], &forward, None), 77, 2);
    let y = run_cohorted(&topo(&service, &server, &[], &permuted, None), 77, 2);

    // The aggregate is merged in content-key order, not declaration
    // order, so permuting the cohort list cannot move a single bit.
    assert_eq!(x.fleet.aggregate, y.fleet.aggregate, "aggregate depends on cohort order");
    assert_eq!(x.shards, y.shards, "shard breakdown depends on cohort order");
    // Per-cohort rollups follow declaration order; matched by label
    // they are identical.
    for cohort in &x.cohorts {
        let twin = y
            .cohorts
            .iter()
            .find(|t| t.label == cohort.label)
            .expect("every cohort appears under both orders");
        assert_eq!(cohort, twin, "cohort '{}' drifted under permutation", cohort.label);
    }
    // Same lowered nodes too, as a label-keyed set.
    let mut xs: Vec<_> = x.fleet.nodes.iter().map(|n| (n.label.clone(), n.result.clone())).collect();
    let mut ys: Vec<_> = y.fleet.nodes.iter().map(|n| (n.label.clone(), n.result.clone())).collect();
    xs.sort_by(|p, q| p.0.cmp(&q.0));
    ys.sort_by(|p, q| p.0.cmp(&q.0));
    assert_eq!(xs, ys, "per-node breakdowns depend on cohort order");
}

#[test]
fn serial_and_parallel_cohort_execution_are_bit_identical() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let shards = ShardSpec::uniform(server, 4);
    let cohorts = [
        CohortSpec::new(template("lp-pool", true, 2_500.0), 24).with_tracked(2),
        CohortSpec::new(template("hp-pool", false, 4_000.0), 16).with_tracked(1),
    ];
    let spec = topo(&service, &server, &[], &cohorts, Some(&shards));
    let serial = run_cohorted(&spec, 13, 1);
    for workers in [2, 4, 64] {
        let parallel = run_cohorted(&spec, 13, workers);
        assert_eq!(serial, parallel, "{workers} workers drifted from serial cohort execution");
    }
    // Rollups pool exactly the cohort's lowered nodes: tracked members
    // plus the pooled remainder, nothing else.
    let pooled: u64 = serial.cohorts.iter().map(|c| c.result.samples).sum();
    assert_eq!(serial.fleet.aggregate.samples, pooled, "cohort rollups must pool to the aggregate");
}

/// Satellite contract: superposition is associative in distribution. A
/// population-k cohort drives one pooled process at k·λ; k identical
/// population-1 cohorts drive k independent processes at λ. The two are
/// different event interleavings of the same offered load, so their
/// sample counts must agree statistically (the bit-level identity is
/// pinned separately, for `population: 1`, in the golden suite).
#[test]
fn one_pooled_cohort_matches_k_singleton_cohorts_statistically() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let merged = [CohortSpec::new(template("pool", false, 5_000.0), 8)];
    let split: Vec<CohortSpec> =
        (0..8).map(|_| CohortSpec::new(template("pool", false, 5_000.0), 1)).collect();

    let big = run_cohorted(&topo(&service, &server, &[], &merged, None), 99, 2);
    let many = run_cohorted(&topo(&service, &server, &[], &split, None), 99, 2);

    assert_eq!(big.fleet.nodes.len(), 1, "population-k cohort must lower to one pooled node");
    assert_eq!(many.fleet.nodes.len(), 8, "k singleton cohorts must lower to k nodes");
    let (a, b) = (big.fleet.aggregate.samples as f64, many.fleet.aggregate.samples as f64);
    let rel = (a - b).abs() / b;
    assert!(rel < 0.10, "pooled ({a}) and superposed-by-hand ({b}) sample counts diverged by {rel:.3}");
    let (qa, qb) = (big.fleet.aggregate.achieved_qps, many.fleet.aggregate.achieved_qps);
    assert!(((qa - qb) / qb).abs() < 0.10, "achieved qps diverged: {qa:.0} vs {qb:.0}");
}

/// Satellite contract: splitting a cohort in half (or merging two
/// halves) keeps the aggregate event count deterministic — byte-equal
/// across repeated runs and across worker counts — and statistically
/// unchanged between the split and merged declarations.
#[test]
fn cohort_split_and_merge_keep_event_counts_deterministic() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let merged = [CohortSpec::new(template("class", false, 4_000.0), 12)];
    let halves = [
        CohortSpec::new(template("class", false, 4_000.0), 6),
        CohortSpec::new(template("class", false, 4_000.0), 6),
    ];

    let count = |cohorts: &[CohortSpec]| {
        let spec = topo(&service, &server, &[], cohorts, None);
        let mut counter = EventCountCollector::new();
        let result = run_collected(&spec, 31, &mut counter);
        (counter.events(), result.samples)
    };

    let merged_counts = count(&merged);
    let split_counts = count(&halves);
    // Determinism: the same declaration replays to the same counters.
    assert_eq!(merged_counts, count(&merged), "merged cohort run is not deterministic");
    assert_eq!(split_counts, count(&halves), "split cohort run is not deterministic");
    // And worker count is presentation: the cohorted runner dispatches
    // the same requests serial or parallel.
    let spec = topo(&service, &server, &[], &halves, None);
    assert_eq!(
        run_cohorted(&spec, 31, 1).fleet.aggregate.samples,
        run_cohorted(&spec, 31, 8).fleet.aggregate.samples,
    );
    // The two declarations offer identical load; their realized counts
    // differ only by arrival interleaving.
    let (_, merged_samples) = merged_counts;
    let (_, split_samples) = split_counts;
    let rel = (merged_samples as f64 - split_samples as f64).abs() / split_samples as f64;
    assert!(rel < 0.10, "split vs merged sample counts diverged by {rel:.3}");
}

#[test]
fn tracked_members_expose_exact_drilldown_next_to_the_pool() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let solo = [template("solo", false, 8_000.0)];
    let cohorts = [CohortSpec::new(template("lp", true, 1_000.0), 50).with_tracked(2)];
    let run = run_cohorted(&topo(&service, &server, &solo, &cohorts, None), 5, 2);

    let labels: Vec<&str> = run.fleet.nodes.iter().map(|n| n.label.as_str()).collect();
    assert_eq!(labels, ["solo", "lp#0", "lp#1", "lp#pooled(48)"]);
    // Tracked members are exact per-node streams at the template's own
    // rate; the pooled node carries the superposed remainder.
    assert_eq!(run.fleet.nodes[1].result.target_qps, 1_000.0);
    assert_eq!(run.fleet.nodes[2].result.target_qps, 1_000.0);
    assert_eq!(run.fleet.nodes[3].result.target_qps, 48_000.0);
    // The rollup pools exactly the cohort's three nodes — the explicit
    // node never leaks in.
    assert_eq!(run.cohorts.len(), 1);
    assert_eq!(run.cohorts[0].population, 50);
    assert_eq!(run.cohorts[0].tracked, 2);
    let member_samples: u64 = run.fleet.nodes[1..].iter().map(|n| n.result.samples).sum();
    assert_eq!(run.cohorts[0].result.samples, member_samples);
    assert_eq!(run.fleet.aggregate.samples, member_samples + run.fleet.nodes[0].result.samples,);
    assert!(run.worst_cohort_p99() >= run.best_cohort_p99());
}
