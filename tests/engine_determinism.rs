//! Tier-1 engine determinism: `Experiment::run` must produce
//! bit-identical `ExperimentResults` whatever the execution strategy —
//! serial, parallel, shuffled job order, and run-cache cold vs. warm —
//! at a fixed seed. This is the contract the whole artefact-regeneration
//! suite (shared caches across figures) rests on.

use std::sync::Arc;

use tpv::core::engine::{fingerprint, Engine, RunCache};
use tpv::core::experiment::{Benchmark, Experiment, ExperimentResults, ServerScenario};
use tpv::core::runtime::RunSpec;
use tpv::hw::MachineConfig;
use tpv::services::kv::KvConfig;
use tpv::services::{ServiceConfig, ServiceKind};
use tpv::sim::SimDuration;

fn experiment(qps: &[f64]) -> Experiment {
    let mut bench = Benchmark::memcached();
    bench.service = ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }));
    Experiment::builder(bench)
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(qps)
        .runs(3)
        .run_duration(SimDuration::from_ms(30))
        .seed(2024)
        .build()
}

fn assert_identical(a: &ExperimentResults, b: &ExperimentResults, what: &str) {
    assert_eq!(a.cells().len(), b.cells().len(), "{what}: cell counts differ");
    for (ca, cb) in a.cells().iter().zip(b.cells()) {
        assert_eq!(ca.key(), cb.key(), "{what}: cell order differs");
        assert_eq!(ca.samples, cb.samples, "{what}: cell {} differs", ca.key());
    }
}

#[test]
fn parallel_serial_and_cached_execution_are_bit_identical() {
    let exp = experiment(&[50_000.0]);

    let serial = exp.run_with(&Engine::serial());
    let parallel = exp.run_with(&Engine::with_workers(8));
    assert_identical(&serial, &parallel, "serial vs parallel");

    let default = exp.run();
    assert_identical(&serial, &default, "serial vs default engine");

    let cache = RunCache::new();
    let cached_engine = Engine::with_workers(8).with_cache(Arc::clone(&cache));
    let cold = exp.run_with(&cached_engine);
    assert_identical(&serial, &cold, "serial vs cache-cold");
    let jobs = (serial.cells().len() * 3) as u64;
    assert_eq!(cache.stats().misses, jobs, "cold pass must execute every job");
    assert_eq!(cache.stats().hits, 0);

    let warm = exp.run_with(&cached_engine);
    assert_identical(&serial, &warm, "serial vs cache-warm");
    assert_eq!(cache.stats().hits, jobs, "warm pass must replay every job from cache");
    assert_eq!(cache.stats().misses, jobs, "warm pass must not re-execute");
}

#[test]
fn shuffled_job_order_cannot_change_results() {
    let plain = experiment(&[50_000.0]).run_with(&Engine::serial());
    // Rebuild with shuffle through the public builder to exercise the
    // shuffled JobPlan path end to end.
    let mut bench = Benchmark::memcached();
    bench.service = ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }));
    let shuffled = Experiment::builder(bench)
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[50_000.0])
        .runs(3)
        .run_duration(SimDuration::from_ms(30))
        .seed(2024)
        .shuffle_order(true)
        .build()
        .run_with(&Engine::with_workers(4));
    assert_identical(&plain, &shuffled, "plain vs shuffled");
}

#[test]
fn cache_replay_is_bit_identical_across_sweep_shapes() {
    // Seeds are derived from cell *content*, so the 50K cells of a
    // two-point sweep are the same jobs as a one-point sweep's — a warm
    // cache must replay them bit-identically in the smaller experiment.
    let cache = RunCache::new();
    let engine = Engine::new().with_cache(Arc::clone(&cache));

    let wide = experiment(&[50_000.0, 100_000.0]).run_with(&engine);
    let before = cache.stats();
    let narrow = experiment(&[50_000.0]).run_with(&engine);
    let after = cache.stats();
    assert_eq!(after.misses, before.misses, "narrow sweep must be fully cache-served");
    assert_eq!(after.hits, before.hits + narrow.cells().len() as u64 * 3);

    let fresh = experiment(&[50_000.0]).run_with(&Engine::serial());
    assert_identical(&narrow, &fresh, "cache-served vs freshly-computed");
    for cell in narrow.cells() {
        let wide_cell = wide.cell(&cell.client_label, "SMToff", cell.qps).unwrap();
        assert_eq!(cell.samples, wide_cell.samples, "shared cell must be the same jobs");
    }
}

#[test]
fn fingerprints_are_stable_across_identical_specs() {
    let service = ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig::default()));
    let client = MachineConfig::low_power();
    let server = MachineConfig::server_baseline();
    let generator = tpv::loadgen::GeneratorSpec::mutilate();
    let link = tpv::net::LinkConfig::cloudlab_lan();
    let spec = RunSpec {
        service: &service,
        server: &server,
        client: &client,
        generator: &generator,
        link: &link,
        qps: 10_000.0,
        duration: SimDuration::from_ms(10),
        warmup: SimDuration::from_ms(1),
    };
    assert_eq!(fingerprint(&spec), fingerprint(&spec.clone()));
}
