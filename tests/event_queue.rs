//! Conformance tests for the calendar-queue `EventQueue`: the bucketed
//! implementation must be observably identical to a plain binary heap
//! ordered by `(time, seq)` — non-decreasing pop times, FIFO among equal
//! timestamps, and bit-identical pop sequences on random schedules,
//! including interleaved schedule/pop traffic that slides the bucket
//! window and exercises the far-future heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use tpv::sim::{EventQueue, SimDuration, SimTime};

/// The reference implementation: a plain min-heap over `(time, seq)`.
/// This is semantically the pre-calendar-queue `EventQueue`.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    seq: u64,
    last_popped: SimTime,
}

impl ReferenceQueue {
    fn schedule(&mut self, at: SimTime) {
        self.heap.push(Reverse((at, self.seq)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let at = at.max(self.last_popped);
        self.last_popped = at;
        Some((at, seq))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pop times never decrease, whatever the schedule.
    #[test]
    fn pop_times_are_non_decreasing(times in prop::collection::vec(0u64..50_000_000, 1..600)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "clock ran backwards: {at} after {last}");
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Events with equal timestamps pop in scheduling (FIFO) order.
    #[test]
    fn ties_pop_in_fifo_order(
        times in prop::collection::vec(0u64..64, 1..600),
        scale_pick in 0u32..3,
    ) {
        // Few distinct timestamps at several magnitudes ⇒ many ties per
        // bucket width regime.
        let scale = [1u64, 1_000, 1_000_000][scale_pick as usize];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t * scale), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((prev_at, prev_id)) = last {
                if at == prev_at {
                    prop_assert!(id > prev_id, "tie at {at}: {id} popped after {prev_id}");
                }
            }
            last = Some((at, id));
        }
    }

    /// The calendar queue's pop sequence equals the reference heap's,
    /// with everything scheduled up front.
    #[test]
    fn matches_reference_heap_on_batch_schedules(
        times in prop::collection::vec(0u64..100_000_000, 1..500),
    ) {
        let mut calendar = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        for (i, &t) in times.iter().enumerate() {
            calendar.schedule(SimTime::from_ns(t), i as u64);
            reference.schedule(SimTime::from_ns(t));
        }
        loop {
            match (calendar.pop(), reference.pop()) {
                (None, None) => break,
                (got, want) => {
                    let got = got.expect("calendar queue ended early");
                    let (want_at, want_seq) = want.expect("calendar queue had extra events");
                    prop_assert_eq!(got.0, want_at);
                    prop_assert_eq!(got.1, want_seq);
                }
            }
        }
    }

    /// Interleaved schedule/pop traffic — future events scheduled
    /// relative to the current clock, like a simulation does — matches
    /// the reference heap event for event. Large offsets land in the
    /// far-future heap and migrate back as the window slides.
    #[test]
    fn matches_reference_heap_under_interleaving(
        offsets in prop::collection::vec((0u64..20_000_000, 1u64..4), 1..400),
    ) {
        let mut calendar = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut next_id = 0u64;
        let mut clock = SimTime::ZERO;
        for &(offset, burst) in &offsets {
            for b in 0..burst {
                let at = clock + SimDuration::from_ns(offset + b);
                calendar.schedule(at, next_id);
                reference.schedule(at);
                next_id += 1;
            }
            // Drain one event per scheduled burst, advancing the clock.
            let got = calendar.pop().expect("calendar queue empty while events pending");
            let want = reference.pop().expect("reference queue empty while events pending");
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1, want.1);
            clock = got.0;
        }
        // Drain the tails in lockstep.
        loop {
            match (calendar.pop(), reference.pop()) {
                (None, None) => break,
                (got, want) => {
                    let got = got.expect("calendar queue ended early");
                    let want = want.expect("calendar queue had extra events");
                    prop_assert_eq!(got.0, want.0);
                    prop_assert_eq!(got.1, want.1);
                }
            }
        }
    }

    /// Batched draining is presentation, not order: the concatenation
    /// of `pop_batch` results equals the one-at-a-time pop sequence,
    /// and every batch is a single timestamp's FIFO run.
    #[test]
    fn pop_batch_concatenation_matches_pop_sequence(
        times in prop::collection::vec(0u64..1024, 1..600),
        scale_pick in 0u32..3,
    ) {
        // Few distinct timestamps at several magnitudes ⇒ plenty of
        // multi-event tie runs in every bucket-width regime.
        let scale = [1u64, 1_000, 1_000_000][scale_pick as usize];
        let mut batched = EventQueue::new();
        let mut plain = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_ns(t * scale);
            batched.schedule(at, i);
            plain.schedule(at, i);
        }
        let mut batch: Vec<(SimTime, usize)> = Vec::new();
        let mut drained = 0;
        while batched.pop_batch(&mut batch) > 0 {
            for pair in batch.windows(2) {
                prop_assert_eq!(pair[0].0, pair[1].0, "a batch must be one timestamp's tie run");
                prop_assert!(pair[0].1 < pair[1].1, "tie run out of FIFO order: {} before {}", pair[0].1, pair[1].1);
            }
            for &(at, id) in &batch {
                let (want_at, want_id) = plain.pop().expect("batched queue drained extra events");
                prop_assert_eq!(at, want_at);
                prop_assert_eq!(id, want_id);
                drained += 1;
            }
        }
        prop_assert_eq!(drained, times.len());
        prop_assert!(plain.pop().is_none(), "batched queue ended early");
    }

    /// `pop_batch` under interleaved schedule/drain traffic — the shape
    /// the runtime's dispatch loop produces, where events scheduled
    /// between batches can tie with times already drained — still
    /// matches the one-at-a-time pop sequence event for event.
    #[test]
    fn pop_batch_matches_pop_under_interleaving(
        offsets in prop::collection::vec((0u64..20_000_000, 1u64..4), 1..300),
    ) {
        let mut batched = EventQueue::new();
        let mut plain = EventQueue::new();
        let mut next_id = 0u64;
        let mut clock = SimTime::ZERO;
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        for &(offset, burst) in &offsets {
            for b in 0..burst {
                let at = clock + SimDuration::from_ns(offset + b);
                batched.schedule(at, next_id);
                plain.schedule(at, next_id);
                next_id += 1;
            }
            // Drain one batch per burst and mirror it with that many
            // single pops; the clock advances to the last popped time.
            if batched.pop_batch(&mut batch) > 0 {
                for &(at, id) in &batch {
                    let (want_at, want_id) = plain.pop().expect("plain queue ended early");
                    prop_assert_eq!(at, want_at);
                    prop_assert_eq!(id, want_id);
                }
                clock = batch.last().expect("non-empty batch").0;
            }
        }
        // Drain the tails in lockstep.
        while batched.pop_batch(&mut batch) > 0 {
            for &(at, id) in &batch {
                let (want_at, want_id) = plain.pop().expect("plain queue ended early");
                prop_assert_eq!(at, want_at);
                prop_assert_eq!(id, want_id);
            }
        }
        prop_assert!(plain.pop().is_none(), "batched queue ended early");
    }

    /// `len` and `peek_time` agree with the pop sequence.
    #[test]
    fn len_and_peek_are_consistent(times in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut q = EventQueue::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut remaining = times.len();
        while remaining > 0 {
            prop_assert_eq!(q.len(), remaining);
            let peeked = q.peek_time().expect("peek on non-empty queue");
            let (at, _) = q.pop().expect("pop on non-empty queue");
            prop_assert_eq!(peeked, at, "peek_time disagreed with the next pop");
            remaining -= 1;
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.peek_time(), None);
    }
}
