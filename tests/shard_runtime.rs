//! Determinism contracts of the sharded server tier: shards are
//! independent sub-simulations, so execution strategy (thread count,
//! schedule, enumeration order) is presentation, not physics.
//!
//! Complements `tests/golden_runtime.rs`, which pins the sharded kernel's
//! values bit-for-bit (`GOLDEN_SHARDED`) and checks the degenerate K=1
//! tier against every static golden row.

use tpv_core::collect::{EventCountCollector, PhaseCollector};
use tpv_core::engine::{fingerprint_topology, Engine, JobPlan};
use tpv_core::runtime::{
    run_collected, run_phased, run_phased_sharded, run_phased_sharded_with, run_sharded_collected,
    run_topology, run_topology_sharded, run_topology_sharded_with,
};
use tpv_core::topology::{
    ClientNode, NodeDynamics, ShardPolicy, ShardSpec, ShardedFleetResult, TopologySpec,
};
use tpv_core::PinPolicy;
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{PhaseSchedule, SimDuration, SimTime};

fn kv_service() -> ServiceConfig {
    ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }))
}

/// A deliberately heterogeneous 8-node fleet: HP and LP machines, two
/// link classes, uneven loads.
fn mixed_fleet() -> Vec<ClientNode> {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    (0..8)
        .map(|i| {
            let machine =
                if i % 3 == 0 { MachineConfig::low_power() } else { MachineConfig::high_performance() };
            let link = if i % 2 == 0 { LinkConfig::cloudlab_lan() } else { LinkConfig::cross_rack() };
            ClientNode::new(format!("n{i}"), machine, gen, link, 10_000.0 + 1_000.0 * i as f64)
        })
        .collect()
}

fn topo<'a>(
    service: &'a ServiceConfig,
    server: &'a MachineConfig,
    nodes: &'a [ClientNode],
    shards: Option<&'a ShardSpec>,
) -> TopologySpec<'a> {
    TopologySpec {
        shards,
        service,
        server,
        nodes,
        duration: SimDuration::from_ms(40),
        warmup: SimDuration::from_ms(4),
        cohorts: &[],
    }
}

#[test]
fn serial_and_parallel_shard_execution_are_bit_identical() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = mixed_fleet();
    let shards = ShardSpec::uniform(server, 4);
    let spec = topo(&service, &server, &nodes, Some(&shards));
    let serial = run_topology_sharded(&spec, 11, 1);
    for workers in [2, 4, 8, 64] {
        let parallel = run_topology_sharded(&spec, 11, workers);
        assert_eq!(serial, parallel, "{workers} workers drifted from serial execution");
    }
    // The serial single-collector kernel (`run_collected` via
    // `run_topology`) must agree with the partition-merged path too.
    let fleet = run_topology(&spec, 11);
    assert_eq!(serial.fleet, fleet, "run_topology disagrees with run_topology_sharded");
    // Shape: every node appears on exactly one shard.
    let mut seen: Vec<usize> = serial.shards.iter().flat_map(|s| s.nodes.iter().copied()).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..nodes.len()).collect::<Vec<_>>());
    let pooled: u64 = serial.shards.iter().map(|s| s.result.samples).sum();
    assert_eq!(serial.fleet.aggregate.samples, pooled, "shard breakdowns must pool to the aggregate");
}

#[test]
fn shard_enumeration_order_is_presentation_not_physics() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = mixed_fleet();
    // Two distinct backends; swap their enumeration and remap the
    // explicit assignment so the same nodes land on the same machines.
    let fast = MachineConfig::server_baseline();
    let slow = MachineConfig::server_baseline().with_smt(true);
    let assignment: Vec<usize> = (0..nodes.len()).map(|i| i % 2).collect();
    let forward = ShardSpec { machines: vec![fast, slow], policy: ShardPolicy::Explicit(assignment.clone()) };
    let swapped = ShardSpec {
        machines: vec![slow, fast],
        policy: ShardPolicy::Explicit(assignment.iter().map(|&s| 1 - s).collect()),
    };
    let a = run_topology_sharded(&topo(&service, &server, &nodes, Some(&forward)), 7, 4);
    let b = run_topology_sharded(&topo(&service, &server, &nodes, Some(&swapped)), 7, 4);
    // Per-node results are invariant under the relabeling...
    for label in nodes.iter().map(|n| &n.label) {
        assert_eq!(
            a.fleet.node(label).unwrap().result,
            b.fleet.node(label).unwrap().result,
            "{label} differs under shard enumeration permutation"
        );
    }
    // ...the aggregate is bit-identical (float merges happen in
    // canonical content order, not enumeration order)...
    assert_eq!(a.fleet.aggregate, b.fleet.aggregate);
    // ...and the shard breakdowns swap along with the enumeration.
    assert_eq!(a.shards[0].result, b.shards[1].result);
    assert_eq!(a.shards[1].result, b.shards[0].result);
}

#[test]
fn node_to_shard_assignment_travels_with_the_nodes() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let base = mixed_fleet();
    let shards = ShardSpec::uniform(server, 3);
    let assignment = shards.assign(base.len());
    let spec_a =
        ShardSpec { machines: shards.machines.clone(), policy: ShardPolicy::Explicit(assignment.clone()) };
    let a = run_topology_sharded(&topo(&service, &server, &base, Some(&spec_a)), 21, 4);
    // Permute the declaration order and permute the explicit assignment
    // identically: every node keeps its shard, so every per-node result
    // and the aggregate must be unchanged.
    let order = [5usize, 2, 7, 0, 3, 6, 1, 4];
    let permuted: Vec<ClientNode> = order.iter().map(|&i| base[i].clone()).collect();
    let spec_b = ShardSpec {
        machines: shards.machines.clone(),
        policy: ShardPolicy::Explicit(order.iter().map(|&i| assignment[i]).collect()),
    };
    let b = run_topology_sharded(&topo(&service, &server, &permuted, Some(&spec_b)), 21, 4);
    for label in base.iter().map(|n| &n.label) {
        assert_eq!(
            a.fleet.node(label).unwrap().result,
            b.fleet.node(label).unwrap().result,
            "{label} differs under node permutation"
        );
    }
    assert_eq!(a.fleet.aggregate, b.fleet.aggregate);
}

#[test]
fn one_shard_tier_is_the_unsharded_kernel() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = mixed_fleet();
    let unsharded = run_topology(&topo(&service, &server, &nodes, None), 5);
    let one = ShardSpec::uniform(server, 1);
    let sharded = run_topology_sharded(&topo(&service, &server, &nodes, Some(&one)), 5, 4);
    assert_eq!(sharded.fleet, unsharded, "K=1 must be bit-identical to the unsharded kernel");
    assert_eq!(sharded.shards.len(), 1);
    assert_eq!(sharded.shards[0].result.samples, unsharded.aggregate.samples);
}

#[test]
fn empty_shards_are_inert() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes: Vec<ClientNode> = mixed_fleet().into_iter().take(3).collect();
    // Round-robin over 8 shards leaves shards 3..8 without nodes; their
    // streams are never consumed, so the loaded shards must behave
    // exactly as in the 3-shard tier.
    let wide = ShardSpec::uniform(server, 8);
    let narrow = ShardSpec::uniform(server, 3);
    let a = run_topology_sharded(&topo(&service, &server, &nodes, Some(&wide)), 9, 4);
    let b = run_topology_sharded(&topo(&service, &server, &nodes, Some(&narrow)), 9, 4);
    assert_eq!(a.fleet, b.fleet, "idle shards must not perturb loaded ones");
    for idle in &a.shards[3..] {
        assert_eq!(idle.result.samples, 0);
        assert!(idle.nodes.is_empty());
        assert_eq!(idle.result.target_qps, 0.0);
    }
}

#[test]
fn hot_shard_policy_skews_the_per_shard_tail() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let nodes: Vec<ClientNode> = (0..16)
        .map(|i| {
            ClientNode::new(
                format!("agent{i}"),
                MachineConfig::high_performance(),
                gen,
                LinkConfig::cloudlab_lan(),
                60_000.0,
            )
        })
        .collect();
    let uniform = ShardSpec::uniform(server, 4);
    let hot = ShardSpec::uniform(server, 4).with_policy(ShardPolicy::HotShard { hot: 1, share: 0.5 });
    let u = run_topology_sharded(&topo(&service, &server, &nodes, Some(&uniform)), 13, 4);
    let h = run_topology_sharded(&topo(&service, &server, &nodes, Some(&hot)), 13, 4);
    // The hot backend serves half the fleet on one machine: its tail
    // must exceed the cold shards' and widen the per-shard spread well
    // beyond the uniform tier's.
    assert_eq!(h.shards[1].nodes.len(), 8);
    assert_eq!(h.worst_shard_p99(), h.shards[1].result.p99, "the hot shard owns the worst tail");
    let h_spread = h.worst_shard_p99().as_us() / h.best_shard_p99().as_us();
    let u_spread = u.worst_shard_p99().as_us() / u.best_shard_p99().as_us();
    assert!(h_spread > u_spread, "hot-shard spread {h_spread:.2}x must exceed uniform spread {u_spread:.2}x");
}

#[test]
fn work_stealing_and_pinning_are_schedule_invariant_under_hot_shard_skew() {
    // A HotShard tier is the worst case for the worker pool: one shard
    // carries half the fleet, so LPT seeding leaves most workers
    // underloaded and the steal path actually fires. Whatever the
    // worker count, the stolen schedule — and a core-pinned one — must
    // reproduce the serial execution bit for bit: scheduling is
    // presentation, not physics.
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let nodes: Vec<ClientNode> = (0..16)
        .map(|i| {
            ClientNode::new(
                format!("agent{i}"),
                MachineConfig::high_performance(),
                gen,
                LinkConfig::cloudlab_lan(),
                40_000.0 + 5_000.0 * i as f64, // uneven loads sharpen the imbalance
            )
        })
        .collect();
    let hot = ShardSpec::uniform(server, 4).with_policy(ShardPolicy::HotShard { hot: 1, share: 0.5 });
    let spec = topo(&service, &server, &nodes, Some(&hot));
    let serial = run_topology_sharded_with(&spec, 29, 1, PinPolicy::Off);
    for workers in [2, 3, 4, 8] {
        let stolen = run_topology_sharded_with(&spec, 29, workers, PinPolicy::Off);
        assert_eq!(serial, stolen, "{workers}-worker stolen schedule drifted from serial");
        let pinned = run_topology_sharded_with(&spec, 29, workers, PinPolicy::RoundRobin);
        assert_eq!(serial, pinned, "{workers}-worker pinned schedule drifted from serial");
    }
}

#[test]
fn merged_event_counts_match_the_serial_collector() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = mixed_fleet();
    let shards = ShardSpec::uniform(server, 4);
    let spec = topo(&service, &server, &nodes, Some(&shards));
    let mut serial = EventCountCollector::new();
    let serial_result = run_collected(&spec, 3, &mut serial);
    let (parallel_result, shard_results, merged) =
        run_sharded_collected(&spec, 3, 4, |_, _| EventCountCollector::new());
    assert_eq!(serial_result, parallel_result);
    assert_eq!(serial.events(), merged.events(), "per-shard event counts must merge to the serial count");
    assert_eq!(shard_results.len(), 4);
}

#[test]
fn engine_execute_sharded_is_parallelism_invariant() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = mixed_fleet();
    let shards = ShardSpec::uniform(server, 4);
    let spec = topo(&service, &server, &nodes, Some(&shards));
    let plan = JobPlan::new(17, &[fingerprint_topology(&spec)], 3).shuffled(99);
    let serial = Engine::serial().execute_sharded(&plan, |_| spec);
    let parallel = Engine::with_workers(8).execute_sharded(&plan, |_| spec);
    assert_eq!(serial, parallel, "engine scheduling must not change sharded results");
    let pinned =
        Engine::with_workers(8).with_pin_policy(PinPolicy::RoundRobin).execute_sharded(&plan, |_| spec);
    assert_eq!(serial, pinned, "core pinning must not change sharded results");
    assert_eq!(serial.len(), 3);
    let direct: Vec<(usize, usize, ShardedFleetResult)> =
        plan.jobs().iter().map(|j| (j.cell, j.run, run_topology_sharded(&spec, j.seed, 1))).collect();
    let mut direct_sorted = direct;
    direct_sorted.sort_by_key(|&(c, r, _)| (c, r));
    assert_eq!(serial, direct_sorted, "engine jobs must equal direct sharded runs");
}

// ---------------------------------------------------------------------
// Phased × sharded: per-phase pooled stats merge in canonical
// `(shard_key, shard_index)` order, so the same presentation-not-physics
// contracts hold with a phase schedule in play.
// ---------------------------------------------------------------------

/// [`mixed_fleet`] with mid-run dynamics layered on: every third node
/// decays HP -> LP at the boundary, every `i % 3 == 1` node steps its
/// offered rate. The merged schedule has two phases.
fn phased_fleet() -> Vec<ClientNode> {
    let boundary = SimTime::from_ms(20);
    mixed_fleet()
        .into_iter()
        .enumerate()
        .map(|(i, node)| match i % 3 {
            0 => node.with_dynamics(
                NodeDynamics::new(PhaseSchedule::new(vec![boundary]))
                    .with_machines(vec![MachineConfig::high_performance(), MachineConfig::low_power()]),
            ),
            1 => node.with_dynamics(
                NodeDynamics::new(PhaseSchedule::new(vec![boundary])).with_rates(vec![0.7, 1.4]),
            ),
            _ => node,
        })
        .collect()
}

#[test]
fn phased_serial_and_parallel_shard_execution_are_bit_identical() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = phased_fleet();
    let shards = ShardSpec::uniform(server, 4);
    let spec = topo(&service, &server, &nodes, Some(&shards));
    let serial = run_phased_sharded(&spec, 19, 1).expect("valid phased topology");
    assert_eq!(serial.phases.len(), 2, "the merged schedule has two phases");
    assert!(serial.phases.iter().all(|p| p.samples > 0));
    for workers in [2, 3, 4, 8] {
        let parallel = run_phased_sharded(&spec, 19, workers).expect("valid phased topology");
        assert_eq!(serial, parallel, "{workers}-worker phased schedule drifted from serial");
        let pinned = run_phased_sharded_with(&spec, 19, workers, PinPolicy::RoundRobin)
            .expect("valid phased topology");
        assert_eq!(serial, pinned, "{workers}-worker pinned phased schedule drifted from serial");
    }
    // The phased view is the sharded kernel plus a phase lens: the fleet
    // and per-shard breakdowns must match the static sharded entry point
    // on the same (dynamic) topology, bit for bit.
    let static_view = run_topology_sharded(&spec, 19, 4);
    assert_eq!(serial.fleet, static_view.fleet, "phased view must not perturb the fleet result");
    assert_eq!(serial.shards, static_view.shards, "phased view must not perturb the shard breakdown");
    // Phases partition the window: per-phase counts pool to the aggregate.
    let pooled: u64 = serial.phases.iter().map(|p| p.samples).sum();
    assert_eq!(pooled, serial.fleet.aggregate.samples, "phase buckets must partition the window");
}

#[test]
fn phased_shard_enumeration_order_is_presentation_not_physics() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = phased_fleet();
    // Same relabeling as the static test: swap backend enumeration and
    // remap the explicit assignment so physics is unchanged. The
    // per-phase pooled stats must not notice — they merge in canonical
    // content order, not enumeration order.
    let fast = MachineConfig::server_baseline();
    let slow = MachineConfig::server_baseline().with_smt(true);
    let assignment: Vec<usize> = (0..nodes.len()).map(|i| i % 2).collect();
    let forward = ShardSpec { machines: vec![fast, slow], policy: ShardPolicy::Explicit(assignment.clone()) };
    let swapped = ShardSpec {
        machines: vec![slow, fast],
        policy: ShardPolicy::Explicit(assignment.iter().map(|&s| 1 - s).collect()),
    };
    let a = run_phased_sharded(&topo(&service, &server, &nodes, Some(&forward)), 7, 4)
        .expect("valid phased topology");
    let b = run_phased_sharded(&topo(&service, &server, &nodes, Some(&swapped)), 7, 4)
        .expect("valid phased topology");
    assert_eq!(a.phases, b.phases, "per-phase stats differ under shard enumeration permutation");
    assert_eq!(a.fleet.aggregate, b.fleet.aggregate);
    for label in nodes.iter().map(|n| &n.label) {
        assert_eq!(
            a.fleet.node(label).unwrap().result,
            b.fleet.node(label).unwrap().result,
            "{label} differs under shard enumeration permutation"
        );
    }
    assert_eq!(a.shards[0].result, b.shards[1].result);
    assert_eq!(a.shards[1].result, b.shards[0].result);
}

#[test]
fn phased_node_permutation_is_presentation_not_physics() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let base = phased_fleet();
    let shards = ShardSpec::uniform(server, 3);
    let assignment = shards.assign(base.len());
    let spec_a =
        ShardSpec { machines: shards.machines.clone(), policy: ShardPolicy::Explicit(assignment.clone()) };
    let a = run_phased_sharded(&topo(&service, &server, &base, Some(&spec_a)), 21, 4)
        .expect("valid phased topology");
    let order = [5usize, 2, 7, 0, 3, 6, 1, 4];
    let permuted: Vec<ClientNode> = order.iter().map(|&i| base[i].clone()).collect();
    let spec_b = ShardSpec {
        machines: shards.machines.clone(),
        policy: ShardPolicy::Explicit(order.iter().map(|&i| assignment[i]).collect()),
    };
    let b = run_phased_sharded(&topo(&service, &server, &permuted, Some(&spec_b)), 21, 4)
        .expect("valid phased topology");
    assert_eq!(a.phases, b.phases, "per-phase stats must ignore node declaration order");
    assert_eq!(a.fleet.aggregate, b.fleet.aggregate);
    for label in base.iter().map(|n| &n.label) {
        assert_eq!(
            a.fleet.node(label).unwrap().result,
            b.fleet.node(label).unwrap().result,
            "{label} differs under node permutation"
        );
    }
}

#[test]
fn phased_one_shard_tier_is_the_unsharded_phased_kernel() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let nodes = phased_fleet();
    let unsharded = run_phased(&topo(&service, &server, &nodes, None), 5).expect("valid phased topology");
    let one = ShardSpec::uniform(server, 1);
    let sharded = run_phased_sharded(&topo(&service, &server, &nodes, Some(&one)), 5, 4)
        .expect("valid phased topology");
    assert_eq!(sharded.fleet, unsharded.fleet, "K=1 must be bit-identical to the unsharded phased kernel");
    assert_eq!(sharded.phases, unsharded.phases, "K=1 per-phase stats must match the unsharded kernel");
    assert_eq!(sharded.shards.len(), 1);
    // Worker count on an unsharded phased topology is a no-op too.
    let wide =
        run_phased_sharded(&topo(&service, &server, &nodes, None), 5, 8).expect("valid phased topology");
    assert_eq!(wide, unsharded);
}

#[test]
fn phase_boundary_event_counts_merge_exactly_under_hot_shard_skew() {
    // The hot shard carries half the fleet, so the steal path fires and
    // partitions finish out of order; the per-phase buckets must still
    // merge to exactly the serial collector's counts and stats.
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let boundary = SimTime::from_ms(20);
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let nodes: Vec<ClientNode> = (0..16)
        .map(|i| {
            ClientNode::new(
                format!("agent{i}"),
                MachineConfig::high_performance(),
                gen,
                LinkConfig::cloudlab_lan(),
                40_000.0 + 5_000.0 * i as f64,
            )
            .with_dynamics(
                NodeDynamics::new(PhaseSchedule::new(vec![boundary]))
                    .with_machines(vec![MachineConfig::high_performance(), MachineConfig::low_power()]),
            )
        })
        .collect();
    let hot = ShardSpec::uniform(server, 4).with_policy(ShardPolicy::HotShard { hot: 1, share: 0.5 });
    let spec = topo(&service, &server, &nodes, Some(&hot));
    let schedule = spec.merged_schedule();
    let window = (SimTime::ZERO + spec.warmup, SimTime::ZERO + spec.duration);

    let mut serial = (EventCountCollector::new(), PhaseCollector::new(schedule.clone(), window.0, window.1));
    let serial_result = run_collected(&spec, 29, &mut serial);
    let (parallel_result, shard_results, (events, phases)) =
        run_sharded_collected(&spec, 29, 4, |shard, shard_key| {
            (
                EventCountCollector::new(),
                PhaseCollector::for_partition(schedule.clone(), window.0, window.1, shard_key, shard),
            )
        });
    assert_eq!(serial_result, parallel_result);
    assert_eq!(serial.0.events(), events.events(), "per-shard event counts must merge to the serial count");
    assert_eq!(shard_results.len(), 4);
    let serial_phases = serial.1.into_stats();
    let merged_phases = phases.into_stats();
    assert_eq!(serial_phases, merged_phases, "canonical-order merge must reproduce the serial buckets");
    assert_eq!(merged_phases.len(), 2);
    let pooled: u64 = merged_phases.iter().map(|p| p.samples).sum();
    assert_eq!(pooled, parallel_result.samples, "phase buckets must partition the window exactly");
}
