//! Golden pins of `run_once` outputs across every spec shape the study
//! registry exercises (service kinds × client configs × server scenarios
//! × generator taxonomies).
//!
//! The values were captured from the pre-topology-refactor monolithic
//! event loop; the topology kernel's trivial 1×1 topology must reproduce
//! them **bit for bit** — the refactor's central invariant. Floats are
//! pinned via `f64::to_bits`, durations via nanoseconds, so there is no
//! tolerance to hide behind.
//!
//! To regenerate after an *intentional* semantic change:
//! `cargo test --test golden_runtime -- --ignored --nocapture`
//! and paste the printed rows over `GOLDEN`.

use tpv_core::control::{
    AdmissionThrottle, ControlSpec, Controller, DoNothing, HedgeRequests, MitigationPolicy, RemediateNode,
    RerouteHotShard,
};
use tpv_core::runtime::{
    run_cohorted, run_once, run_phased, run_phased_sharded, run_topology_sharded, RunResult, RunSpec,
};
use tpv_core::topology::{ClientNode, CohortSpec, NodeDynamics, ShardPolicy, ShardSpec, TopologySpec};
use tpv_hw::{CStatePolicy, MachineConfig};
use tpv_loadgen::{GeneratorSpec, LoopMode, PointOfMeasurement, TimingMode};
use tpv_net::LinkConfig;
use tpv_services::hdsearch::HdSearchConfig;
use tpv_services::kv::KvConfig;
use tpv_services::socialnet::SocialConfig;
use tpv_services::synthetic::SyntheticConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{PhaseSchedule, SimDuration, SimTime};

/// One pinned case: a name, the seed, and the bit-exact observation.
struct Golden {
    name: &'static str,
    seed: u64,
    /// `[avg, p50, p99, max, std_dev, samples, achieved_bits, target_bits,
    ///   late_bits, slip, w0, w1, w2, w3, energy_bits, truncated]`
    /// (durations in ns, floats as `f64::to_bits`).
    row: [u64; 16],
}

/// The spec shapes under pin, matching the registry studies: every
/// service kind, both Table II clients, all three server scenarios, both
/// timing modes, open and closed loops, and a non-default measurement
/// point. Each returns owned parts; the caller borrows them into a
/// `RunSpec`.
struct Parts {
    service: ServiceConfig,
    client: MachineConfig,
    server: MachineConfig,
    generator: GeneratorSpec,
    link: LinkConfig,
    qps: f64,
}

fn cases() -> Vec<(&'static str, Parts)> {
    let kv = || ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    vec![
        (
            "memcached-lp-base",
            Parts {
                service: kv(),
                client: MachineConfig::low_power(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 100_000.0,
            },
        ),
        (
            "memcached-hp-base",
            Parts {
                service: kv(),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 100_000.0,
            },
        ),
        (
            "memcached-hp-smton",
            Parts {
                service: kv(),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline().with_smt(true),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 300_000.0,
            },
        ),
        (
            "memcached-lp-c1eon",
            Parts {
                service: kv(),
                client: MachineConfig::low_power(),
                server: MachineConfig::server_baseline().with_cstates(CStatePolicy::UpToC1E),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 50_000.0,
            },
        ),
        (
            "hdsearch-hp-base",
            Parts {
                service: ServiceConfig::new(ServiceKind::HdSearch(HdSearchConfig {
                    dataset_size: 1024,
                    profile_queries: 32,
                    ..HdSearchConfig::default()
                })),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::microsuite_client(),
                link: LinkConfig::cloudlab_lan(),
                qps: 1_000.0,
            },
        ),
        (
            "socialnet-lp-base",
            Parts {
                service: ServiceConfig::new(ServiceKind::SocialNetwork(SocialConfig {
                    users: 500,
                    ..SocialConfig::default()
                })),
                client: MachineConfig::low_power(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::wrk2(),
                link: LinkConfig::cloudlab_lan(),
                qps: 300.0,
            },
        ),
        (
            "synthetic-hp-100us",
            Parts {
                service: ServiceConfig::new(ServiceKind::Synthetic(SyntheticConfig::with_delay(
                    SimDuration::from_us(100),
                ))),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::synthetic_client(),
                link: LinkConfig::cloudlab_lan(),
                qps: 10_000.0,
            },
        ),
        (
            "memcached-hp-closed",
            Parts {
                service: kv(),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate().closed_loop(SimDuration::from_us(100)),
                link: LinkConfig::cloudlab_lan(),
                qps: 50_000.0,
            },
        ),
        (
            "memcached-lp-busywait-kernel",
            Parts {
                service: kv(),
                client: MachineConfig::low_power(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate()
                    .with_timing(TimingMode::BusyWait)
                    .with_pom(PointOfMeasurement::Kernel),
                link: LinkConfig::ideal(),
                qps: 100_000.0,
            },
        ),
    ]
}

/// The bit-exact 16-field projection every golden table pins — one
/// definition, so the suites cannot silently pin different projections
/// of a future `RunResult` field.
fn golden_row(r: &RunResult) -> [u64; 16] {
    [
        r.avg.as_ns(),
        r.p50.as_ns(),
        r.p99.as_ns(),
        r.max.as_ns(),
        r.std_dev.as_ns(),
        r.samples,
        r.achieved_qps.to_bits(),
        r.target_qps.to_bits(),
        r.late_send_fraction.to_bits(),
        r.mean_send_slip.as_ns(),
        r.client_wakes[0],
        r.client_wakes[1],
        r.client_wakes[2],
        r.client_wakes[3],
        r.client_energy_core_secs.to_bits(),
        r.truncated_inflight,
    ]
}

fn observe(parts: &Parts, seed: u64) -> [u64; 16] {
    let spec = RunSpec {
        service: &parts.service,
        server: &parts.server,
        client: &parts.client,
        generator: &parts.generator,
        link: &parts.link,
        qps: parts.qps,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
    };
    let r: RunResult = run_once(&spec, seed);
    golden_row(&r)
}

/// One pinned phased case: aggregate row in `GOLDEN` format plus
/// per-phase `(samples, p99 ns)` pairs — a boundary drift in either the
/// regime bucketing or the dynamic kernel itself trips the pin.
struct PhasedGolden {
    name: &'static str,
    seed: u64,
    row: [u64; 16],
    phases: &'static [[u64; 2]],
}

/// The phased spec shapes under pin: a mid-run machine decay and a
/// stepped load, both 1-node topologies through the same kernel as the
/// static pins.
fn phased_cases() -> Vec<(&'static str, Parts, NodeDynamics)> {
    let kv = || ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let boundary = PhaseSchedule::new(vec![SimTime::from_ms(30)]);
    vec![
        (
            "memcached-decay-flip",
            Parts {
                service: kv(),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 100_000.0,
            },
            NodeDynamics::new(boundary.clone())
                .with_machines(vec![MachineConfig::high_performance(), MachineConfig::low_power()]),
        ),
        (
            "memcached-stepped-load",
            Parts {
                service: kv(),
                client: MachineConfig::high_performance(),
                server: MachineConfig::server_baseline(),
                generator: GeneratorSpec::mutilate(),
                link: LinkConfig::cloudlab_lan(),
                qps: 100_000.0,
            },
            NodeDynamics::new(boundary).with_rates(vec![0.5, 2.0]),
        ),
    ]
}

fn observe_phased(parts: &Parts, dynamics: &NodeDynamics, seed: u64) -> ([u64; 16], Vec<[u64; 2]>) {
    let spec = RunSpec {
        service: &parts.service,
        server: &parts.server,
        client: &parts.client,
        generator: &parts.generator,
        link: &parts.link,
        qps: parts.qps,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
    };
    let nodes = [spec.client_node().with_dynamics(dynamics.clone())];
    let topo = TopologySpec {
        shards: None,
        service: &parts.service,
        server: &parts.server,
        nodes: &nodes,
        duration: spec.duration,
        warmup: spec.warmup,
        cohorts: &[],
    };
    let phased = run_phased(&topo, seed).expect("valid phased golden topology");
    let row = golden_row(&phased.fleet.aggregate);
    let phases = phased.phases.iter().map(|p| [p.samples, p.p99.as_ns()]).collect();
    (row, phases)
}

/// One pinned sharded case: aggregate row in `GOLDEN` format plus
/// per-shard `(samples, p99 ns)` pairs — a drift in the shard
/// partitioning, the per-shard RNG streams or the canonical merge trips
/// the pin. Observed through the *parallel* kernel, so the pin also
/// guards thread-count independence against the serial suite.
struct ShardedGolden {
    name: &'static str,
    seed: u64,
    row: [u64; 16],
    shards: &'static [[u64; 2]],
}

/// The sharded spec shapes under pin: a mixed HP/LP fleet over four
/// uniform backends, with the uniform round-robin and the skewed
/// hot-shard assignment.
fn sharded_cases() -> Vec<(&'static str, ShardSpec, Vec<ClientNode>)> {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let nodes: Vec<ClientNode> = (0..8)
        .map(|i| {
            let machine =
                if i % 4 == 3 { MachineConfig::low_power() } else { MachineConfig::high_performance() };
            ClientNode::new(format!("agent{i}"), machine, gen, LinkConfig::cloudlab_lan(), 20_000.0)
        })
        .collect();
    let tier = ShardSpec::uniform(MachineConfig::server_baseline(), 4);
    vec![
        ("memcached-sharded-rr", tier.clone(), nodes.clone()),
        ("memcached-sharded-hot", tier.with_policy(ShardPolicy::HotShard { hot: 0, share: 0.5 }), nodes),
    ]
}

fn observe_sharded(shards: &ShardSpec, nodes: &[ClientNode], seed: u64) -> ([u64; 16], Vec<[u64; 2]>) {
    let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: Some(shards),
        service: &service,
        server: &server,
        nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    // Three workers over four shards: the parallel path with an uneven
    // split, the strictest schedule to stay bit-identical under.
    let sharded = run_topology_sharded(&topo, seed, 3);
    let row = golden_row(&sharded.fleet.aggregate);
    let shards_out = sharded.shards.iter().map(|s| [s.result.samples, s.result.p99.as_ns()]).collect();
    (row, shards_out)
}

/// One pinned phased×sharded case: aggregate row in `GOLDEN` format
/// plus per-shard and per-phase `(samples, p99 ns)` pairs — a drift in
/// the shard partitioning, the dynamic kernel, or the canonical
/// `(shard_key, shard_index)` per-phase merge order trips the pin.
/// Observed through the *parallel* path, and re-checked at 1/2/3/4/8
/// workers by the pin test.
struct PhasedShardedGolden {
    name: &'static str,
    seed: u64,
    row: [u64; 16],
    shards: &'static [[u64; 2]],
    phases: &'static [[u64; 2]],
}

/// The phased×sharded spec shapes under pin: the sharded golden fleet
/// with mid-run dynamics layered on — even nodes decay HP -> LP at the
/// boundary, odd nodes step their offered rate — over the uniform and
/// hot-shard tiers.
fn phased_sharded_cases() -> Vec<(&'static str, ShardSpec, Vec<ClientNode>)> {
    let boundary = PhaseSchedule::new(vec![SimTime::from_ms(30)]);
    let dynamic =
        |nodes: Vec<ClientNode>| -> Vec<ClientNode> {
            nodes
                .into_iter()
                .enumerate()
                .map(|(i, node)| {
                    if i % 2 == 0 {
                        node.with_dynamics(NodeDynamics::new(boundary.clone()).with_machines(vec![
                            MachineConfig::high_performance(),
                            MachineConfig::low_power(),
                        ]))
                    } else {
                        node.with_dynamics(NodeDynamics::new(boundary.clone()).with_rates(vec![0.8, 1.6]))
                    }
                })
                .collect()
        };
    sharded_cases()
        .into_iter()
        .map(|(name, shards, nodes)| {
            let renamed = match name {
                "memcached-sharded-rr" => "memcached-phased-sharded-rr",
                _ => "memcached-phased-sharded-hot",
            };
            (renamed, shards, dynamic(nodes))
        })
        .collect()
}

fn observe_phased_sharded(
    shards: &ShardSpec,
    nodes: &[ClientNode],
    seed: u64,
    workers: usize,
) -> ([u64; 16], Vec<[u64; 2]>, Vec<[u64; 2]>) {
    let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: Some(shards),
        service: &service,
        server: &server,
        nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    let run = run_phased_sharded(&topo, seed, workers).expect("valid phased sharded golden topology");
    let row = golden_row(&run.fleet.aggregate);
    let per_shard = run.shards.iter().map(|s| [s.result.samples, s.result.p99.as_ns()]).collect();
    let per_phase = run.phases.iter().map(|p| [p.samples, p.p99.as_ns()]).collect();
    (row, per_shard, per_phase)
}

/// One pinned cohorted case: aggregate row in `GOLDEN` format plus
/// per-cohort `(samples, p99 ns)` pairs — a drift in the cohort
/// lowering, the pooled arrival superposition or the per-cohort
/// canonical merge trips the pin. Observed through the parallel
/// `run_cohorted` entry point.
struct CohortGolden {
    name: &'static str,
    seed: u64,
    row: [u64; 16],
    cohorts: &'static [[u64; 2]],
}

/// One pinned cohorted shape: name, optional shard tier, explicit
/// nodes, cohorts.
type CohortCase = (&'static str, Option<ShardSpec>, Vec<ClientNode>, Vec<CohortSpec>);

/// The cohorted spec shapes under pin: an LP and an HP cohort with
/// tracked representatives next to an explicit node (unsharded), and
/// the same cohorts spread over a four-shard tier.
fn cohort_cases() -> Vec<CohortCase> {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let link = LinkConfig::cloudlab_lan();
    let lp = ClientNode::new("lp-class", MachineConfig::low_power(), gen, link, 200.0);
    let hp = ClientNode::new("hp-class", MachineConfig::high_performance(), gen, link, 300.0);
    let cohorts = vec![CohortSpec::new(lp, 60).with_tracked(2), CohortSpec::new(hp, 40).with_tracked(1)];
    let solo = vec![ClientNode::new("solo", MachineConfig::high_performance(), gen, link, 20_000.0)];
    let tier = ShardSpec::uniform(MachineConfig::server_baseline(), 4);
    vec![
        ("memcached-cohort-mixed", None, solo, cohorts.clone()),
        ("memcached-cohort-sharded", Some(tier), Vec::new(), cohorts),
    ]
}

fn observe_cohort(
    shards: Option<&ShardSpec>,
    nodes: &[ClientNode],
    cohorts: &[CohortSpec],
    seed: u64,
) -> ([u64; 16], Vec<[u64; 2]>) {
    let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards,
        service: &service,
        server: &server,
        nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts,
    };
    let run = run_cohorted(&topo, seed, 3);
    let row = golden_row(&run.fleet.aggregate);
    let per_cohort = run.cohorts.iter().map(|c| [c.result.samples, c.result.p99.as_ns()]).collect();
    (row, per_cohort)
}

/// One pinned controlled run: per-window `(samples, p99 ns)` pairs plus
/// the decision and hedge counts — a drift in the windowed observer, a
/// policy's decision function, the mitigation rewrites or the hedge
/// leg's RNG stream trips the pin. Checked at 1/2/3/4/8 workers: a
/// controller decision is a pure function of canonical-order windowed
/// stats, so the schedule cannot leak into a single bit.
struct ControlGolden {
    name: &'static str,
    seed: u64,
    windows: &'static [[u64; 2]],
    decisions: u64,
    hedges: u64,
}

/// The controlled fleet under pin: the sharded golden fleet's shape (two
/// low-power stragglers in an otherwise high-performance fleet, uniform
/// round-robin over four backends — which parks both LP nodes on shard
/// 3), run as three 20 ms control windows.
fn control_spec() -> ControlSpec {
    let gen = GeneratorSpec::mutilate().with_connections(20);
    let nodes: Vec<ClientNode> = (0..8)
        .map(|i| {
            let machine =
                if i % 4 == 3 { MachineConfig::low_power() } else { MachineConfig::high_performance() };
            ClientNode::new(format!("agent{i}"), machine, gen, LinkConfig::cloudlab_lan(), 20_000.0)
        })
        .collect();
    ControlSpec {
        service: ServiceConfig::new(ServiceKind::Memcached(KvConfig::default())),
        shards: ShardSpec::uniform(MachineConfig::server_baseline(), 4),
        nodes,
        window: SimDuration::from_ms(20),
        windows: 3,
        warmup: SimDuration::from_ms(4),
    }
}

/// Every shipped policy, parameterized to trip on the LP stragglers
/// (whose windowed p99 sits far above the 150 µs threshold) and nothing
/// else.
fn control_policies() -> Vec<Box<dyn MitigationPolicy>> {
    let threshold = SimDuration::from_us(150);
    vec![
        Box::new(DoNothing),
        Box::new(HedgeRequests { threshold, deadline: SimDuration::from_us(120) }),
        Box::new(RerouteHotShard { min_ratio: 1.5, max_moves: 2 }),
        Box::new(RemediateNode { threshold, config: MachineConfig::high_performance() }),
        Box::new(AdmissionThrottle { threshold, factor: 0.5, floor: 0.2 }),
    ]
}

fn observe_control(policy: &dyn MitigationPolicy, seed: u64, workers: usize) -> (Vec<[u64; 2]>, u64, u64) {
    let spec = control_spec();
    let result = Controller::new(&spec, policy).run(seed, workers);
    let windows = result.windows.iter().map(|w| [w.aggregate.samples, w.aggregate.p99.as_ns()]).collect();
    (windows, result.decisions.len() as u64, result.total_hedges())
}

/// Regeneration helper (not part of the suite): prints `GOLDEN`,
/// `GOLDEN_PHASED`, `GOLDEN_SHARDED`, `GOLDEN_COHORT` and
/// `GOLDEN_CONTROL` rows.
#[test]
#[ignore = "regeneration helper; run with --ignored --nocapture"]
fn print_goldens() {
    for (name, parts) in cases() {
        for seed in [2024u64, 7] {
            let row = observe(&parts, seed);
            println!("    Golden {{ name: \"{name}\", seed: {seed}, row: {row:?} }},");
        }
    }
    println!();
    for (name, parts, dynamics) in phased_cases() {
        for seed in [2024u64, 7] {
            let (row, phases) = observe_phased(&parts, &dynamics, seed);
            println!(
                "    PhasedGolden {{ name: \"{name}\", seed: {seed}, row: {row:?}, phases: &{phases:?} }},"
            );
        }
    }
    println!();
    for (name, shards, nodes) in sharded_cases() {
        for seed in [2024u64, 7] {
            let (row, per_shard) = observe_sharded(&shards, &nodes, seed);
            println!(
                "    ShardedGolden {{ name: \"{name}\", seed: {seed}, row: {row:?}, shards: &{per_shard:?} }},"
            );
        }
    }
    println!();
    for (name, shards, nodes, cohorts) in cohort_cases() {
        for seed in [2024u64, 7] {
            let (row, per_cohort) = observe_cohort(shards.as_ref(), &nodes, &cohorts, seed);
            println!(
                "    CohortGolden {{ name: \"{name}\", seed: {seed}, row: {row:?}, cohorts: &{per_cohort:?} }},"
            );
        }
    }
    println!();
    for (name, shards, nodes) in phased_sharded_cases() {
        for seed in [2024u64, 7] {
            let (row, per_shard, per_phase) = observe_phased_sharded(&shards, &nodes, seed, 3);
            println!(
                "    PhasedShardedGolden {{ name: \"{name}\", seed: {seed}, row: {row:?}, shards: &{per_shard:?}, phases: &{per_phase:?} }},"
            );
        }
    }
    println!();
    for policy in control_policies() {
        for seed in [2024u64, 7] {
            let (windows, decisions, hedges) = observe_control(policy.as_ref(), seed, 3);
            println!(
                "    ControlGolden {{ name: \"{}\", seed: {seed}, windows: &{windows:?}, decisions: {decisions}, hedges: {hedges} }},",
                policy.name()
            );
        }
    }
}

#[rustfmt::skip]
const GOLDEN: &[Golden] = &[
    Golden { name: "memcached-lp-base", seed: 2024, row: [80073, 76799, 212991, 286958, 22961, 5423, 4681637630290932774, 4681608360884174848, 4606972053291107339, 47990, 1754, 4319, 3698, 186, 4610470733030153829, 0] },
    Golden { name: "memcached-lp-base", seed: 7, row: [85136, 80895, 219135, 256040, 28143, 5373, 4681574001145806848, 4681608360884174848, 4606995918898271073, 51133, 991, 3673, 4717, 363, 4610046289137307074, 0] },
    Golden { name: "memcached-hp-base", seed: 2024, row: [51062, 50175, 77823, 235429, 8221, 5432, 4681649083537055441, 4681608360884174848, 4567835179950359390, 3521, 11966, 0, 0, 0, 4612641161559875206, 0] },
    Golden { name: "memcached-hp-base", seed: 7, row: [50602, 49663, 67583, 257427, 6646, 5374, 4681575273728709367, 4681608360884174848, 4566045762472024819, 3502, 11895, 0, 0, 0, 4612640687988359990, 0] },
    Golden { name: "memcached-hp-smton", seed: 2024, row: [53237, 51199, 97279, 352936, 11368, 16118, 4688871485271014210, 4688897573220515840, 4575113243075054527, 3550, 34408, 0, 0, 0, 4612742282370748235, 0] },
    Golden { name: "memcached-hp-smton", seed: 7, row: [53110, 51199, 92159, 199660, 9650, 16312, 4688933205541786359, 4688897573220515840, 4575212262395839636, 3540, 34738, 0, 0, 0, 4612744140134867921, 0] },
    Golden { name: "memcached-lp-c1eon", seed: 2024, row: [86103, 79871, 227327, 340307, 31507, 2765, 4677270197034131759, 4677104761256804352, 4607055149446385872, 59086, 555, 1994, 2721, 234, 4608769835361518673, 0] },
    Golden { name: "memcached-lp-c1eon", seed: 7, row: [92922, 82943, 231423, 298605, 37073, 2705, 4677117487085829537, 4677104761256804352, 4607047895694264783, 63574, 288, 1610, 3027, 431, 4608389960108623071, 0] },
    Golden { name: "hdsearch-hp-base", seed: 2024, row: [334974, 335871, 455321, 455321, 24765, 61, 4652682979097784168, 4652007308841189376, 0, 2000, 68, 0, 0, 0, 4597819831491481356, 0] },
    Golden { name: "hdsearch-hp-base", seed: 7, row: [325160, 331775, 443518, 443518, 38995, 77, 4653986103989963131, 4652007308841189376, 0, 2000, 84, 0, 0, 0, 4597820984412985963, 0] },
    Golden { name: "socialnet-lp-base", seed: 2024, row: [2008732, 1359871, 5754657, 5754657, 1307849, 21, 4645549021875550436, 4643985272004935680, 4607182418800017408, 120724, 0, 3, 28, 22, 4587347853031184738, 0] },
    Golden { name: "socialnet-lp-base", seed: 7, row: [2534609, 1261567, 12401600, 12401600, 2483363, 30, 4648097934164652487, 4643985272004935680, 4607182418800017408, 111810, 2, 2, 36, 29, 4588863960799322860, 0] },
    Golden { name: "synthetic-hp-100us", seed: 2024, row: [157598, 151551, 266239, 328563, 25195, 527, 4666590823845481434, 4666723172467343360, 0, 3499, 1201, 0, 0, 0, 4612592153492312952, 0] },
    Golden { name: "synthetic-hp-100us", seed: 7, row: [157624, 151551, 253951, 357851, 25071, 546, 4666784256446664249, 4666723172467343360, 0, 3481, 1268, 0, 0, 0, 4612592962728367398, 0] },
    Golden { name: "memcached-hp-closed", seed: 2024, row: [121801, 117759, 231423, 2528326, 59094, 38335, 4694345270288692262, 4677104761256804352, 4580198118814716967, 3626, 77769, 0, 0, 0, 4612945505338112090, 0] },
    Golden { name: "memcached-hp-closed", seed: 7, row: [121476, 118783, 227327, 926585, 33755, 38390, 4694354019296147077, 4677104761256804352, 4578658944735367939, 3595, 78326, 0, 0, 0, 4612947422153430093, 0] },
    Golden { name: "memcached-lp-busywait-kernel", seed: 2024, row: [43602, 42495, 76799, 184941, 8018, 5431, 4681647810954152922, 4681608360884174848, 0, 2000, 451, 1923, 2647, 227, 4608819955447092279, 0] },
    Golden { name: "memcached-lp-busywait-kernel", seed: 7, row: [43487, 42495, 68607, 225961, 8195, 5374, 4681575273728709367, 4681608360884174848, 0, 2000, 219, 1472, 3050, 413, 4608501208356957412, 0] },
];

#[rustfmt::skip]
const GOLDEN_PHASED: &[PhasedGolden] = &[
    PhasedGolden { name: "memcached-decay-flip", seed: 2024, row: [67785, 65023, 212991, 270453, 28207, 5422, 4681636357708030255, 4681608360884174848, 4602272902627285229, 26343, 6571, 1711, 2492, 223, 4611593517344072078, 0], phases: &[[2465, 81919], [2957, 221183]] },
    PhasedGolden { name: "memcached-decay-flip", seed: 7, row: [68549, 74751, 114687, 246024, 20502, 5370, 4681570183397099293, 4681608360884174848, 4602271503387232917, 25555, 7669, 2152, 1015, 23, 4612152572003233518, 0], phases: &[[2418, 65535], [2952, 169983]] },
    PhasedGolden { name: "memcached-stepped-load", seed: 2024, row: [51501, 50175, 84991, 256161, 9666, 6752, 4683328892968379885, 4683821311287012011, 4568641754946632713, 3530, 13842, 0, 0, 0, 4612650086368026567, 0], phases: &[[1212, 74751], [5540, 84991]] },
    PhasedGolden { name: "memcached-stepped-load", seed: 7, row: [51065, 50175, 74751, 175549, 6960, 6758, 4683336528465794996, 4683821311287012011, 4571820073743848177, 3507, 13911, 0, 0, 0, 4612649697189464766, 0], phases: &[[1173, 68607], [5585, 75775]] },
];

#[rustfmt::skip]
const GOLDEN_SHARDED: &[ShardedGolden] = &[
    ShardedGolden { name: "memcached-sharded-rr", seed: 2024, row: [63632, 52735, 219135, 309922, 29829, 8541, 4684674578123150677, 4684737570976825344, 4598062300206520783, 20139, 14529, 1201, 2499, 386, 4625057673236040905, 0], shards: &[[2122, 69631], [2132, 68607], [2152, 70655], [2135, 241663]] },
    ShardedGolden { name: "memcached-sharded-rr", seed: 7, row: [61124, 52223, 210943, 275905, 26373, 8575, 4684696212032493492, 4684737570976825344, 4598135755496799562, 18319, 14538, 1334, 2475, 305, 4625038709249750079, 0], shards: &[[2126, 66559], [2120, 68607], [2172, 71679], [2157, 237567]] },
    ShardedGolden { name: "memcached-sharded-hot", seed: 2024, row: [64096, 52735, 221183, 343783, 31147, 8540, 4684673941831699418, 4684737570976825344, 4598028424404894093, 20093, 14550, 1161, 2479, 408, 4625059539192180168, 0], shards: &[[4242, 227327], [2206, 227327], [1036, 66559], [1056, 68607]] },
    ShardedGolden { name: "memcached-sharded-hot", seed: 7, row: [61601, 52735, 217087, 364560, 27905, 8575, 4684696212032493492, 4684737570976825344, 4598143272458414201, 18360, 14546, 1299, 2474, 322, 4625050384009145271, 0], shards: &[[4325, 192511], [2135, 241663], [1022, 67583], [1093, 66559]] },
];

#[rustfmt::skip]
const GOLDEN_PHASED_SHARDED: &[PhasedShardedGolden] = &[
    PhasedShardedGolden { name: "memcached-phased-sharded-rr", seed: 2024, row: [76787, 77823, 233471, 295859, 34778, 9744, 4685440036739015566, 4685409494749355122, 4602571210295980229, 34900, 11774, 3132, 4608, 530, 4621980925655107064, 0], shards: &[[2279, 233471], [2676, 67583], [2183, 225279], [2606, 243711]], phases: &[[3539, 225279], [6205, 235519]] },
    PhasedShardedGolden { name: "memcached-phased-sharded-rr", seed: 7, row: [73447, 70655, 223231, 291616, 33458, 9711, 4685419039121124011, 4685409494749355122, 4602658467752752939, 33948, 11205, 3204, 4983, 605, 4621852327839773336, 0], shards: &[[2199, 231423], [2667, 68607], [2176, 231423], [2669, 227327]], phases: &[[3503, 204799], [6208, 229375]] },
    PhasedShardedGolden { name: "memcached-phased-sharded-hot", seed: 2024, row: [77193, 77823, 233471, 321333, 35501, 9740, 4685437491573210529, 4685409494749355122, 4602572891684678145, 35283, 11761, 3111, 4620, 550, 4621992193155901981, 0], shards: &[[4975, 231423], [2381, 247807], [1323, 67583], [1061, 235519]], phases: &[[3540, 221183], [6200, 239615]] },
    PhasedShardedGolden { name: "memcached-phased-sharded-hot", seed: 7, row: [73273, 70655, 225279, 363400, 33219, 9712, 4685419675412575270, 4685409494749355122, 4602673731317673419, 34553, 11217, 3150, 4993, 620, 4621838445655178980, 0], shards: &[[4921, 229375], [2367, 225279], [1327, 74751], [1097, 215039]], phases: &[[3504, 202751], [6208, 229375]] },
];

#[rustfmt::skip]
const GOLDEN_COHORT: &[CohortGolden] = &[
    CohortGolden { name: "memcached-cohort-mixed", seed: 2024, row: [67685, 52735, 235519, 275991, 36382, 2377, 4676282672701777389, 4676280127535972352, 4598770916124369142, 25913, 3895, 320, 839, 210, 4620745502977932053, 0], cohorts: &[[663, 245759], [641, 74751]] },
    CohortGolden { name: "memcached-cohort-mixed", seed: 7, row: [68412, 52735, 231423, 259127, 37878, 2410, 4676366663173343611, 4676280127535972352, 4598656444265960809, 26213, 3942, 278, 827, 264, 4620770333808242528, 0], cohorts: &[[659, 243711], [663, 61951]] },
    CohortGolden { name: "memcached-cohort-sharded", seed: 2024, row: [82660, 78847, 239615, 278986, 43606, 1304, 4672367006375370449, 4672326283722489856, 4602772707261717850, 44761, 1485, 328, 830, 217, 4618105956209793357, 0], cohorts: &[[663, 243711], [641, 69631]] },
    CohortGolden { name: "memcached-cohort-sharded", seed: 7, row: [86268, 77823, 247807, 456004, 50216, 1321, 4672453542012741708, 4672326283722489856, 4602687784533550768, 44229, 1542, 272, 826, 269, 4618142311024528556, 0], cohorts: &[[658, 253951], [663, 80895]] },
];

#[rustfmt::skip]
const GOLDEN_CONTROL: &[ControlGolden] = &[
    ControlGolden { name: "do_nothing", seed: 2024, windows: &[[2534, 219135], [3287, 219135], [3318, 212991]], decisions: 0, hedges: 0 },
    ControlGolden { name: "do_nothing", seed: 7, windows: &[[2544, 184319], [3263, 210943], [3279, 215039]], decisions: 0, hedges: 0 },
    ControlGolden { name: "hedge_requests", seed: 2024, windows: &[[2534, 219135], [3287, 169983], [3318, 167935]], decisions: 2, hedges: 175 },
    ControlGolden { name: "hedge_requests", seed: 7, windows: &[[2544, 184319], [3263, 169983], [3279, 167935]], decisions: 2, hedges: 182 },
    ControlGolden { name: "reroute_hot_shard", seed: 2024, windows: &[[2534, 219135], [3287, 215039], [3318, 217087]], decisions: 4, hedges: 0 },
    ControlGolden { name: "reroute_hot_shard", seed: 7, windows: &[[2544, 184319], [3263, 212991], [3279, 219135]], decisions: 4, hedges: 0 },
    ControlGolden { name: "remediate_node", seed: 2024, windows: &[[2534, 219135], [3340, 69631], [3360, 72703]], decisions: 2, hedges: 0 },
    ControlGolden { name: "remediate_node", seed: 7, windows: &[[2544, 184319], [3217, 66559], [3257, 72703]], decisions: 2, hedges: 0 },
    ControlGolden { name: "admission_throttle", seed: 2024, windows: &[[2534, 219135], [2928, 204799], [2690, 206847]], decisions: 4, hedges: 0 },
    ControlGolden { name: "admission_throttle", seed: 7, windows: &[[2544, 184319], [2817, 217087], [2687, 210943]], decisions: 4, hedges: 0 },
];

/// Every controller-enabled run must be bit-identical across worker
/// counts — the decision loop sees only canonical-order windowed stats,
/// so parallelism is presentation, not physics. The pins also audit the
/// decision and hedge accounting of every shipped policy.
#[test]
fn controlled_runs_match_their_pins() {
    assert!(!GOLDEN_CONTROL.is_empty(), "control golden table must be populated");
    let policies = control_policies();
    for g in GOLDEN_CONTROL {
        let policy = policies
            .iter()
            .find(|p| p.name() == g.name)
            .unwrap_or_else(|| panic!("unknown control golden policy {}", g.name));
        for workers in [1usize, 2, 3, 4, 8] {
            let (windows, decisions, hedges) = observe_control(policy.as_ref(), g.seed, workers);
            assert_eq!(
                windows, g.windows,
                "{} seed {}: windowed stats drifted from the pin at {workers} workers",
                g.name, g.seed
            );
            assert_eq!(
                decisions, g.decisions,
                "{} seed {}: decision count drifted at {workers} workers",
                g.name, g.seed
            );
            assert_eq!(
                hedges, g.hedges,
                "{} seed {}: hedge count drifted at {workers} workers",
                g.name, g.seed
            );
        }
    }
    // The pins themselves encode the mitigation findings: the baseline
    // never acts or hedges, every other policy acts on the straggler
    // signal, only the hedging policy fires hedges, and the two
    // tail-repairing policies beat the baseline's post-decision tail.
    let worst_after = |g: &&ControlGolden| g.windows.iter().skip(1).map(|w| w[1]).max().unwrap();
    for seed in [2024u64, 7] {
        let by_name = |n: &str| {
            GOLDEN_CONTROL
                .iter()
                .find(|g| g.name == n && g.seed == seed)
                .unwrap_or_else(|| panic!("missing control pin {n} seed {seed}"))
        };
        let base = by_name("do_nothing");
        assert_eq!(base.decisions, 0, "the baseline must not act");
        assert_eq!(base.hedges, 0, "the baseline must not hedge");
        for g in GOLDEN_CONTROL.iter().filter(|g| g.seed == seed && g.name != "do_nothing") {
            assert!(g.decisions > 0, "{}: the straggler signal must trigger the policy", g.name);
            assert_eq!(g.hedges > 0, g.name == "hedge_requests", "{}: hedge accounting", g.name);
        }
        for n in ["hedge_requests", "remediate_node"] {
            assert!(
                worst_after(&by_name(n)) < worst_after(&base),
                "{n} seed {seed}: post-decision pooled tail must beat the do-nothing baseline"
            );
        }
    }
}

/// A cohort of `population: 1` must be bit-identical to the equivalent
/// explicit `ClientNode` — the cohort layer's central invariant (the
/// analogue of the shard layer's K=1 rule), checked against the same
/// `GOLDEN` rows the static kernel is pinned by, through the parallel
/// `run_cohorted` entry point. Open-loop shapes exercise the *pooled*
/// lowering (a pool of one), the closed-loop shape the tracked lowering.
#[test]
fn population_one_cohort_reproduces_the_static_goldens() {
    let by_name = cases();
    for g in GOLDEN {
        let (_, parts) = by_name.iter().find(|(n, _)| *n == g.name).unwrap();
        let spec = RunSpec {
            service: &parts.service,
            server: &parts.server,
            client: &parts.client,
            generator: &parts.generator,
            link: &parts.link,
            qps: parts.qps,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(6),
        };
        // Closed loops cannot pool (they pace by think time), so their
        // single member rides the tracked path instead.
        let tracked = if parts.generator.loop_mode == LoopMode::Open { 0 } else { 1 };
        let cohorts = [CohortSpec::new(spec.client_node(), 1).with_tracked(tracked)];
        let topo = TopologySpec {
            shards: None,
            service: &parts.service,
            server: &parts.server,
            nodes: &[],
            duration: spec.duration,
            warmup: spec.warmup,
            cohorts: &cohorts,
        };
        let run = run_cohorted(&topo, g.seed, 2);
        let row = golden_row(&run.fleet.aggregate);
        assert_eq!(
            row, g.row,
            "{} seed {}: a population-1 cohort drifted from the static pin",
            g.name, g.seed
        );
        // The cohort rollup of a one-member fleet is that member.
        assert_eq!(run.cohorts.len(), 1);
        assert_eq!(
            golden_row(&run.cohorts[0].result),
            g.row,
            "{} seed {}: cohort rollup drifted",
            g.name,
            g.seed
        );
    }
}

#[test]
fn cohorted_runs_match_their_pins() {
    assert!(!GOLDEN_COHORT.is_empty(), "cohort golden table must be populated");
    let by_name = cohort_cases();
    for g in GOLDEN_COHORT {
        let (_, shards, nodes, cohorts) = by_name
            .iter()
            .find(|(n, _, _, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown cohort golden case {}", g.name));
        let (row, per_cohort) = observe_cohort(shards.as_ref(), nodes, cohorts, g.seed);
        assert_eq!(row, g.row, "{} seed {} aggregate drifted from the pin", g.name, g.seed);
        assert_eq!(per_cohort, g.cohorts, "{} seed {} per-cohort stats drifted", g.name, g.seed);
    }
    // The pins themselves encode the paper's finding at cohort
    // granularity: the low-power class posts the worse tail.
    for g in GOLDEN_COHORT {
        assert!(g.cohorts[0][1] > g.cohorts[1][1], "{}: LP cohort tail must exceed HP's", g.name);
    }
}

/// A one-shard tier must reproduce the static `run_once` pins bit for
/// bit — the shard layer's central invariant (K=1 is the degenerate
/// case), checked against the same `GOLDEN` rows the static kernel is
/// pinned by, through the *parallel* entry point.
#[test]
fn one_shard_tier_reproduces_the_static_goldens() {
    let by_name = cases();
    for g in GOLDEN {
        let (_, parts) = by_name.iter().find(|(n, _)| *n == g.name).unwrap();
        let spec = RunSpec {
            service: &parts.service,
            server: &parts.server,
            client: &parts.client,
            generator: &parts.generator,
            link: &parts.link,
            qps: parts.qps,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(6),
        };
        let nodes = [spec.client_node()];
        let one = ShardSpec::uniform(parts.server, 1);
        let topo = TopologySpec {
            shards: Some(&one),
            service: &parts.service,
            server: &parts.server,
            nodes: &nodes,
            duration: spec.duration,
            warmup: spec.warmup,
            cohorts: &[],
        };
        let sharded = run_topology_sharded(&topo, g.seed, 4);
        let row = golden_row(&sharded.fleet.aggregate);
        assert_eq!(row, g.row, "{} seed {}: a one-shard tier drifted from the static pin", g.name, g.seed);
    }
}

#[test]
fn sharded_runs_match_their_pins() {
    assert!(!GOLDEN_SHARDED.is_empty(), "sharded golden table must be populated");
    let by_name = sharded_cases();
    for g in GOLDEN_SHARDED {
        let (_, shards, nodes) = by_name
            .iter()
            .find(|(n, _, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown sharded golden case {}", g.name));
        let (row, per_shard) = observe_sharded(shards, nodes, g.seed);
        assert_eq!(row, g.row, "{} seed {} aggregate drifted from the pin", g.name, g.seed);
        assert_eq!(per_shard, g.shards, "{} seed {} per-shard stats drifted", g.name, g.seed);
    }
    // The pins themselves encode the findings: under the hot-shard
    // assignment, shard 0 serves half the fleet (sample plurality) and
    // its tail dwarfs the clean cold shards' — while a cold shard that
    // drew an LP client can still post a comparable tail, the paper's
    // client-side skew at shard granularity.
    let hot =
        GOLDEN_SHARDED.iter().find(|g| g.name == "memcached-sharded-hot").expect("hot-shard pin present");
    assert!(hot.shards.iter().skip(1).all(|s| s[0] < hot.shards[0][0]), "hot pin must show the load skew");
    let best_cold = hot.shards.iter().skip(1).map(|s| s[1]).min().expect("cold shards present");
    assert!(hot.shards[0][1] > 2 * best_cold, "hot-shard tail must dwarf the clean cold shards");
}

/// A single-phase schedule over a K-shard tier must be bit-identical to
/// the static sharded kernel — the phased×sharded unification's central
/// invariant, checked by re-running every `GOLDEN_SHARDED` row through
/// the phased path (a static topology's merged schedule is the single
/// all-covering phase).
#[test]
fn single_phase_schedule_over_a_sharded_tier_reproduces_the_sharded_goldens() {
    let by_name = sharded_cases();
    let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let server = MachineConfig::server_baseline();
    for g in GOLDEN_SHARDED {
        let (_, shards, nodes) = by_name
            .iter()
            .find(|(n, _, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown sharded golden case {}", g.name));
        let topo = TopologySpec {
            shards: Some(shards),
            service: &service,
            server: &server,
            nodes,
            duration: SimDuration::from_ms(60),
            warmup: SimDuration::from_ms(6),
            cohorts: &[],
        };
        let run = run_phased_sharded(&topo, g.seed, 3).expect("valid phased sharded topology");
        assert_eq!(
            golden_row(&run.fleet.aggregate),
            g.row,
            "{} seed {}: the phased path drifted from the static sharded pin",
            g.name,
            g.seed
        );
        let per_shard: Vec<[u64; 2]> =
            run.shards.iter().map(|s| [s.result.samples, s.result.p99.as_ns()]).collect();
        assert_eq!(per_shard, g.shards, "{} seed {}: per-shard stats drifted", g.name, g.seed);
        assert_eq!(run.phases.len(), 1, "a static topology merges to a single phase");
        assert_eq!(run.phases[0].samples, g.row[5], "the single phase pools every sample");
    }
}

#[test]
fn phased_sharded_runs_match_their_pins() {
    assert!(!GOLDEN_PHASED_SHARDED.is_empty(), "phased sharded golden table must be populated");
    let by_name = phased_sharded_cases();
    for g in GOLDEN_PHASED_SHARDED {
        let (_, shards, nodes) = by_name
            .iter()
            .find(|(n, _, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown phased sharded golden case {}", g.name));
        // The pin holds at every worker count: the canonical per-phase
        // merge order makes the schedule presentation, not physics.
        for workers in [1usize, 2, 3, 4, 8] {
            let (row, per_shard, per_phase) = observe_phased_sharded(shards, nodes, g.seed, workers);
            assert_eq!(
                row, g.row,
                "{} seed {}: aggregate drifted from the pin at {workers} workers",
                g.name, g.seed
            );
            assert_eq!(
                per_shard, g.shards,
                "{} seed {}: per-shard stats drifted at {workers} workers",
                g.name, g.seed
            );
            assert_eq!(
                per_phase, g.phases,
                "{} seed {}: per-phase stats drifted at {workers} workers",
                g.name, g.seed
            );
        }
    }
    // The pins themselves encode the finding: half the fleet decays to
    // LP at the boundary, so the second phase's pooled tail exceeds the
    // first's in every pinned shape.
    for g in GOLDEN_PHASED_SHARDED {
        assert!(g.phases[1][1] > g.phases[0][1], "{}: decayed phase tail must exceed the first's", g.name);
    }
}

/// A trivial all-covering phase schedule must reproduce the static
/// `run_once` pins bit for bit — the phase layer's central invariant,
/// checked against the same `GOLDEN` rows the static kernel is pinned
/// by.
#[test]
fn single_phase_schedule_reproduces_the_static_goldens() {
    let by_name = cases();
    for g in GOLDEN.iter().take(4) {
        let (_, parts) = by_name.iter().find(|(n, _)| *n == g.name).unwrap();
        let trivial = NodeDynamics::new(PhaseSchedule::single())
            .with_machines(vec![parts.client])
            .with_rates(vec![1.0])
            .with_links(vec![parts.link]);
        let (row, phases) = observe_phased(parts, &trivial, g.seed);
        assert_eq!(
            row, g.row,
            "{} seed {}: a single-phase schedule drifted from the static pin",
            g.name, g.seed
        );
        assert_eq!(phases.len(), 1, "one phase covers the whole window");
        assert_eq!(phases[0][0], g.row[5], "the single phase pools every sample");
    }
}

#[test]
fn phased_runs_match_their_pins() {
    assert!(!GOLDEN_PHASED.is_empty(), "phased golden table must be populated");
    let by_name = phased_cases();
    for g in GOLDEN_PHASED {
        let (_, parts, dynamics) = by_name
            .iter()
            .find(|(n, _, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown phased golden case {}", g.name));
        let (row, phases) = observe_phased(parts, dynamics, g.seed);
        assert_eq!(row, g.row, "{} seed {} aggregate drifted from the pin", g.name, g.seed);
        assert_eq!(phases, g.phases, "{} seed {} per-phase stats drifted", g.name, g.seed);
    }
    // The pins themselves encode the finding: the decayed second phase
    // carries a far worse p99, the surged second phase far more samples.
    let decay = &GOLDEN_PHASED[0];
    assert!(decay.phases[1][1] > 2 * decay.phases[0][1], "decay pin must show a regime change");
    let stepped = &GOLDEN_PHASED[2];
    assert!(stepped.phases[1][0] > 3 * stepped.phases[0][0], "stepped pin must show the load step");
}

#[test]
fn one_by_one_topology_matches_pre_refactor_run_once() {
    assert!(!GOLDEN.is_empty(), "golden table must be populated");
    let by_name = cases();
    for g in GOLDEN {
        let (_, parts) = by_name
            .iter()
            .find(|(n, _)| *n == g.name)
            .unwrap_or_else(|| panic!("unknown golden case {}", g.name));
        let row = observe(parts, g.seed);
        assert_eq!(row, g.row, "{} seed {} drifted from the pre-refactor pin", g.name, g.seed);
    }
}
