//! Property tests for `tpv-stats`: invariants of the descriptive and
//! inferential statistics that must hold for arbitrary sample sets, not
//! just the hand-picked vectors of the unit tests. Checked with
//! `support/proptest` (deterministic inputs; swap the path dependency
//! for the real crate to get shrinking).

use proptest::prelude::*;
use tpv::sim::SimRng;
use tpv::stats::bootstrap::bootstrap_ci;
use tpv::stats::desc;
use tpv::stats::mannwhitney::mann_whitney_u;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `percentile` is monotone in `p` and bracketed by the sample
    /// min/max for any non-empty sample set.
    #[test]
    fn percentile_is_monotone_in_p_and_bounded(
        xs in prop::collection::vec(-1e9f64..1e9, 1..300),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = desc::percentile(&xs, lo);
        let b = desc::percentile(&xs, hi);
        prop_assert!(a <= b, "p{lo} = {a} !<= p{hi} = {b}");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= a && b <= max, "percentiles escaped [{min}, {max}]");
        // The extreme ranks are exactly the extreme order statistics.
        prop_assert_eq!(desc::percentile(&xs, 0.0), min);
        prop_assert_eq!(desc::percentile(&xs, 100.0), max);
    }

    /// A bootstrap CI always contains the point estimate it was built
    /// around, for mean and median alike.
    #[test]
    fn bootstrap_ci_contains_the_point_estimate(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        seed in 0u64..1_000,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        for stat in [desc::mean as fn(&[f64]) -> f64, desc::median] {
            let ci = bootstrap_ci(&xs, stat, 0.95, 200, &mut rng).expect("n >= 2");
            let point = stat(&xs);
            prop_assert!(ci.contains(point), "{point} outside [{}, {}]", ci.low, ci.high);
            prop_assert!(ci.low <= ci.mid && ci.mid <= ci.high);
        }
    }

    /// `mean` is affine-equivariant and `std_dev` translation-invariant
    /// and absolutely scale-equivariant: `mean(a·x + b) = a·mean(x) + b`,
    /// `std(a·x + b) = |a|·std(x)`.
    #[test]
    fn mean_and_std_dev_respect_affine_transforms(
        xs in prop::collection::vec(-1e5f64..1e5, 2..200),
        scale in -50.0f64..50.0,
        shift in -1e5f64..1e5,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let magnitude = xs.iter().fold(0.0f64, |a, x| a.max(x.abs()));
        let tol = 1e-7 * (magnitude * scale.abs() + shift.abs() + 1.0);
        let mean_err = (desc::mean(&ys) - (desc::mean(&xs) * scale + shift)).abs();
        prop_assert!(mean_err < tol, "mean error {mean_err} > {tol}");
        let std_err = (desc::std_dev(&ys) - desc::std_dev(&xs) * scale.abs()).abs();
        prop_assert!(std_err < tol, "std error {std_err} > {tol}");
    }

    /// Mann–Whitney is symmetric under swapping the samples:
    /// `U1 + U2 = n1·n2`, identical p-values, negated effect size.
    #[test]
    fn mann_whitney_is_symmetric_under_swap(
        xs in prop::collection::vec(-1e3f64..1e3, 2..80),
        ys in prop::collection::vec(-1e3f64..1e3, 2..80),
    ) {
        let forward = mann_whitney_u(&xs, &ys);
        let backward = mann_whitney_u(&ys, &xs);
        match (forward, backward) {
            (Some(a), Some(b)) => {
                let u_sum = a.u + b.u;
                let expect = (xs.len() * ys.len()) as f64;
                prop_assert!((u_sum - expect).abs() < 1e-6, "U1+U2 = {u_sum} != {expect}");
                prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
                prop_assert!((a.effect_size + b.effect_size).abs() < 1e-9);
                prop_assert!(a.differs(0.05) == b.differs(0.05));
            }
            (a, b) => prop_assert_eq!(a.is_none(), b.is_none(), "degeneracy must be symmetric"),
        }
    }
}
