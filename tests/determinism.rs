//! End-to-end determinism: the whole point of a seeded simulation is that
//! every paper claim is a reproducible assertion. Same seed ⇒ bit-identical
//! results, for every benchmark service, regardless of execution strategy.

use tpv::core::runtime::{run_once, RunSpec};
use tpv::hw::MachineConfig;
use tpv::loadgen::GeneratorSpec;
use tpv::net::LinkConfig;
use tpv::services::hdsearch::HdSearchConfig;
use tpv::services::kv::KvConfig;
use tpv::services::socialnet::SocialConfig;
use tpv::services::synthetic::SyntheticConfig;
use tpv::services::{ServiceConfig, ServiceKind};
use tpv::sim::SimDuration;

fn services() -> Vec<(ServiceConfig, GeneratorSpec, f64, u64)> {
    vec![
        (
            ServiceConfig::new(ServiceKind::Memcached(KvConfig {
                preload_keys: 2_000,
                ..KvConfig::default()
            })),
            GeneratorSpec::mutilate(),
            100_000.0,
            40,
        ),
        (
            ServiceConfig::new(ServiceKind::HdSearch(HdSearchConfig {
                dataset_size: 512,
                profile_queries: 32,
                ..HdSearchConfig::default()
            })),
            GeneratorSpec::microsuite_client(),
            1_000.0,
            200,
        ),
        (
            ServiceConfig::new(ServiceKind::SocialNetwork(SocialConfig {
                users: 200,
                ..SocialConfig::default()
            })),
            GeneratorSpec::wrk2(),
            300.0,
            400,
        ),
        (
            ServiceConfig::new(ServiceKind::Synthetic(SyntheticConfig::with_delay(SimDuration::from_us(
                100,
            )))),
            GeneratorSpec::synthetic_client(),
            10_000.0,
            60,
        ),
    ]
}

#[test]
fn same_seed_is_bit_identical_for_every_service() {
    for (service, generator, qps, ms) in services() {
        let client = MachineConfig::low_power();
        let server = MachineConfig::server_baseline();
        let link = LinkConfig::cloudlab_lan();
        let spec = RunSpec {
            service: &service,
            server: &server,
            client: &client,
            generator: &generator,
            link: &link,
            qps,
            duration: SimDuration::from_ms(ms),
            warmup: SimDuration::from_ms(ms / 10),
        };
        let a = run_once(&spec, 12345);
        let b = run_once(&spec, 12345);
        assert_eq!(a, b, "{} not deterministic", service.kind.name());
        assert!(a.samples > 0, "{} produced no samples", service.kind.name());
        let c = run_once(&spec, 54321);
        assert_ne!(a, c, "{} ignored the seed", service.kind.name());
    }
}

#[test]
fn seeds_change_results_but_not_their_scale() {
    let service =
        ServiceConfig::new(ServiceKind::Memcached(KvConfig { preload_keys: 2_000, ..KvConfig::default() }));
    let client = MachineConfig::high_performance();
    let server = MachineConfig::server_baseline();
    let generator = GeneratorSpec::mutilate();
    let link = LinkConfig::cloudlab_lan();
    let spec = RunSpec {
        service: &service,
        server: &server,
        client: &client,
        generator: &generator,
        link: &link,
        qps: 100_000.0,
        duration: SimDuration::from_ms(50),
        warmup: SimDuration::from_ms(5),
    };
    let avgs: Vec<f64> = (0..5).map(|s| run_once(&spec, s).avg_us()).collect();
    let min = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = avgs.iter().cloned().fold(0.0f64, f64::max);
    assert!(min > 20.0 && max < 200.0, "avg out of plausible range: {avgs:?}");
    assert!(max / min < 1.5, "run-to-run spread implausibly large for HP: {avgs:?}");
}
