//! Determinism contracts of the topology kernel: content-addressed
//! per-node randomness means a fleet's declaration order is presentation,
//! not physics.

use tpv_core::runtime::{run_once, run_topology, RunSpec};
use tpv_core::topology::{ClientNode, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::SimDuration;

fn kv_service() -> ServiceConfig {
    ServiceConfig::without_interference(ServiceKind::Memcached(KvConfig {
        preload_keys: 1_000,
        ..KvConfig::default()
    }))
}

/// Three deliberately heterogeneous nodes: different machines, links and
/// loads.
fn mixed_nodes() -> Vec<ClientNode> {
    let gen = GeneratorSpec::mutilate().with_connections(40);
    vec![
        ClientNode::new("lp-lan", MachineConfig::low_power(), gen, LinkConfig::cloudlab_lan(), 20_000.0),
        ClientNode::new(
            "hp-lan",
            MachineConfig::high_performance(),
            gen,
            LinkConfig::cloudlab_lan(),
            30_000.0,
        ),
        ClientNode::new(
            "hp-xrack",
            MachineConfig::high_performance(),
            gen,
            LinkConfig::cross_rack(),
            10_000.0,
        ),
    ]
}

fn run_with_order(order: &[usize], seed: u64) -> tpv_core::topology::FleetResult {
    let base = mixed_nodes();
    let nodes: Vec<ClientNode> = order.iter().map(|&i| base[i].clone()).collect();
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(50),
        warmup: SimDuration::from_ms(5),
        cohorts: &[],
    };
    run_topology(&topo, seed)
}

#[test]
fn node_declaration_order_cannot_change_per_node_results() {
    for seed in [1u64, 2024] {
        let a = run_with_order(&[0, 1, 2], seed);
        let b = run_with_order(&[2, 0, 1], seed);
        let c = run_with_order(&[1, 2, 0], seed);
        for label in ["lp-lan", "hp-lan", "hp-xrack"] {
            let ra = &a.node(label).unwrap().result;
            let rb = &b.node(label).unwrap().result;
            let rc = &c.node(label).unwrap().result;
            assert_eq!(ra, rb, "{label} differs under permutation (seed {seed})");
            assert_eq!(ra, rc, "{label} differs under permutation (seed {seed})");
        }
        // The pooled aggregate is the same measurement too.
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.aggregate, c.aggregate);
    }
}

#[test]
fn identical_configs_with_distinct_labels_are_independent_machines() {
    let gen = GeneratorSpec::mutilate().with_connections(40);
    let link = LinkConfig::cloudlab_lan();
    let nodes = vec![
        ClientNode::new("twin-a", MachineConfig::high_performance(), gen, link, 25_000.0),
        ClientNode::new("twin-b", MachineConfig::high_performance(), gen, link, 25_000.0),
    ];
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(50),
        warmup: SimDuration::from_ms(5),
        cohorts: &[],
    };
    let fleet = run_topology(&topo, 3);
    let a = &fleet.node("twin-a").unwrap().result;
    let b = &fleet.node("twin-b").unwrap().result;
    // Independent randomness: equal configuration must not mean equal
    // measurements (perfectly correlated clones would understate fleet
    // variance).
    assert_ne!(a, b, "identically configured nodes must draw independent randomness");
    // But they are statistically alike.
    assert!((a.avg.as_us() / b.avg.as_us() - 1.0).abs() < 0.5, "{} vs {}", a.avg, b.avg);
}

#[test]
fn replica_nodes_with_equal_labels_are_also_independent() {
    let gen = GeneratorSpec::mutilate().with_connections(40);
    let link = LinkConfig::cloudlab_lan();
    let clone = ClientNode::new("twin", MachineConfig::high_performance(), gen, link, 25_000.0);
    let nodes = vec![clone.clone(), clone];
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(50),
        warmup: SimDuration::from_ms(5),
        cohorts: &[],
    };
    let fleet = run_topology(&topo, 4);
    assert_ne!(
        fleet.nodes[0].result, fleet.nodes[1].result,
        "replica disambiguation must keep duplicate declarations independent"
    );
}

#[test]
fn single_node_topology_is_run_once() {
    let service = kv_service();
    let server = MachineConfig::server_baseline();
    let client = MachineConfig::low_power();
    let generator = GeneratorSpec::mutilate();
    let link = LinkConfig::cloudlab_lan();
    let spec = RunSpec {
        service: &service,
        server: &server,
        client: &client,
        generator: &generator,
        link: &link,
        qps: 60_000.0,
        duration: SimDuration::from_ms(40),
        warmup: SimDuration::from_ms(4),
    };
    let solo = run_once(&spec, 77);
    let nodes = [spec.client_node()];
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: spec.duration,
        warmup: spec.warmup,
        cohorts: &[],
    };
    let fleet = run_topology(&topo, 77);
    assert_eq!(fleet.aggregate, solo);
}

#[test]
fn fleet_runs_are_seed_deterministic() {
    let a = run_with_order(&[0, 1, 2], 99);
    let b = run_with_order(&[0, 1, 2], 99);
    assert_eq!(a, b, "same topology, same seed ⇒ bit-identical fleet result");
    let c = run_with_order(&[0, 1, 2], 100);
    assert_ne!(a.aggregate, c.aggregate, "different seed ⇒ fresh environments");
}
