//! Quickstart: measure the same server with two client configurations and
//! watch the measurements disagree — the paper's core observation in ~40
//! lines.
//!
//! Run with: `cargo run --release --example quickstart`

use tpv::prelude::*;

fn main() {
    // A memcached-style service driven by a mutilate-style generator
    // (open-loop, time-sensitive block-wait, in-app measurement).
    let experiment = Experiment::builder(Benchmark::memcached())
        // The client-side configurations of the paper's Table II.
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        // The same server for both.
        .server(ServerScenario::baseline())
        .qps(&[100_000.0])
        .runs(15)
        .run_duration(SimDuration::from_ms(300))
        .seed(42)
        .build();

    let results = experiment.run();

    let lp = results.cell("LP", "SMToff", 100_000.0).unwrap().summary();
    let hp = results.cell("HP", "SMToff", 100_000.0).unwrap().summary();

    println!("same server, same load (100K QPS), different *client* machines:\n");
    println!(
        "  low-power client measures:        avg {:>6.1} us   p99 {:>6.1} us",
        lp.avg_median_us(),
        lp.p99_median_us()
    );
    println!(
        "  high-performance client measures: avg {:>6.1} us   p99 {:>6.1} us",
        hp.avg_median_us(),
        hp.p99_median_us()
    );
    println!(
        "\n  the untuned client inflates the average by {:.0}% and the tail by {:.0}%,",
        (lp.avg_median_us() / hp.avg_median_us() - 1.0) * 100.0,
        (lp.p99_median_us() / hp.p99_median_us() - 1.0) * 100.0
    );
    println!("  without anything changing on the machine being measured.");

    // The paper's §VI advice for this generator type:
    let rec = recommend(
        &tpv::loadgen::GeneratorSpec::mutilate(),
        &tpv::core::recommend::TargetEnvironment::Unknown,
        Some(lp.avg_samples_us()),
    );
    println!("\nrecommendation for this (time-sensitive) generator: {:?}", rec.tuning);
    for c in &rec.caveats {
        println!("  caveat: {c}");
    }
}
