//! The accuracy/energy trade-off behind the paper's §VI recommendation.
//!
//! Tuning the client for performance (`idle=poll`, performance governor)
//! fixes measurement accuracy — but the client machines burn full power
//! while idle. This example prices both sides: measurement error vs
//! client-machine energy for LP and HP clients across the load sweep.
//!
//! Run with: `cargo run --release --example energy_accuracy`

use tpv::prelude::*;

fn main() {
    let experiment = Experiment::builder(Benchmark::memcached())
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[10_000.0, 100_000.0, 500_000.0])
        .runs(10)
        .run_duration(SimDuration::from_ms(300))
        .seed(77)
        .build();
    let results = experiment.run();

    println!("client energy vs measurement accuracy (memcached):\n");
    println!("qps      | client | avg meas. (us) | client energy (core-s / s of run)");
    for &q in &[10_000.0, 100_000.0, 500_000.0] {
        for client in ["LP", "HP"] {
            let cell = results.cell(client, "SMToff", q).unwrap();
            let s = cell.summary();
            let energy_rate: f64 = cell.samples.iter().map(|r| r.client_energy_core_secs).sum::<f64>()
                / cell.samples.len() as f64
                / 0.3; // per simulated second (0.3 s runs)
            println!("{:>8} | {client:<6} | {:>14.1} | {energy_rate:>8.1}", q as u64, s.avg_median_us());
        }
    }

    let lp = results.cell("LP", "SMToff", 10_000.0).unwrap();
    let hp = results.cell("HP", "SMToff", 10_000.0).unwrap();
    let lp_e: f64 = lp.samples.iter().map(|r| r.client_energy_core_secs).sum();
    let hp_e: f64 = hp.samples.iter().map(|r| r.client_energy_core_secs).sum();
    println!(
        "\nAt 10K QPS the tuned client burns {:.1}x the generator-thread energy of \
         the default client — the price of the paper's \"tune for performance\" \
         advice, and the reason production fleets run the LP-like configuration \
         the HP measurements do not represent.",
        hp_e / lp_e
    );
}
