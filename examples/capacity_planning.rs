//! Capacity planning: the paper's datacenter ramification (§V-A).
//!
//! "Let us assume a service with a QoS of 99th percentile latency equal to
//! 400us. The LP client finds that the service can handle only 300K
//! queries without violating any QoS constraints. In contrast, the HP
//! client finds that the service can handle 500K queries. In other words,
//! the LP client determines that a deployment will require 1.6x more
//! machines than the HP client."
//!
//! This example reruns that provisioning exercise on the simulated
//! testbed.
//!
//! Run with: `cargo run --release --example capacity_planning`

use tpv::core::scenarios::MEMCACHED_QPS;
use tpv::prelude::*;

const QOS_P99_US: f64 = 400.0;
const TARGET_LOAD_QPS: f64 = 1_000_000.0; // the fleet must sustain this

fn main() {
    let experiment = Experiment::builder(Benchmark::memcached())
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&MEMCACHED_QPS)
        .runs(15)
        .run_duration(SimDuration::from_ms(300))
        .seed(7)
        .build();
    let results = experiment.run();

    println!("QoS target: p99 <= {QOS_P99_US} us\n");
    println!("qps      | LP p99 (us) | HP p99 (us)");
    let mut max_ok = std::collections::HashMap::from([("LP", 0f64), ("HP", 0f64)]);
    for &q in &MEMCACHED_QPS {
        let lp = results.cell("LP", "SMToff", q).unwrap().summary().p99_median_us();
        let hp = results.cell("HP", "SMToff", q).unwrap().summary().p99_median_us();
        for (client, p99) in [("LP", lp), ("HP", hp)] {
            if p99 <= QOS_P99_US {
                let e = max_ok.get_mut(client).unwrap();
                *e = e.max(q);
            }
        }
        println!("{:>8} | {lp:>11.1} | {hp:>11.1}", q as u64);
    }

    let lp_cap = max_ok["LP"];
    let hp_cap = max_ok["HP"];
    println!("\nper-machine capacity under QoS:");
    println!("  measured with the LP client: {lp_cap:>9} QPS");
    println!("  measured with the HP client: {hp_cap:>9} QPS");

    if lp_cap > 0.0 && hp_cap > 0.0 {
        let lp_machines = (TARGET_LOAD_QPS / lp_cap).ceil();
        let hp_machines = (TARGET_LOAD_QPS / hp_cap).ceil();
        println!("\nfleet sizing for {TARGET_LOAD_QPS} QPS:");
        println!("  provisioned from LP measurements: {lp_machines} machines");
        println!("  provisioned from HP measurements: {hp_machines} machines");
        println!("  => the untuned client overprovisions by {:.2}x (paper: 1.6x)", lp_machines / hp_machines);
    } else {
        println!("\n(one client never met the QoS target at the tested loads)");
    }
}
