//! Knob ablation: which Table II client knob actually causes the
//! measurement inflation?
//!
//! Starting from the LP (default) client, flip one knob at a time toward
//! the HP configuration and measure memcached at a low load where the
//! client effect is largest. This is the §VI "space exploration" put to
//! work — and a study the paper leaves as an exercise.
//!
//! Run with: `cargo run --release --example knob_ablation`

use tpv::hw::{CStatePolicy, FreqDriver, FreqGovernor, UncoreMode};
use tpv::prelude::*;

fn main() {
    let lp = MachineConfig::low_power();

    let variants: Vec<(&str, MachineConfig)> = vec![
        ("LP (default)", lp),
        ("LP + C-states off", lp.with_cstates(CStatePolicy::PollIdle)),
        ("LP + C-states<=C1", lp.with_cstates(CStatePolicy::UpToC1)),
        ("LP + performance gov", lp.with_dvfs(FreqDriver::IntelPstate, FreqGovernor::Performance)),
        ("LP + fixed uncore", lp.with_uncore(UncoreMode::Fixed)),
        ("LP + turbo off", lp.with_turbo(false)),
        ("HP (fully tuned)", MachineConfig::high_performance()),
    ];

    let mut builder = Experiment::builder(Benchmark::memcached())
        .server(ServerScenario::baseline())
        .qps(&[50_000.0])
        .runs(12)
        .run_duration(SimDuration::from_ms(300))
        .seed(1234);
    for (label, cfg) in &variants {
        builder = builder.client_labelled(*label, *cfg);
    }
    let results = builder.build().run();

    println!("memcached @ 50K QPS — client knob ablation (avg / p99, µs):\n");
    let hp_avg = results.cell("HP (fully tuned)", "SMToff", 50_000.0).unwrap().summary().avg_median_us();
    for (label, _) in &variants {
        let s = results.cell(label, "SMToff", 50_000.0).unwrap().summary();
        println!(
            "  {label:<22} avg {:>7.1}  p99 {:>7.1}  (+{:>5.1}% vs HP)",
            s.avg_median_us(),
            s.p99_median_us(),
            (s.avg_median_us() / hp_avg - 1.0) * 100.0
        );
    }
    println!(
        "\nReading: disabling C-states removes the deep-sleep exits (most of \
         the tail inflation); the remaining average gap is the thread wake \
         path still executing at powersave frequencies."
    );
}
