//! Points of measurement: where you timestamp decides what you see (§II).
//!
//! The same LP client measures the same service with its timestamp taken
//! at the NIC, after kernel RX, or in the application (the common case).
//! The client-side inflation lives entirely between the NIC and the
//! application — a Lancet-style hardware-timestamping generator would not
//! see it.
//!
//! Run with: `cargo run --release --example measurement_points`

use tpv::loadgen::PointOfMeasurement;
use tpv::prelude::*;

fn main() {
    let mut rows = Vec::new();
    for pom in [PointOfMeasurement::Nic, PointOfMeasurement::Kernel, PointOfMeasurement::InApp] {
        let mut bench = Benchmark::memcached();
        bench.generator = bench.generator.with_pom(pom);
        let results = Experiment::builder(bench)
            .client(MachineConfig::low_power())
            .server(ServerScenario::baseline())
            .qps(&[50_000.0])
            .runs(12)
            .run_duration(SimDuration::from_ms(300))
            .seed(2024)
            .build()
            .run();
        let s = results.cell("LP", "SMToff", 50_000.0).unwrap().summary();
        rows.push((pom, s.avg_median_us(), s.p99_median_us()));
    }

    println!("LP client, memcached @ 50K QPS — same system, three measurement points:\n");
    for (pom, avg, p99) in &rows {
        println!("  {pom:?}:\tavg {avg:>6.1} us\tp99 {p99:>6.1} us");
    }
    let nic = rows[0].1;
    let app = rows[2].1;
    println!(
        "\n  {:.1} us ({:.0}% of the in-app average) is client-side wake-up \
         overhead invisible to a NIC-timestamping generator.",
        app - nic,
        (app - nic) / app * 100.0
    );
}
