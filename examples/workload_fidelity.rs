//! Lancet-style self-checks: let the generator judge its own output.
//!
//! The paper's related work points to Lancet, which validates its own
//! request stream statistically instead of trusting the configuration.
//! This example runs those checks over traced runs: the HP client's
//! stream passes; the LP client's stream flags itself as disrupted —
//! catching the paper's risky scenario *from inside the experiment*.
//!
//! Run with: `cargo run --release --example workload_fidelity`

use tpv::core::fidelity::assess;
use tpv::core::runtime::{run_traced, RunSpec};
use tpv::loadgen::GeneratorSpec;
use tpv::net::LinkConfig;
use tpv::prelude::*;
use tpv::services::{kv::KvConfig, ServiceConfig, ServiceKind};

fn main() {
    let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig::default()));
    let server = MachineConfig::server_baseline();
    let generator = GeneratorSpec::mutilate();
    let link = LinkConfig::cloudlab_lan();

    for (label, client) in [("LP", MachineConfig::low_power()), ("HP", MachineConfig::high_performance())] {
        for qps in [10_000.0, 300_000.0] {
            let spec = RunSpec {
                service: &service,
                server: &server,
                client: &client,
                generator: &generator,
                link: &link,
                qps,
                duration: SimDuration::from_ms(300),
                warmup: SimDuration::from_ms(30),
            };
            let (result, trace) = run_traced(&spec, 7, 50_000);
            let report = assess(&result, &trace);
            println!("{label} client @ {qps:>7.0} QPS:");
            println!("  {}", report.summary());
            println!(
                "  verdict: workload {}\n",
                if report.workload_faithful() {
                    "FAITHFUL — measurements represent the configured load"
                } else {
                    "DISRUPTED — fix the client before trusting these numbers"
                }
            );
        }
    }
}
