//! Iteration planning: how many runs does *your* configuration need, and
//! how long will the evaluation take? (§III methods + §V-C analysis.)
//!
//! Runs a pilot of each client configuration, tests normality, applies
//! Jain's Eq. (3) and CONFIRM, and prices the paper-scale evaluation
//! (2-minute runs) in wall-clock terms.
//!
//! Run with: `cargo run --release --example iteration_planner`

use tpv::core::analysis::{evaluation_time, iteration_estimate};
use tpv::prelude::*;
use tpv::sim::SimRng;

fn main() {
    let pilot = Experiment::builder(Benchmark::memcached())
        .client(MachineConfig::low_power())
        .client(MachineConfig::high_performance())
        .server(ServerScenario::baseline())
        .qps(&[10_000.0, 300_000.0])
        .runs(30)
        .run_duration(SimDuration::from_ms(300))
        .seed(99)
        .build();
    let results = pilot.run();

    let paper_run = SimDuration::from_secs(120);
    let mut rng = SimRng::seed_from_u64(5);

    println!("pilot: 30 runs/cell. Target: 1% error at 95% confidence.\n");
    println!("cell           | normal? | Jain n | CONFIRM | eval time @ 2 min/run");
    for client in ["LP", "HP"] {
        for &q in &[10_000.0, 300_000.0] {
            let summary = results.cell(client, "SMToff", q).unwrap().summary();
            let est = iteration_estimate(&summary, &mut rng);
            let normal = match est.shapiro_pass {
                Some(true) => "yes",
                Some(false) => "no",
                None => "n/a",
            };
            // The paper's rule: trust the parametric count only when the
            // samples look normal; otherwise go non-parametric.
            let chosen =
                if est.shapiro_pass == Some(true) { est.parametric } else { est.confirm.lower_bound() };
            let eval = evaluation_time(chosen, paper_run);
            println!(
                "{client:<3} @ {q:>7.0} | {normal:>7} | {:>6} | {:>7} | {:>6.1} min",
                est.parametric,
                est.confirm.to_string(),
                eval.as_secs() / 60.0
            );
        }
    }
    println!(
        "\nReading: the untuned (LP) client needs an order of magnitude more \
         repetitions at low load to reach the same confidence — Finding 4. \
         Client configuration is not just an accuracy question; it prices \
         your evaluation time."
    );
}
