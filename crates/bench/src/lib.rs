//! Artefact regeneration: the [`study`] registry plus shared plumbing
//! for the thin per-artefact binaries.
//!
//! Every study accepts three environment variables so the suite can be
//! run at paper scale when wall-clock budget allows (see EXPERIMENTS.md
//! at the workspace root):
//!
//! * `TPV_RUNS` — runs per cell (paper: 50; scaled default varies per
//!   experiment).
//! * `TPV_RUN_SECS` — seconds of simulated time per run (paper: 120;
//!   scaled default varies per experiment).
//! * `TPV_SEED` — master seed (default 2024).
//!
//! Results are printed as markdown and written as CSV under `results/`.

use std::path::PathBuf;

use tpv_core::experiment::Cell;
use tpv_core::report::Csv;
use tpv_sim::SimDuration;

pub mod perf;
pub mod rss;
pub(crate) mod studies;
pub mod study;

/// Runs per cell: `TPV_RUNS` or the given default.
pub fn env_runs(default: usize) -> usize {
    std::env::var("TPV_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Simulated seconds per run: `TPV_RUN_SECS` (fractional allowed) or the
/// given default in milliseconds.
pub fn env_duration(default_ms: u64) -> SimDuration {
    match std::env::var("TPV_RUN_SECS").ok().and_then(|v| v.parse::<f64>().ok()) {
        Some(secs) if secs > 0.0 => SimDuration::from_secs_f64(secs),
        _ => SimDuration::from_ms(default_ms),
    }
}

/// Master seed: `TPV_SEED` or 2024.
pub fn env_seed() -> u64 {
    std::env::var("TPV_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(2024)
}

/// `results/` directory next to the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR").map(PathBuf::from).unwrap_or_default();
    // crates/bench -> workspace root.
    let root = base.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(base);
    root.join("results")
}

/// Writes a CSV under `results/` and reports the path on stdout.
pub fn write_csv(name: &str, csv: &Csv) {
    let path = results_dir().join(name);
    match csv.write_to(&path) {
        Ok(()) => println!("\n[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Standard header every binary prints.
pub fn banner(what: &str, runs: usize, duration: SimDuration) {
    println!("== {what} ==");
    println!(
        "runs/cell = {runs}, simulated run length = {:.3}s (paper scale: 50 x 120s; set TPV_RUNS/TPV_RUN_SECS to change)\n",
        duration.as_secs()
    );
}

/// Convenience: a cell's per-run average latencies in µs.
pub fn avg_samples(cell: &Cell) -> Vec<f64> {
    cell.samples.iter().map(|r| r.avg_us()).collect()
}

/// Convenience: a cell's per-run p99 latencies in µs.
pub fn p99_samples(cell: &Cell) -> Vec<f64> {
    cell.samples.iter().map(|r| r.p99_us()).collect()
}
