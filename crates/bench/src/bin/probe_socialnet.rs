//! Diagnostic probe for the Social Network service: drives it directly at
//! a fixed rate and reports per-stage utilisation and completion spans.

use tpv_hw::MachineConfig;
use tpv_services::request::StageOutcome;
use tpv_services::socialnet::{SocialConfig, SocialNetworkService};
use tpv_services::InterferenceProfile;
use tpv_sim::dist::{Exponential, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

fn main() {
    for qps in [100.0f64, 300.0, 600.0] {
        for (label, interference) in
            [("quiet", InterferenceProfile::none()), ("spiky", InterferenceProfile::quiet_server())]
        {
            let mut rng = SimRng::seed_from_u64(7);
            let server = MachineConfig::server_baseline();
            let env = server.draw_environment(&mut rng);
            let mut svc = SocialNetworkService::new(
                SocialConfig::default(),
                &server,
                &env,
                &interference,
                SimDuration::from_secs(2),
                &mut rng,
            );
            let gap = Exponential::with_mean(1e6 / qps);
            let mut t = SimTime::ZERO;
            let mut total = SimDuration::ZERO;
            let mut worst = SimDuration::ZERO;
            let mut n = 0u64;
            while t < SimTime::from_secs(2) {
                t += gap.sample_us(&mut rng);
                let desc = svc.next_descriptor(&mut rng);
                let conn = (n % 20) as usize;
                let mut out = svc.admit(conn, &desc, t, &mut rng);
                let done = loop {
                    match out {
                        StageOutcome::Done(d) => break d,
                        StageOutcome::Continue { at, stage, ctx } => {
                            out = svc.resume(conn, &desc, stage, ctx, at, &mut rng);
                        }
                    }
                };
                let span = done.response_wire.since(t);
                total += span;
                worst = worst.max(span);
                n += 1;
            }
            println!(
                "qps {qps:>5} {label}: n={n} avg={:.2}ms max={:.2}ms",
                total.as_ms() / n as f64,
                worst.as_ms()
            );
        }
    }
}
