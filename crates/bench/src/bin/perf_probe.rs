//! `perf_probe`: times the topology kernel over a fixed scenario matrix
//! and writes a machine-readable `BENCH.json`.
//!
//! Six scenarios cover the kernel's load-bearing shapes:
//!
//! * `samplers` — per-distribution sampler microbench: the aggregate
//!   draw rate of the production (`tpv_math`-backed) samplers is the
//!   gated quantity, and the scenario prints an interleaved A/B table
//!   of ns/draw against inline libm reference transforms — alternating
//!   short blocks on the same core so frequency scaling and cache state
//!   hit both sides equally.
//! * `static_1x1` — the paper's testbed: one HP memcached client at
//!   100K QPS (the `run_once` fast path).
//! * `fleet_16` — a 16-node HP fleet, 100K QPS per node: the
//!   multi-node hot loop the studies sweep (and the scenario the 1.3x
//!   speedup target of PR 4 is defined on).
//! * `diurnal_8` — an 8-node fleet under a 6-step diurnal rate plan:
//!   the phased kernel with per-phase collection. With `--shards K`
//!   (K > 1) the same fleet fans out over a uniform K-shard tier, so
//!   the probe times the phased×sharded path — work-stealing dispatch
//!   plus canonical-order per-phase merges — instead of the
//!   single-stream kernel.
//! * `fleet_256` — 256 nodes over a 16-shard server tier: the sharded
//!   kernel's scale regime. Timed twice — forced serial and on the
//!   machine's cores — so the report records the intra-run parallel
//!   speedup next to the throughput (both executions are bit-identical
//!   by the kernel's determinism contract; the probe asserts their work
//!   counters agree).
//! * `fleet_1m` — one **million** modeled clients as 16 cohorts of
//!   62,500 (two tracked representatives each) over the same 16-shard
//!   tier and the same offered load as `fleet_256`. The cohort layer
//!   lowers the population to 48 simulated nodes, so this scenario is
//!   the flat-memory claim made executable: it runs *after* `fleet_256`
//!   in the matrix and the probe gates the process peak RSS (`VmHWM`)
//!   after it at ≤ 2× the peak recorded after `fleet_256`.
//!
//! Each scenario runs one warm-up plus `--trials` timed trials of the
//! *same* `(topology, seed)` job, so the work is bit-identical across
//! trials and the spread (CoV) measures only machine noise. The warm-up
//! doubles as a calibration run: scenarios faster than ~50 ms are
//! repeated within each trial until the trial clears that floor, and
//! the recorded walls are per-run (`trial / repeats`). Trial walls then
//! pass through Tukey-fence outlier rejection (`iqr_filter`) before the
//! median/CoV summary, so one descheduled trial cannot poison the
//! report. Events/sec divides the deterministic dispatched-event count
//! by the median wall time.
//!
//! Usage:
//!
//! ```text
//! perf_probe [--quick] [--trials N] [--out PATH] [--scenario NAME]
//!            [--shards K] [--baseline PATH [--max-regression F]] [--pin]
//!            [--min-shard-speedup F] [--summary PATH] [--write-baseline]
//! ```
//!
//! With `--baseline`, the fresh report is compared against the given
//! `bench_baseline.json`: only a median events/sec slowdown worse than
//! `--max-regression` (default 1.5) that is *also* Mann–Whitney
//! significant across the two trial samples exits non-zero; smaller or
//! statistically indistinguishable slowdowns and work-counter drift
//! print warnings. `--scenario NAME` probes one scenario (the
//! interleaved-A/B workflow: alternate two binaries on one scenario and
//! compare medians); `--write-baseline` refreshes the checked-in
//! `bench_baseline.json` in place from this probe's results;
//! `--summary PATH` writes the markdown delta table CI appends to
//! `$GITHUB_STEP_SUMMARY`.
//!
//! `--pin` runs the sharded scenarios' parallel legs with round-robin
//! core pinning ([`PinPolicy::RoundRobin`]) and first asserts a pinned
//! execution is bit-identical to an unpinned one — the kernel's
//! determinism contract says pinning is a throughput knob, never a
//! results knob, and this is the smoke test CI points at it.
//!
//! The sharded scenario is additionally gated on its measured speedup:
//! it must reach `min(--min-shard-speedup, 0.7 × workers)` — the cap
//! scales the requirement to the machine (and leaves noise margin on
//! small runners): the full 3x binds wherever ≥5 workers exist, a
//! 4-core CI runner must deliver 2.8x, and a single-core box (where
//! parallelism cannot help) is effectively ungated. With enough trials
//! the gate binds on the two-sample-bootstrap *CI lower bound* of the
//! speedup rather than the point estimate, so one lucky parallel trial
//! cannot carry a failing run. See EXPERIMENTS.md for the schema and
//! how to refresh the baseline.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tpv_bench::perf::{
    compare, events_per_sec_ci, iqr_filter, refreshed_baseline, speedup_ci, summary_markdown, BenchReport,
    RunnerInfo, ScenarioReport, Verdict, SCHEMA,
};
use tpv_core::collect::{Collector, EventCountCollector, PerCohortCollector, PhaseCollector};
use tpv_core::runtime::{run_collected, run_sharded_collected_with, run_topology_sharded_with};
use tpv_core::topology::{uniform_fleet, ClientNode, CohortSpec, NodeDynamics, ShardSpec, TopologySpec};
use tpv_core::PinPolicy;
use tpv_hw::MachineConfig;
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{SimDuration, SimTime};

const SEED: u64 = 2024;
const DEFAULT_TRIALS: usize = 9;
const QUICK_TRIALS: usize = 5;

struct Options {
    quick: bool,
    trials: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression: f64,
    /// Run only the scenario with this name.
    scenario: Option<String>,
    /// Refresh the checked-in baseline in place from this probe.
    write_baseline: bool,
    /// Write the markdown delta table here.
    summary: Option<PathBuf>,
    /// Required fleet_256 parallel speedup (capped by 0.7 × workers).
    min_shard_speedup: f64,
    /// Pin shard workers round-robin over cores (and smoke-check that
    /// pinned and unpinned executions are bit-identical).
    pin: bool,
    /// Shard count for `diurnal_8`: K > 1 runs the phased fleet over a
    /// K-shard tier through the canonical-order per-phase merge path.
    shards: usize,
}

/// Shard count `diurnal_8` reads (the scenario matrix is `fn` pointers,
/// so the knob travels out of band). Set once in `main` from `--shards`.
static DIURNAL_SHARDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        trials: 0,
        out: tpv_bench::results_dir().parent().map(PathBuf::from).unwrap_or_default().join("BENCH.json"),
        baseline: None,
        max_regression: 1.5,
        scenario: None,
        write_baseline: false,
        summary: None,
        min_shard_speedup: 3.0,
        pin: false,
        shards: 1,
    };
    let mut explicit_trials = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                explicit_trials = Some(v.parse::<usize>().map_err(|e| format!("--trials: {e}"))?);
            }
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--max-regression" => {
                let v = args.next().ok_or("--max-regression needs a value")?;
                opts.max_regression = v.parse::<f64>().map_err(|e| format!("--max-regression: {e}"))?;
                if opts.max_regression.is_nan() || opts.max_regression < 1.0 {
                    return Err(format!("--max-regression must be >= 1.0, got {}", opts.max_regression));
                }
            }
            "--scenario" => opts.scenario = Some(args.next().ok_or("--scenario needs a name")?),
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                opts.shards = v.parse::<usize>().map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be positive".to_string());
                }
            }
            "--pin" => opts.pin = true,
            "--write-baseline" => opts.write_baseline = true,
            "--summary" => opts.summary = Some(PathBuf::from(args.next().ok_or("--summary needs a path")?)),
            "--min-shard-speedup" => {
                let v = args.next().ok_or("--min-shard-speedup needs a value")?;
                opts.min_shard_speedup = v.parse::<f64>().map_err(|e| format!("--min-shard-speedup: {e}"))?;
                if !opts.min_shard_speedup.is_finite() || opts.min_shard_speedup < 0.0 {
                    return Err(format!(
                        "--min-shard-speedup must be a non-negative number, got {}",
                        opts.min_shard_speedup
                    ));
                }
            }
            "--help" | "-h" => {
                println!(
                    "perf_probe [--quick] [--trials N] [--out PATH] [--scenario NAME] [--shards K] \
                     [--baseline PATH [--max-regression F]] [--pin] [--min-shard-speedup F] \
                     [--summary PATH] [--write-baseline]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    opts.trials = explicit_trials.unwrap_or(if opts.quick { QUICK_TRIALS } else { DEFAULT_TRIALS });
    if opts.trials == 0 {
        return Err("--trials must be positive".to_string());
    }
    Ok(opts)
}

/// A trial must spend at least this long on the clock, or scheduler
/// jitter dominates what it measures. The warm-up run calibrates a
/// repeat count that pads short scenarios above the floor.
const TRIAL_FLOOR_MS: f64 = 50.0;

/// Times `trials` + 1 executions of `run` (the first is a warm-up that
/// pages in code and allocator arenas *and* calibrates the per-trial
/// repeat count); `run` returns `(events, requests)`, which must be
/// identical across trials — the work is deterministic. Recorded walls
/// are per-run milliseconds after Tukey-fence outlier rejection.
fn time_scenario(name: &str, trials: usize, mut run: impl FnMut() -> (u64, u64)) -> ScenarioReport {
    let warm_started = Instant::now();
    let (events, requests) = run();
    let warm_ms = warm_started.elapsed().as_secs_f64() * 1e3;
    let repeats = if warm_ms >= TRIAL_FLOOR_MS {
        1
    } else {
        ((TRIAL_FLOOR_MS / warm_ms.max(0.01)).ceil() as usize).min(256)
    };
    let mut wall_ms = Vec::with_capacity(trials);
    for _ in 0..trials {
        let started = Instant::now();
        for _ in 0..repeats {
            let (e, r) = run();
            assert_eq!((e, r), (events, requests), "{name}: non-deterministic work counters");
        }
        wall_ms.push(started.elapsed().as_secs_f64() * 1e3 / repeats as f64);
    }
    let kept = iqr_filter(&wall_ms);
    let median = tpv_stats::desc::median(&kept);
    let cov = tpv_stats::desc::coefficient_of_variation(&kept);
    let (ci_low, ci_high) = events_per_sec_ci(events, &kept).unwrap_or((0.0, 0.0));
    ScenarioReport {
        name: name.to_string(),
        trials,
        events,
        requests,
        wall_ms_median: median,
        wall_ms_cov: cov,
        events_per_sec: if median > 0.0 { events as f64 / (median / 1e3) } else { 0.0 },
        wall_ms_serial: None,
        speedup_vs_serial: None,
        repeats,
        peak_rss_kb: 0,
        wall_ms_trials: kept,
        events_per_sec_ci_low: ci_low,
        events_per_sec_ci_high: ci_high,
        wall_ms_parallel_trials: Vec::new(),
        speedup_ci_low: 0.0,
        speedup_ci_high: 0.0,
    }
}

/// Draws per distribution in one timed `samplers` pass.
const SAMPLER_DRAWS: usize = 100_000;
/// Draws per interleaved A/B timing block.
const AB_BLOCK: usize = 8_192;
/// A/B blocks per side (median taken over them).
const AB_ROUNDS: usize = 9;

/// Times `AB_ROUNDS` alternating blocks of each transform (A then B,
/// repeatedly, on one core) and returns their median ns/draw as
/// `(libm, tpv_math)`. Each side owns an identically seeded stream, so
/// both transform the same uniforms.
fn ab_ns_per_draw(
    mut libm_draw: impl FnMut(&mut tpv_sim::SimRng) -> f64,
    mut fast_draw: impl FnMut(&mut tpv_sim::SimRng) -> f64,
) -> (f64, f64) {
    use std::hint::black_box;
    let mut libm_rng = tpv_sim::SimRng::seed_from_u64(SEED);
    let mut fast_rng = tpv_sim::SimRng::seed_from_u64(SEED);
    let mut libm_ns = Vec::with_capacity(AB_ROUNDS);
    let mut fast_ns = Vec::with_capacity(AB_ROUNDS);
    for _ in 0..AB_ROUNDS {
        let started = Instant::now();
        let mut acc = 0.0;
        for _ in 0..AB_BLOCK {
            acc += libm_draw(&mut libm_rng);
        }
        black_box(acc);
        libm_ns.push(started.elapsed().as_nanos() as f64 / AB_BLOCK as f64);
        let started = Instant::now();
        let mut acc = 0.0;
        for _ in 0..AB_BLOCK {
            acc += fast_draw(&mut fast_rng);
        }
        black_box(acc);
        fast_ns.push(started.elapsed().as_nanos() as f64 / AB_BLOCK as f64);
    }
    (tpv_stats::desc::median(&libm_ns), tpv_stats::desc::median(&fast_ns))
}

/// The sampler microbench: gates on the aggregate draw rate of the
/// production samplers and prints the per-distribution interleaved A/B
/// table against libm reference transforms. The reference closures
/// consume the same number of uniforms per draw as the production path
/// (1, or 2 for the Box–Muller pair), so the RNG overhead cancels and
/// the ratio isolates the transcendental kernels.
fn samplers(trials: usize, _pin: PinPolicy) -> ScenarioReport {
    use std::hint::black_box;
    use tpv_sim::dist::{Exponential, GeneralizedPareto, Gev, LogNormal, Normal, Pareto, Sampler, Zipf};

    let exp = Exponential::with_mean(10.0);
    let norm = Normal::new(100.0, 15.0);
    let lnorm = LogNormal::with_mean(100.0, 0.5);
    let pareto = Pareto::new(1.0, 1.5);
    let gpd = GeneralizedPareto::new(0.0, 1.0, 0.2);
    let gev = Gev::new(0.0, 1.0, 0.3);
    let zipf = Zipf::new(10_000, 0.99);

    // Inline libm references replicate each production transform's
    // arithmetic with `std` math calls — perf references, not bit
    // references (the whole point of tpv_math is that libm's bits vary).
    let ln_mu = 100.0f64.ln() - 0.5 * 0.5 / 2.0;
    let table: Vec<(&str, (f64, f64))> = vec![
        ("exponential", ab_ns_per_draw(|r| -10.0 * (1.0 - r.next_f64()).ln(), |r| exp.sample(r))),
        (
            "normal",
            ab_ns_per_draw(
                |r| {
                    let (a, b) = (r.next_f64(), r.next_f64());
                    let z = (-2.0 * (1.0 - a).ln()).sqrt() * (std::f64::consts::TAU * b).cos();
                    100.0 + 15.0 * z
                },
                |r| norm.sample(r),
            ),
        ),
        (
            "lognormal",
            ab_ns_per_draw(
                |r| {
                    let (a, b) = (r.next_f64(), r.next_f64());
                    let z = (-2.0 * (1.0 - a).ln()).sqrt() * (std::f64::consts::TAU * b).cos();
                    (ln_mu + 0.5 * z).exp()
                },
                |r| lnorm.sample(r),
            ),
        ),
        ("pareto", ab_ns_per_draw(|r| 1.0 / (1.0 - r.next_f64()).powf(1.0 / 1.5), |r| pareto.sample(r))),
        ("gpd", ab_ns_per_draw(|r| ((1.0 - r.next_f64()).powf(-0.2) - 1.0) / 0.2, |r| gpd.sample(r))),
        (
            "gev",
            ab_ns_per_draw(
                |r| {
                    let ln_u = -(1.0 - r.next_f64()).ln();
                    (ln_u.powf(-0.3) - 1.0) / 0.3
                },
                |r| gev.sample(r),
            ),
        ),
    ];
    println!("samplers: interleaved A/B, median ns/draw over {AB_ROUNDS} blocks of {AB_BLOCK}");
    println!("| sampler | libm ref | tpv_math | ratio |");
    println!("|---|---|---|---|");
    for (name, (libm_ns, fast_ns)) in &table {
        let ratio = if *fast_ns > 0.0 { libm_ns / fast_ns } else { 0.0 };
        println!("| {name} | {libm_ns:.1} ns | {fast_ns:.1} ns | {ratio:.2}x |");
    }
    println!();

    // The gated leg: one pass over every production sampler. events =
    // total draws, so events/sec is the aggregate sampler draw rate.
    const FAMILIES: u64 = 7;
    time_scenario("samplers", trials, || {
        let mut rng = tpv_sim::SimRng::seed_from_u64(SEED);
        let mut acc = 0.0;
        for _ in 0..SAMPLER_DRAWS {
            acc += exp.sample(&mut rng);
            acc += norm.sample(&mut rng);
            acc += lnorm.sample(&mut rng);
            acc += pareto.sample(&mut rng);
            acc += gpd.sample(&mut rng);
            acc += gev.sample(&mut rng);
            acc += zipf.sample(&mut rng);
        }
        black_box(acc);
        (FAMILIES * SAMPLER_DRAWS as u64, SAMPLER_DRAWS as u64)
    })
}

fn memcached() -> ServiceConfig {
    ServiceConfig::new(ServiceKind::Memcached(KvConfig { preload_keys: 10_000, ..KvConfig::default() }))
}

/// One run of a topology under an event-counting collector, returning
/// the deterministic work counters.
fn counted_run<C: Collector>(topo: &TopologySpec<'_>, extra: C) -> (u64, u64) {
    let mut collector = (EventCountCollector::new(), extra);
    let result = run_collected(topo, SEED, &mut collector);
    (collector.0.events(), result.samples)
}

fn static_1x1(trials: usize, _pin: PinPolicy) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let nodes = [ClientNode::new(
        "probe",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        100_000.0,
    )];
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    time_scenario("static_1x1", trials, || counted_run(&topo, tpv_core::collect::NullCollector))
}

fn fleet_16(trials: usize, _pin: PinPolicy) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let nodes = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        1_600_000.0, // 100K QPS per node
        16,
    );
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    time_scenario("fleet_16", trials, || counted_run(&topo, tpv_core::collect::NullCollector))
}

fn diurnal_8(trials: usize, pin: PinPolicy) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let duration = SimDuration::from_ms(60);
    let rate = PhasedRate::diurnal(duration, 6, 0.6);
    let dynamics = NodeDynamics::new(rate.schedule().clone()).with_rate_plan(rate);
    let nodes: Vec<ClientNode> = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        800_000.0, // 100K QPS per node
        8,
    )
    .into_iter()
    .map(|n| n.with_dynamics(dynamics.clone()))
    .collect();
    // `--shards K` (K > 1) fans the same phased fleet out over a
    // uniform K-shard tier, timing the canonical-order per-phase merge
    // path instead of the single-stream kernel.
    let shards = DIURNAL_SHARDS.load(std::sync::atomic::Ordering::Relaxed);
    let tier = (shards > 1).then(|| ShardSpec::uniform(server, shards));
    let topo = TopologySpec {
        shards: tier.as_ref(),
        service: &service,
        server: &server,
        nodes: &nodes,
        duration,
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    let window = (SimTime::ZERO + topo.warmup, SimTime::ZERO + topo.duration);
    time_scenario("diurnal_8", trials, || {
        if shards > 1 {
            let schedule = topo.merged_schedule();
            let (result, _per_shard, collector) =
                run_sharded_collected_with(&topo, SEED, shard_workers(), pin, |shard, shard_key| {
                    (
                        EventCountCollector::new(),
                        PhaseCollector::for_partition(schedule.clone(), window.0, window.1, shard_key, shard),
                    )
                });
            (collector.0.events(), result.samples)
        } else {
            counted_run(&topo, PhaseCollector::new(topo.merged_schedule(), window.0, window.1))
        }
    })
}

/// Worker budget for the sharded scenario's parallel leg.
fn shard_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// The sharded scale regime: 256 clients over a 16-shard server tier,
/// 100K QPS per node. Timed twice — forced serial, then on
/// [`shard_workers`] threads — over the same `(topology, seed)` job;
/// the kernel's determinism contract makes both legs dispatch the same
/// events, which the probe asserts.
/// Folds a dual-timed scenario's two legs into the report entry: the
/// parallel leg's wall summary, the serial leg's gated throughput (and
/// its trial sample + events/sec CI, so every downstream statistic
/// tests the same quantity the ratio gate does — the parallel leg's
/// rate would couple the regression check to the runner's core count),
/// and the two-sample-bootstrap CI on the speedup between them.
fn dual_timed(parallel: ScenarioReport, serial: ScenarioReport) -> ScenarioReport {
    assert_eq!(
        (serial.events, serial.requests),
        (parallel.events, parallel.requests),
        "serial and parallel shard execution disagree on work counters"
    );
    let (sp_low, sp_high) =
        speedup_ci(&serial.wall_ms_trials, &parallel.wall_ms_trials).unwrap_or((0.0, 0.0));
    ScenarioReport {
        wall_ms_serial: Some(serial.wall_ms_median),
        speedup_vs_serial: if parallel.wall_ms_median > 0.0 {
            Some(serial.wall_ms_median / parallel.wall_ms_median)
        } else {
            None
        },
        events_per_sec: serial.events_per_sec,
        events_per_sec_ci_low: serial.events_per_sec_ci_low,
        events_per_sec_ci_high: serial.events_per_sec_ci_high,
        wall_ms_trials: serial.wall_ms_trials,
        wall_ms_parallel_trials: parallel.wall_ms_trials.clone(),
        speedup_ci_low: sp_low,
        speedup_ci_high: sp_high,
        ..parallel
    }
}

fn fleet_256(trials: usize, pin: PinPolicy) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let shards = ShardSpec::uniform(server, 16);
    let nodes = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate().with_connections(512), // 2 per node
        LinkConfig::cloudlab_lan(),
        25_600_000.0, // 100K QPS per node
        256,
    );
    let topo = TopologySpec {
        shards: Some(&shards),
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &[],
    };
    let workers = shard_workers();
    if pin != PinPolicy::Off {
        // The pinning smoke: core affinity is a throughput knob, never
        // a results knob. Compare the *full* sharded result structures,
        // not just work counters, before any timed leg runs pinned.
        let unpinned = run_topology_sharded_with(&topo, SEED, workers, PinPolicy::Off);
        let pinned = run_topology_sharded_with(&topo, SEED, workers, pin);
        assert_eq!(unpinned, pinned, "fleet_256: pinned execution drifted from unpinned");
        println!("ok    fleet_256: pinned run bit-identical to unpinned ({workers} workers)");
    }
    let probe = |workers: usize, pin: PinPolicy| {
        let (result, _, counter) =
            run_sharded_collected_with(&topo, SEED, workers, pin, |_, _| EventCountCollector::new());
        (counter.events(), result.samples)
    };
    let parallel = time_scenario("fleet_256", trials, || probe(workers, pin));
    let serial = time_scenario("fleet_256", trials, || probe(1, PinPolicy::Off));
    dual_timed(parallel, serial)
}

/// One million modeled clients: 16 cohorts of 62,500 (two tracked
/// representatives each — 48 lowered nodes in all) over the same
/// 16-shard tier and total offered load as [`fleet_256`], so the two
/// scenarios' event volumes are comparable while the client population
/// differs by ~4000x. Dual-timed like `fleet_256`. The flat-memory gate
/// compares its peak RSS against `fleet_256`'s — per-scenario windows
/// where the kernel lets `tpv_bench::rss::reset_peak` open them, else
/// the monotonic process-lifetime readings (which is why it still runs
/// *after* `fleet_256` in the matrix).
fn fleet_1m(trials: usize, pin: PinPolicy) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let shards = ShardSpec::uniform(server, 16);
    let gen = GeneratorSpec::mutilate().with_connections(32);
    let cohorts: Vec<CohortSpec> = (0..16)
        .map(|i| {
            let node = ClientNode::new(
                format!("pool{i}"),
                MachineConfig::high_performance(),
                gen,
                LinkConfig::cloudlab_lan(),
                25.6, // per client; 1.6M QPS pooled per cohort, 25.6M total
            );
            CohortSpec::new(node, 62_500).with_tracked(2)
        })
        .collect();
    let topo = TopologySpec {
        shards: Some(&shards),
        service: &service,
        server: &server,
        nodes: &[],
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
        cohorts: &cohorts,
    };
    assert!(topo.modeled_clients() >= 1_000_000, "fleet_1m must model at least a million clients");
    // The timed job carries a PerCohortCollector so the probe pays the
    // per-event attribution cost it claims is flat — cohort order in
    // the lowering is tracked-then-pooled per cohort, 3 nodes each.
    let cohort_of: Vec<Option<usize>> = (0..48).map(|i| Some(i / 3)).collect();
    let probe = |workers: usize, pin: PinPolicy| {
        let (result, _, (counter, _)) = run_sharded_collected_with(&topo, SEED, workers, pin, |_, _| {
            (EventCountCollector::new(), PerCohortCollector::new(cohort_of.clone(), 16))
        });
        (counter.events(), result.samples)
    };
    let workers = shard_workers();
    let parallel = time_scenario("fleet_1m", trials, || probe(workers, pin));
    let serial = time_scenario("fleet_1m", trials, || probe(1, PinPolicy::Off));
    dual_timed(parallel, serial)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("perf_probe: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("== perf_probe: kernel performance matrix ==");
    println!(
        "{} trials per scenario (plus one warm-up), seed {SEED}{}\n",
        opts.trials,
        if opts.quick { ", --quick" } else { "" }
    );

    type ScenarioFn = fn(usize, PinPolicy) -> ScenarioReport;
    // Order matters: without per-scenario RSS windows (see below),
    // fleet_1m's flat-memory gate compares its monotonic VmHWM reading
    // against the one taken right after fleet_256.
    let matrix: Vec<(&str, ScenarioFn)> = vec![
        ("samplers", samplers),
        ("static_1x1", static_1x1),
        ("fleet_16", fleet_16),
        ("diurnal_8", diurnal_8),
        ("fleet_256", fleet_256),
        ("fleet_1m", fleet_1m),
    ];
    if let Some(only) = &opts.scenario {
        if !matrix.iter().any(|(name, _)| name == only) {
            let names: Vec<&str> = matrix.iter().map(|(n, _)| *n).collect();
            eprintln!("perf_probe: unknown scenario '{only}' (have: {})", names.join(", "));
            return ExitCode::FAILURE;
        }
    }
    let pin = if opts.pin { PinPolicy::RoundRobin } else { PinPolicy::Off };
    DIURNAL_SHARDS.store(opts.shards, std::sync::atomic::Ordering::Relaxed);
    if opts.shards > 1 {
        println!("diurnal_8 fans out over a uniform {}-shard tier (--shards)\n", opts.shards);
    }
    // Where the kernel supports it, reset the VmHWM high-water mark
    // before each scenario so peak_rss_kb reads that scenario's *own*
    // peak instead of the process-lifetime maximum (under which an
    // early spike would mask later regressions). The probe checks once
    // up front; an unsupported knob falls back to monotonic readings.
    let rss_windowed = tpv_bench::rss::reset_peak();
    let scenarios: Vec<ScenarioReport> = matrix
        .iter()
        .filter(|(name, _)| opts.scenario.as_deref().is_none_or(|only| only == *name))
        .map(|(_, run)| {
            if rss_windowed {
                tpv_bench::rss::reset_peak();
            }
            let mut report = run(opts.trials, pin);
            report.peak_rss_kb = tpv_bench::rss::peak_rss_kb();
            report
        })
        .collect();

    println!(
        "| scenario | events/run | requests/run | median wall (ms) | CoV | repeats | events/sec | peak RSS (kB) | speedup vs serial |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for s in &scenarios {
        let speedup = match (s.speedup_vs_serial, s.wall_ms_serial) {
            (Some(sp), Some(serial)) => format!("{sp:.2}x ({serial:.1} ms serial)"),
            _ => "-".to_string(),
        };
        println!(
            "| {} | {} | {} | {:.2} | {:.3} | {} | {:.2}M | {} | {speedup} |",
            s.name,
            s.events,
            s.requests,
            s.wall_ms_median,
            s.wall_ms_cov,
            s.repeats,
            s.events_per_sec / 1e6,
            s.peak_rss_kb
        );
    }

    let report = BenchReport {
        schema: SCHEMA.to_string(),
        quick: opts.quick,
        runner: RunnerInfo::detect(),
        scenarios,
    };
    let mut failed = false;

    // The flat-memory gate: a million cohort-compressed clients may not
    // peak the process past 2x the RSS high-water mark of the 256-node
    // explicit fleet. With per-scenario windows the two readings are
    // each scenario's own peak (the ratio can dip below 1.0); on the
    // monotonic fallback the ratio floors at 1.0. Either way, anything
    // approaching 2.0 means per-client state crept back in.
    if let (Some(small), Some(big)) = (report.scenario("fleet_256"), report.scenario("fleet_1m")) {
        if small.peak_rss_kb > 0 && big.peak_rss_kb > 0 {
            let window = if rss_windowed { "per-scenario peaks" } else { "monotonic peaks" };
            let ratio = big.peak_rss_kb as f64 / small.peak_rss_kb as f64;
            if ratio > 2.0 {
                failed = true;
                println!(
                    "\nFAIL  fleet_1m: peak RSS {} kB is {ratio:.2}x fleet_256's peak {} kB \
                     (flat-memory gate: <= 2x, {window})",
                    big.peak_rss_kb, small.peak_rss_kb
                );
            } else {
                println!(
                    "\nok    fleet_1m: peak RSS {} kB vs {} kB for fleet_256 ({ratio:.2}x, gate <= 2x, {window})",
                    big.peak_rss_kb, small.peak_rss_kb
                );
            }
        }
    }

    // The intra-run scaling gate: the sharded scenario must beat its own
    // forced-serial execution by min(--min-shard-speedup, 0.7 × workers)
    // — the cap scales the requirement to the machine and leaves noise
    // margin on small runners: a box without cores to parallelize over
    // is effectively ungated, a 4-core CI runner must deliver 2.8x, and
    // the full 3x binds at ≥5 workers.
    if let Some(s) = report.scenario("fleet_256") {
        let workers = shard_workers();
        let required = opts.min_shard_speedup.min(0.7 * workers as f64);
        // Bind on the bootstrap CI lower bound when the trial samples
        // support one (>= 2 trials per leg): the gate then asks "is the
        // speedup *confidently* above the bar", so a single lucky
        // parallel trial cannot carry a failing run — and a single
        // descheduled one cannot sink a passing run either, because the
        // CI is bootstrapped from the IQR-filtered trials.
        let point = s.speedup_vs_serial.unwrap_or(0.0);
        let (gated, basis) = if s.speedup_ci_low > 0.0 {
            (s.speedup_ci_low, format!("95% CI lower bound, point {point:.2}x"))
        } else {
            (point, "point estimate, too few trials for a CI".to_string())
        };
        if gated < required {
            failed = true;
            println!(
                "\nFAIL  fleet_256: shard speedup {gated:.2}x ({basis}) below the required {required:.2}x \
                 ({workers} workers, --min-shard-speedup {})",
                opts.min_shard_speedup
            );
        } else {
            println!(
                "\nok    fleet_256: shard speedup {gated:.2}x over serial ({basis}; required {required:.2}x on {workers} workers)",
            );
        }
    }

    match std::fs::write(&opts.out, report.to_json()) {
        Ok(()) => println!("\n[json] {}", opts.out.display()),
        Err(e) => {
            eprintln!("perf_probe: failed to write {}: {e}", opts.out.display());
            return ExitCode::FAILURE;
        }
    }

    let baseline = match &opts.baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("perf_probe: cannot load baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };

    if let (Some(baseline), Some(path)) = (&baseline, &opts.baseline) {
        println!("\n== baseline comparison ({}, fail below 1/{}x) ==", path.display(), opts.max_regression);
        for verdict in compare(&report, baseline, opts.max_regression) {
            match verdict {
                Verdict::Ok { scenario, speedup } => {
                    println!("  ok    {scenario}: {speedup:.2}x of baseline");
                }
                Verdict::Warn { scenario, reason, .. } => {
                    println!("  WARN  {scenario}: {reason}");
                }
                Verdict::Fail { scenario, reason, .. } => {
                    failed = true;
                    println!("  FAIL  {scenario}: {reason}");
                }
            }
        }
    }

    if let Some(path) = &opts.summary {
        let md = summary_markdown(&report, baseline.as_ref().map(|b| (b, opts.max_regression)));
        match std::fs::write(path, md) {
            Ok(()) => println!("[summary] {}", path.display()),
            Err(e) => {
                eprintln!("perf_probe: failed to write summary {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.write_baseline {
        let path = tpv_bench::results_dir()
            .parent()
            .map(PathBuf::from)
            .unwrap_or_default()
            .join("bench_baseline.json");
        let base = std::fs::read_to_string(&path).ok().and_then(|text| BenchReport::from_json(&text).ok());
        let refreshed = refreshed_baseline(base, &report);
        match std::fs::write(&path, refreshed.to_json()) {
            Ok(()) => println!("[baseline] refreshed {}", path.display()),
            Err(e) => {
                eprintln!("perf_probe: failed to refresh baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if failed {
        eprintln!("perf_probe: performance gate failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
