//! `perf_probe`: times the topology kernel over a fixed scenario matrix
//! and writes a machine-readable `BENCH.json`.
//!
//! Three scenarios cover the kernel's load-bearing shapes:
//!
//! * `static_1x1` — the paper's testbed: one HP memcached client at
//!   100K QPS (the `run_once` fast path).
//! * `fleet_16` — a 16-node HP fleet, 100K QPS per node: the
//!   multi-node hot loop the studies sweep (and the scenario the 1.3x
//!   speedup target of PR 4 is defined on).
//! * `diurnal_8` — an 8-node fleet under a 6-step diurnal rate plan:
//!   the phased kernel with per-phase collection.
//!
//! Each scenario runs one untimed warm-up plus `--trials` timed trials
//! of the *same* `(topology, seed)` job, so the work is bit-identical
//! across trials and the spread (CoV) measures only machine noise.
//! Events/sec divides the deterministic dispatched-event count by the
//! median wall time.
//!
//! Usage:
//!
//! ```text
//! perf_probe [--quick] [--trials N] [--out PATH]
//!            [--baseline PATH [--max-regression F]]
//! ```
//!
//! With `--baseline`, the fresh report is compared against the given
//! `bench_baseline.json`: only a median events/sec slowdown worse than
//! `--max-regression` (default 2.0, deliberately generous — CI runners
//! are noisy) exits non-zero; smaller slowdowns and work-counter drift
//! print warnings. See EXPERIMENTS.md for the schema and how to refresh
//! the baseline.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tpv_bench::perf::{compare, BenchReport, ScenarioReport, Verdict, SCHEMA};
use tpv_core::collect::{Collector, EventCountCollector, PhaseCollector};
use tpv_core::runtime::run_collected;
use tpv_core::topology::{uniform_fleet, ClientNode, NodeDynamics, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{SimDuration, SimTime};

const SEED: u64 = 2024;
const DEFAULT_TRIALS: usize = 9;
const QUICK_TRIALS: usize = 5;

struct Options {
    quick: bool,
    trials: usize,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regression: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        trials: 0,
        out: tpv_bench::results_dir().parent().map(PathBuf::from).unwrap_or_default().join("BENCH.json"),
        baseline: None,
        max_regression: 2.0,
    };
    let mut explicit_trials = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                explicit_trials = Some(v.parse::<usize>().map_err(|e| format!("--trials: {e}"))?);
            }
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--max-regression" => {
                let v = args.next().ok_or("--max-regression needs a value")?;
                opts.max_regression = v.parse::<f64>().map_err(|e| format!("--max-regression: {e}"))?;
                if opts.max_regression.is_nan() || opts.max_regression < 1.0 {
                    return Err(format!("--max-regression must be >= 1.0, got {}", opts.max_regression));
                }
            }
            "--help" | "-h" => {
                println!(
                    "perf_probe [--quick] [--trials N] [--out PATH] [--baseline PATH [--max-regression F]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    opts.trials = explicit_trials.unwrap_or(if opts.quick { QUICK_TRIALS } else { DEFAULT_TRIALS });
    if opts.trials == 0 {
        return Err("--trials must be positive".to_string());
    }
    Ok(opts)
}

/// Times `trials` + 1 executions of `run` (first one untimed warm-up);
/// `run` returns `(events, requests)`, which must be identical across
/// trials — the work is deterministic.
fn time_scenario(name: &str, trials: usize, mut run: impl FnMut() -> (u64, u64)) -> ScenarioReport {
    let (events, requests) = run(); // warm-up: page in code and allocator arenas
    let mut wall_ms = Vec::with_capacity(trials);
    for _ in 0..trials {
        let started = Instant::now();
        let (e, r) = run();
        wall_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!((e, r), (events, requests), "{name}: non-deterministic work counters");
    }
    let median = tpv_stats::desc::median(&wall_ms);
    let cov = tpv_stats::desc::coefficient_of_variation(&wall_ms);
    ScenarioReport {
        name: name.to_string(),
        trials,
        events,
        requests,
        wall_ms_median: median,
        wall_ms_cov: cov,
        events_per_sec: if median > 0.0 { events as f64 / (median / 1e3) } else { 0.0 },
    }
}

fn memcached() -> ServiceConfig {
    ServiceConfig::new(ServiceKind::Memcached(KvConfig { preload_keys: 10_000, ..KvConfig::default() }))
}

/// One run of a topology under an event-counting collector, returning
/// the deterministic work counters.
fn counted_run<C: Collector>(topo: &TopologySpec<'_>, extra: C) -> (u64, u64) {
    let mut collector = (EventCountCollector::new(), extra);
    let result = run_collected(topo, SEED, &mut collector);
    (collector.0.events(), result.samples)
}

fn static_1x1(trials: usize) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let nodes = [ClientNode::new(
        "probe",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        100_000.0,
    )];
    let topo = TopologySpec {
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
    };
    time_scenario("static_1x1", trials, || counted_run(&topo, tpv_core::collect::NullCollector))
}

fn fleet_16(trials: usize) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let nodes = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        1_600_000.0, // 100K QPS per node
        16,
    );
    let topo = TopologySpec {
        service: &service,
        server: &server,
        nodes: &nodes,
        duration: SimDuration::from_ms(60),
        warmup: SimDuration::from_ms(6),
    };
    time_scenario("fleet_16", trials, || counted_run(&topo, tpv_core::collect::NullCollector))
}

fn diurnal_8(trials: usize) -> ScenarioReport {
    let service = memcached();
    let server = MachineConfig::server_baseline();
    let duration = SimDuration::from_ms(60);
    let rate = PhasedRate::diurnal(duration, 6, 0.6);
    let dynamics = NodeDynamics::new(rate.schedule().clone()).with_rate_plan(rate);
    let nodes: Vec<ClientNode> = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        800_000.0, // 100K QPS per node
        8,
    )
    .into_iter()
    .map(|n| n.with_dynamics(dynamics.clone()))
    .collect();
    let topo = TopologySpec {
        service: &service,
        server: &server,
        nodes: &nodes,
        duration,
        warmup: SimDuration::from_ms(6),
    };
    time_scenario("diurnal_8", trials, || {
        let phases = PhaseCollector::new(
            topo.merged_schedule(),
            SimTime::ZERO + topo.warmup,
            SimTime::ZERO + topo.duration,
        );
        counted_run(&topo, phases)
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("perf_probe: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("== perf_probe: kernel performance matrix ==");
    println!(
        "{} trials per scenario (plus one warm-up), seed {SEED}{}\n",
        opts.trials,
        if opts.quick { ", --quick" } else { "" }
    );

    let scenarios = vec![static_1x1(opts.trials), fleet_16(opts.trials), diurnal_8(opts.trials)];

    println!("| scenario | events/run | requests/run | median wall (ms) | CoV | events/sec |");
    println!("|---|---|---|---|---|---|");
    for s in &scenarios {
        println!(
            "| {} | {} | {} | {:.2} | {:.3} | {:.2}M |",
            s.name,
            s.events,
            s.requests,
            s.wall_ms_median,
            s.wall_ms_cov,
            s.events_per_sec / 1e6
        );
    }

    let report = BenchReport { schema: SCHEMA.to_string(), quick: opts.quick, scenarios };
    match std::fs::write(&opts.out, report.to_json()) {
        Ok(()) => println!("\n[json] {}", opts.out.display()),
        Err(e) => {
            eprintln!("perf_probe: failed to write {}: {e}", opts.out.display());
            return ExitCode::FAILURE;
        }
    }

    let Some(baseline_path) = &opts.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| BenchReport::from_json(&text))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_probe: cannot load baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\n== baseline comparison ({}, fail below 1/{}x) ==",
        baseline_path.display(),
        opts.max_regression
    );
    let mut failed = false;
    for verdict in compare(&report, &baseline, opts.max_regression) {
        match verdict {
            Verdict::Ok { scenario, speedup } => {
                println!("  ok    {scenario}: {speedup:.2}x of baseline");
            }
            Verdict::Warn { scenario, reason, .. } => {
                println!("  WARN  {scenario}: {reason}");
            }
            Verdict::Fail { scenario, reason, .. } => {
                failed = true;
                println!("  FAIL  {scenario}: {reason}");
            }
        }
    }
    if failed {
        eprintln!("perf_probe: performance regression beyond the {}x gate", opts.max_regression);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
