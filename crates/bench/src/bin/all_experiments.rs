//! Runs the complete regeneration suite — every table and figure — by
//! invoking the per-artefact binaries in sequence. Respects the same
//! `TPV_RUNS` / `TPV_RUN_SECS` / `TPV_SEED` environment variables.

use std::process::Command;

fn main() {
    let bins = [
        "table1_survey",
        "table2_configs",
        "table3_scenarios",
        "fig2_memcached_smt",
        "fig3_memcached_c1e",
        "fig4_hdsearch",
        "fig5_stddev",
        "fig6_socialnet",
        "fig7_synthetic",
        "fig8_shapiro",
        "fig9_histogram",
        "table4_iterations",
    ];
    let self_path = std::env::current_exe().expect("cannot locate this binary");
    let dir = self_path.parent().expect("binary has no parent directory");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("running {bin}");
        println!("================================================================\n");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[all] {bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("[all] failed to launch {bin}: {e}");
                failures.push(bin);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} artefacts regenerated; CSVs in results/", bins.len());
    } else {
        println!("{} artefacts FAILED: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
