//! Runs the complete regeneration suite — every table and figure — as an
//! **in-process** driver over the study registry. One engine (and one run
//! cache) is shared across all artefacts, so baseline cells that recur in
//! several figures execute once. Respects the same `TPV_RUNS` /
//! `TPV_RUN_SECS` / `TPV_SEED` environment variables as the individual
//! binaries.
//!
//! Usage: `all_experiments [--all] [--list]`
//!
//! * `--all` additionally runs the extension experiments after the paper
//!   artefacts.
//! * `--list` prints the study registry (name, kind, title) without
//!   running anything.

use tpv_bench::study::{registry, StudyCtx, StudyKind};
use tpv_core::engine::CacheStats;

fn kind_name(kind: StudyKind) -> &'static str {
    match kind {
        StudyKind::Table => "table",
        StudyKind::Figure => "figure",
        StudyKind::Extension => "extension",
        StudyKind::Diagnostic => "diagnostic",
    }
}

fn list_registry() {
    println!("{:<24} {:<11} title", "name", "kind");
    println!("{:-<24} {:-<11} {:-<40}", "", "", "");
    for study in registry() {
        println!("{:<24} {:<11} {}", study.name, kind_name(study.kind), study.title);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        list_registry();
        return;
    }
    let include_extensions = args.iter().any(|a| a == "--all");
    let ctx = StudyCtx::new();
    let mut ran = 0usize;
    let mut failures: Vec<&'static str> = Vec::new();
    let mut last = CacheStats::default();
    for study in registry() {
        let in_suite = match study.kind {
            StudyKind::Table | StudyKind::Figure => true,
            StudyKind::Extension => include_extensions,
            StudyKind::Diagnostic => false,
        };
        if !in_suite {
            continue;
        }
        println!("\n================================================================");
        println!("running {} — {}", study.name, study.title);
        println!("================================================================\n");
        // One panicking study must not abort the rest of the suite
        // (matching the isolation of the old per-binary driver).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (study.run)(&ctx)));
        match outcome {
            Ok(()) => ran += 1,
            Err(_) => {
                eprintln!("[all] {} FAILED (panicked); continuing", study.name);
                failures.push(study.name);
            }
        }
        // Per-study cache report: how much of this artefact was replayed
        // from cells earlier studies already executed.
        if let Some(cache) = ctx.cache() {
            let now = cache.stats();
            let hits = now.hits - last.hits;
            let misses = now.misses - last.misses;
            let jobs = hits + misses;
            if jobs > 0 {
                println!(
                    "[cache] {}: {hits} of {jobs} jobs from cache ({:.0}%), {misses} executed",
                    study.name,
                    100.0 * hits as f64 / jobs as f64
                );
            }
            last = now;
        }
    }
    println!("\n================================================================");
    if let Some(cache) = ctx.cache() {
        let stats = cache.stats();
        let total = stats.hits + stats.misses;
        let pct = if total > 0 { 100.0 * stats.hits as f64 / total as f64 } else { 0.0 };
        println!(
            "run cache: {} of {} jobs served from cache ({pct:.0}% — baseline cells shared across artefacts); {} distinct results held",
            stats.hits, total, stats.entries
        );
    }
    if failures.is_empty() {
        println!("all {ran} artefacts regenerated; CSVs in results/");
    } else {
        println!("{} artefacts FAILED: {failures:?} ({ran} succeeded)", failures.len());
        std::process::exit(1);
    }
}
