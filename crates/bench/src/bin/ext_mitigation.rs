//! Thin wrapper: regenerates the `ext_mitigation` artefact via the
//! study registry (see `tpv_bench::study`). Respects `TPV_RUNS` /
//! `TPV_RUN_SECS` / `TPV_SEED`; run `all_experiments` for the whole
//! suite with a shared run cache.

fn main() {
    tpv_bench::study::run_by_name("ext_mitigation");
}
