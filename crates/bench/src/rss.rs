//! Peak-RSS plumbing for the flat-memory gate in `perf_probe`.
//!
//! The kernel's cohort layer claims *flat* memory in the modeled client
//! count, and the probe enforces it by comparing peak RSS around the
//! million-client scenario. The raw signal is `VmHWM` from
//! `/proc/self/status` — the process high-water mark, which is
//! **monotonic** over the process lifetime. Monotonic readings can only
//! gate "did the later scenario climb past the earlier one", not "what
//! did *this* scenario peak at": an early scenario that briefly spiked
//! would mask a later regression forever.
//!
//! [`reset_peak`] fixes that where the kernel allows it: writing `5` to
//! `/proc/self/clear_refs` resets `VmHWM` to the *current* RSS, so a
//! reset-before / read-after pair brackets one scenario's own peak.
//! Both halves degrade gracefully — on kernels without the knob (or
//! non-Linux) `reset_peak` reports `false` and callers fall back to the
//! monotonic interpretation.

use std::path::Path;

/// Process peak RSS (`VmHWM`) in kB from `/proc/self/status`; `0` where
/// the file or the field is unavailable (non-Linux). Monotonic since
/// process start — or since the last successful [`reset_peak`].
pub fn peak_rss_kb() -> u64 {
    peak_rss_kb_from(Path::new("/proc/self/status"))
}

/// [`peak_rss_kb`] against an explicit status file (testable parser).
fn peak_rss_kb_from(status_path: &Path) -> u64 {
    let Ok(status) = std::fs::read_to_string(status_path) else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// Resets the `VmHWM` high-water mark to the current RSS by writing `5`
/// to `/proc/self/clear_refs`. Returns `true` when the reset took, so a
/// following [`peak_rss_kb`] reads the peak *since this call*; `false`
/// where the knob is absent (non-Linux, restricted kernels) — readings
/// then stay monotonic over the process lifetime.
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_and_tolerates_missing_fields() {
        let dir = std::env::temp_dir();
        let good = dir.join("tpv_rss_good_status");
        std::fs::write(&good, "Name:\tx\nVmHWM:\t   14200 kB\nVmRSS:\t  9000 kB\n").unwrap();
        assert_eq!(peak_rss_kb_from(&good), 14_200);
        let bad = dir.join("tpv_rss_bad_status");
        std::fs::write(&bad, "Name:\tx\nVmRSS:\t  9000 kB\n").unwrap();
        assert_eq!(peak_rss_kb_from(&bad), 0);
        assert_eq!(peak_rss_kb_from(&dir.join("tpv_rss_no_such_file")), 0);
    }

    /// The regression this module exists to prevent: without a reset,
    /// an early allocation spike poisons every later reading. After
    /// [`reset_peak`], the high-water mark must drop back toward the
    /// live RSS — i.e. readings are *per-window*, not process-lifetime.
    #[test]
    #[cfg(target_os = "linux")]
    fn reset_makes_peak_readings_per_window() {
        // Spike the peak well above steady state, then release.
        let spike = 64 * 1024 * 1024;
        let buf = vec![17u8; spike];
        // Touching via from_elem above faults every page in; keep the
        // sum so the allocation cannot be optimized away.
        let sum: u64 = buf.iter().map(|&b| b as u64).sum();
        assert_eq!(sum, 17 * spike as u64);
        let peak_during = peak_rss_kb();
        drop(buf);
        if !reset_peak() {
            // Kernel without the clear_refs knob: nothing to assert —
            // the probe falls back to monotonic readings there too.
            return;
        }
        let peak_after = peak_rss_kb();
        assert!(peak_during > 0 && peak_after > 0, "VmHWM must be readable on Linux");
        // The spike was ~64 MB; after release + reset the window peak
        // must shed most of it (leave generous slack for allocator
        // retention and test-harness noise).
        assert!(
            peak_after + 32 * 1024 <= peak_during,
            "reset did not open a new window: {peak_during} kB before, {peak_after} kB after"
        );
    }
}
