//! The machine-readable kernel performance harness behind `perf_probe`.
//!
//! A [`BenchReport`] is the stable schema written to `BENCH.json` and
//! checked in as `bench_baseline.json`: one [`ScenarioReport`] per probe
//! scenario with the deterministic work counters (events, requests) and
//! the wall-clock summary (median + CoV over repeated trials, derived
//! events/sec). The schema is hand-serialized and hand-parsed here — no
//! registry JSON crate is available offline — and both directions are
//! round-trip tested, so CI can diff a fresh probe against the baseline
//! without shelling out to anything.
//!
//! Versioning: bump [`SCHEMA`] whenever a field changes meaning; the
//! parser rejects reports from a different schema so a stale baseline
//! fails loudly instead of comparing apples to oranges.
//!
//! Schema 3 hardens the statistics: every scenario carries its per-run
//! trial wall times (after [`iqr_filter`] outlier rejection) so the
//! baseline gate can require a Mann–Whitney-significant slowdown instead
//! of trusting a lone median ratio, plus the repeat count used to pad
//! short scenarios above the timer floor and the process peak RSS
//! observed after the scenario ran (the cohort layer's flat-memory
//! gate).
//!
//! Schema 4 attaches uncertainty to the headline numbers: every scenario
//! carries a percentile-bootstrap 95% CI on its events/sec (derived from
//! the retained trial walls via [`events_per_sec_ci`]), dual-timed
//! scenarios additionally keep the parallel leg's trial walls and a
//! two-sample bootstrap CI on the intra-run speedup ([`speedup_ci`]) —
//! so the shard-scaling gate can bind on the CI lower bound instead of a
//! point estimate — and the peak-RSS reading is per-scenario where the
//! kernel supports resetting `VmHWM` (see `tpv_bench::rss`).
//!
//! Schema 5 makes the dual-timed fields honest and the report
//! self-describing: `wall_ms_serial` and `speedup_vs_serial` are `null`
//! for scenarios that never ran a serial leg (schema ≤ 4 wrote a
//! meaningless `0.0` a reader could mistake for a measurement), and
//! every report carries a [`RunnerInfo`] fingerprint — CPU model
//! string, core count, kernel release — so a baseline diff can tell
//! "the kernel regressed" apart from "CI landed on a different runner
//! class".

use std::fmt::Write as _;

use tpv_sim::SimRng;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "tpv-perf/5";

/// Warn (but do not fail) when events/sec falls below `baseline / WARN`.
pub const WARN_FACTOR: f64 = 1.25;

/// Wall-clock summary and deterministic work counters of one scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioReport {
    /// Stable scenario identifier (`static_1x1`, `fleet_16`, ...).
    pub name: String,
    /// Timed trials behind the summary (excludes the warm-up run).
    pub trials: usize,
    /// Simulation events dispatched per run — deterministic for a fixed
    /// `(scenario, seed)`, so a change here means the kernel's *work*
    /// changed, not just its speed.
    pub events: u64,
    /// In-window requests measured per run (same determinism contract).
    pub requests: u64,
    /// Median wall-clock time of one run, in milliseconds.
    pub wall_ms_median: f64,
    /// Coefficient of variation of the trial wall times (noise gauge).
    pub wall_ms_cov: f64,
    /// Events dispatched per wall second, at the median trial.
    pub events_per_sec: f64,
    /// Median wall-clock time of the same run forced serial, in
    /// milliseconds — `None` (serialized `null`) for scenarios that are
    /// not dual-timed. Only the sharded scenarios execute twice
    /// (parallel and serial) to measure intra-run scaling.
    pub wall_ms_serial: Option<f64>,
    /// `wall_ms_serial / wall_ms_median` — the intra-run parallel
    /// speedup; `None` (serialized `null`) when not dual-timed.
    pub speedup_vs_serial: Option<f64>,
    /// Kernel runs per timed trial. Short scenarios are repeated until a
    /// trial spends at least ~50 ms on the clock; all `wall_ms_*` values
    /// are already divided down to per-run milliseconds.
    pub repeats: usize,
    /// Process peak RSS (`VmHWM`) in kB right after this scenario ran;
    /// `0` when the platform does not expose it. Where the kernel
    /// supports `tpv_bench::rss::reset_peak` the probe resets the
    /// high-water mark before each scenario, making this the scenario's
    /// *own* peak; elsewhere it stays monotonic over the process
    /// lifetime and only matrix order makes later-vs-earlier
    /// comparisons meaningful.
    pub peak_rss_kb: u64,
    /// Per-run wall time of every *retained* timed trial (after
    /// [`iqr_filter`]), in milliseconds — the sample behind
    /// `wall_ms_median`, kept so [`compare`] can run a Mann–Whitney test
    /// between a fresh probe and the baseline.
    pub wall_ms_trials: Vec<f64>,
    /// Percentile-bootstrap 95% CI on `events_per_sec`, derived from
    /// `wall_ms_trials` by [`events_per_sec_ci`]; both `0.0` when the
    /// trial sample is too small to bootstrap (fewer than 2 trials).
    pub events_per_sec_ci_low: f64,
    /// Upper end of the events/sec CI (see `events_per_sec_ci_low`).
    pub events_per_sec_ci_high: f64,
    /// Retained per-run wall times of the *parallel* leg of a dual-timed
    /// scenario, in milliseconds — empty when not dual-timed. Note
    /// `wall_ms_trials` holds the gated (serial) leg's sample for those
    /// scenarios, so both legs stay recomputable from the report.
    pub wall_ms_parallel_trials: Vec<f64>,
    /// Two-sample-bootstrap 95% CI on `speedup_vs_serial` from
    /// [`speedup_ci`]; both `0.0` when not dual-timed or when either
    /// leg's sample is too small. The scaling gate binds on this lower
    /// bound when present — a point estimate inflated by one lucky
    /// parallel trial no longer passes.
    pub speedup_ci_low: f64,
    /// Upper end of the speedup CI (see `speedup_ci_low`).
    pub speedup_ci_high: f64,
}

/// Fingerprint of the machine a report was measured on.
///
/// Wall-clock numbers are only comparable between runs of the same
/// runner class; the fingerprint travels with the report so a baseline
/// diff can surface "different machine" as the likely cause of a swing
/// instead of blaming the kernel. Informational: [`compare`] does not
/// gate on it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunnerInfo {
    /// CPU model string (`model name` from `/proc/cpuinfo`), or
    /// `"unknown"` where the platform does not expose it.
    pub cpu_model: String,
    /// Logical cores available to the process.
    pub cores: usize,
    /// Kernel release (`/proc/sys/kernel/osrelease`), or `"unknown"`.
    pub kernel: String,
}

impl RunnerInfo {
    /// Reads the fingerprint of the current machine. Every field
    /// degrades to a harmless default off Linux — the schema stays
    /// writable everywhere the probe compiles.
    pub fn detect() -> RunnerInfo {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split_once(':').map(|(_, v)| v.trim().to_string()))
            })
            .unwrap_or_else(|| "unknown".to_string());
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
        let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        RunnerInfo { cpu_model, cores, kernel }
    }
}

/// The full probe output: what `BENCH.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// True when the probe ran in `--quick` (CI) mode.
    pub quick: bool,
    /// The machine this report was measured on.
    pub runner: RunnerInfo,
    /// One entry per scenario, in matrix order.
    pub scenarios: Vec<ScenarioReport>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON with a stable key
    /// order, so two reports diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", self.schema);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"runner\": {\n");
        let _ = writeln!(out, "    \"cpu_model\": \"{}\",", json::escape(&self.runner.cpu_model));
        let _ = writeln!(out, "    \"cores\": {},", self.runner.cores);
        let _ = writeln!(out, "    \"kernel\": \"{}\"", json::escape(&self.runner.kernel));
        out.push_str("  },\n");
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"trials\": {},", s.trials);
            let _ = writeln!(out, "      \"events\": {},", s.events);
            let _ = writeln!(out, "      \"requests\": {},", s.requests);
            let _ = writeln!(out, "      \"wall_ms_median\": {:.4},", s.wall_ms_median);
            let _ = writeln!(out, "      \"wall_ms_cov\": {:.4},", s.wall_ms_cov);
            let _ = writeln!(out, "      \"events_per_sec\": {:.1},", s.events_per_sec);
            let _ = writeln!(out, "      \"wall_ms_serial\": {},", json::opt_num(s.wall_ms_serial, 4));
            let _ = writeln!(out, "      \"speedup_vs_serial\": {},", json::opt_num(s.speedup_vs_serial, 4));
            let _ = writeln!(out, "      \"repeats\": {},", s.repeats);
            let _ = writeln!(out, "      \"peak_rss_kb\": {},", s.peak_rss_kb);
            let trials: Vec<String> = s.wall_ms_trials.iter().map(|t| format!("{t:.4}")).collect();
            let _ = writeln!(out, "      \"wall_ms_trials\": [{}],", trials.join(", "));
            let _ = writeln!(out, "      \"events_per_sec_ci_low\": {:.1},", s.events_per_sec_ci_low);
            let _ = writeln!(out, "      \"events_per_sec_ci_high\": {:.1},", s.events_per_sec_ci_high);
            let parallel: Vec<String> = s.wall_ms_parallel_trials.iter().map(|t| format!("{t:.4}")).collect();
            let _ = writeln!(out, "      \"wall_ms_parallel_trials\": [{}],", parallel.join(", "));
            let _ = writeln!(out, "      \"speedup_ci_low\": {:.4},", s.speedup_ci_low);
            let _ = writeln!(out, "      \"speedup_ci_high\": {:.4}", s.speedup_ci_high);
            out.push_str(if i + 1 == self.scenarios.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// The parser accepts any whitespace layout but requires the schema
    /// field to match [`SCHEMA`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let schema = json::get_str(obj, "schema")?;
        if schema != SCHEMA {
            return Err(format!("schema mismatch: report is '{schema}', this binary reads '{SCHEMA}'"));
        }
        let quick = json::get_bool(obj, "quick")?;
        let runner_obj = json::get(obj, "runner")?.as_object().ok_or("'runner' must be an object")?;
        let runner = RunnerInfo {
            cpu_model: json::get_str(runner_obj, "cpu_model")?.to_string(),
            cores: json::get_f64(runner_obj, "cores")? as usize,
            kernel: json::get_str(runner_obj, "kernel")?.to_string(),
        };
        let raw = json::get(obj, "scenarios")?.as_array().ok_or("'scenarios' must be an array")?;
        let mut scenarios = Vec::with_capacity(raw.len());
        for entry in raw {
            let s = entry.as_object().ok_or("scenario entries must be objects")?;
            scenarios.push(ScenarioReport {
                name: json::get_str(s, "name")?.to_string(),
                trials: json::get_f64(s, "trials")? as usize,
                events: json::get_f64(s, "events")? as u64,
                requests: json::get_f64(s, "requests")? as u64,
                wall_ms_median: json::get_f64(s, "wall_ms_median")?,
                wall_ms_cov: json::get_f64(s, "wall_ms_cov")?,
                events_per_sec: json::get_f64(s, "events_per_sec")?,
                wall_ms_serial: json::get_opt_f64(s, "wall_ms_serial")?,
                speedup_vs_serial: json::get_opt_f64(s, "speedup_vs_serial")?,
                repeats: json::get_f64(s, "repeats")? as usize,
                peak_rss_kb: json::get_f64(s, "peak_rss_kb")? as u64,
                wall_ms_trials: json::get_f64_array(s, "wall_ms_trials")?,
                events_per_sec_ci_low: json::get_f64(s, "events_per_sec_ci_low")?,
                events_per_sec_ci_high: json::get_f64(s, "events_per_sec_ci_high")?,
                wall_ms_parallel_trials: json::get_f64_array(s, "wall_ms_parallel_trials")?,
                speedup_ci_low: json::get_f64(s, "speedup_ci_low")?,
                speedup_ci_high: json::get_f64(s, "speedup_ci_high")?,
            });
        }
        Ok(BenchReport { schema: schema.to_string(), quick, runner, scenarios })
    }

    /// The scenario named `name`, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// One baseline-vs-current verdict from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Current events/sec is within tolerance of the baseline.
    Ok {
        /// Scenario name.
        scenario: String,
        /// `current / baseline` events/sec (>1 = faster than baseline).
        speedup: f64,
    },
    /// Slower than the baseline but within the hard tolerance — noisy
    /// runners land here, so it only warns.
    Warn {
        /// Scenario name.
        scenario: String,
        /// `current / baseline` events/sec.
        speedup: f64,
        /// Human-readable cause.
        reason: String,
    },
    /// Slower than `baseline / max_regression` — a real regression even
    /// on a noisy runner.
    Fail {
        /// Scenario name.
        scenario: String,
        /// `current / baseline` events/sec.
        speedup: f64,
        /// Human-readable cause.
        reason: String,
    },
}

/// Tukey-fence outlier rejection: drops samples outside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`. A descheduled trial (GC of another
/// tenant, a CI runner napping) lands far outside the fences and would
/// otherwise drag both the median and the CoV; fewer than four samples
/// pass through untouched — the quartiles are meaningless below that.
pub fn iqr_filter(samples: &[f64]) -> Vec<f64> {
    if samples.len() < 4 {
        return samples.to_vec();
    }
    let q1 = tpv_stats::desc::percentile(samples, 25.0);
    let q3 = tpv_stats::desc::percentile(samples, 75.0);
    let iqr = q3 - q1;
    // A quantized timer can collapse the quartiles (q1 == q3): the
    // fences then degenerate to a single point and trials one ulp off
    // the mode — legitimate measurements — get fenced away. Zero spread
    // means there is nothing to reject.
    if iqr <= 0.0 {
        return samples.to_vec();
    }
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = samples.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
    // Degenerate fences (all-equal quartiles with NaN noise) must not
    // empty the sample; fall back to the raw trials.
    if kept.is_empty() {
        samples.to_vec()
    } else {
        kept
    }
}

/// Bootstrap resamples behind the report's confidence intervals.
const CI_RESAMPLES: usize = 1000;
/// Confidence level of the report's bootstrap intervals.
const CI_LEVEL: f64 = 0.95;
/// Fixed bootstrap seed: the intervals are a deterministic function of
/// the measured trials, so re-serializing a report never flaps them.
const CI_SEED: u64 = 0x7065_7266; // "perf"

/// Percentile-bootstrap 95% CI on events/sec, `(low, high)`.
///
/// Bootstraps the *median wall time* over the retained trials (the same
/// statistic the headline `events_per_sec` divides by) and inverts the
/// interval into throughput — wall time and rate are reciprocal, so the
/// interval ends swap. `None` below 2 trials or when the resampled wall
/// times degenerate to zero.
pub fn events_per_sec_ci(events: u64, wall_ms_trials: &[f64]) -> Option<(f64, f64)> {
    let mut rng = SimRng::seed_from_u64(CI_SEED);
    let ci = tpv_stats::bootstrap::bootstrap_ci(
        wall_ms_trials,
        tpv_stats::desc::median,
        CI_LEVEL,
        CI_RESAMPLES,
        &mut rng,
    )?;
    if ci.low <= 0.0 {
        return None;
    }
    Some((events as f64 / (ci.high / 1e3), events as f64 / (ci.low / 1e3)))
}

/// Two-sample-bootstrap 95% CI on the intra-run speedup, `(low, high)`.
///
/// The speedup is a ratio of two *independent* trial samples (serial and
/// parallel legs time separate executions, not paired ones), so each
/// bootstrap replicate resamples both legs independently and takes the
/// ratio of their medians — the single-sample [`bootstrap_ci`] cannot
/// express that. `None` when either leg has fewer than 2 trials or a
/// resampled parallel median degenerates to zero.
///
/// [`bootstrap_ci`]: tpv_stats::bootstrap::bootstrap_ci
pub fn speedup_ci(serial_ms: &[f64], parallel_ms: &[f64]) -> Option<(f64, f64)> {
    if serial_ms.len() < 2 || parallel_ms.len() < 2 {
        return None;
    }
    let mut rng = SimRng::seed_from_u64(CI_SEED ^ 1);
    let mut ratios = Vec::with_capacity(CI_RESAMPLES);
    let mut serial = vec![0.0; serial_ms.len()];
    let mut parallel = vec![0.0; parallel_ms.len()];
    for _ in 0..CI_RESAMPLES {
        for slot in serial.iter_mut() {
            *slot = serial_ms[rng.next_index(serial_ms.len())];
        }
        for slot in parallel.iter_mut() {
            *slot = parallel_ms[rng.next_index(parallel_ms.len())];
        }
        let denom = tpv_stats::desc::median(&parallel);
        if denom <= 0.0 {
            return None;
        }
        ratios.push(tpv_stats::desc::median(&serial) / denom);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("NaN speedup replicate"));
    let alpha = (1.0 - CI_LEVEL) / 2.0;
    let lo = ((alpha * CI_RESAMPLES as f64) as usize).min(CI_RESAMPLES - 1);
    let hi = (((1.0 - alpha) * CI_RESAMPLES as f64) as usize).min(CI_RESAMPLES - 1);
    Some((ratios[lo], ratios[hi]))
}

/// Compares a fresh report against the checked-in baseline.
///
/// The contract is deliberately loose — CI runners are noisy, so only a
/// slowdown worse than `max_regression`× **fails**; anything slower than
/// `baseline / `[`WARN_FACTOR`] warns. When both reports carry per-trial
/// wall times (schema 3), a median slowdown beyond the gate must *also*
/// be Mann–Whitney significant (α = 0.05) between the two trial samples
/// to fail — a single wild median on an otherwise overlapping spread
/// downgrades to a warning. A scenario whose deterministic work counters
/// (events, requests) differ from the baseline also warns: the baseline
/// predates a semantic change and should be refreshed.
pub fn compare(current: &BenchReport, baseline: &BenchReport, max_regression: f64) -> Vec<Verdict> {
    assert!(max_regression >= 1.0, "max_regression is a slowdown factor, got {max_regression}");
    let mut verdicts = Vec::new();
    // Scenarios the baseline has never seen are ungated — surface them,
    // or a freshly added scenario could regress invisibly forever.
    for cur in &current.scenarios {
        if baseline.scenario(&cur.name).is_none() {
            verdicts.push(Verdict::Warn {
                scenario: cur.name.clone(),
                speedup: 0.0,
                reason: "scenario missing from the baseline (ungated): refresh bench_baseline.json"
                    .to_string(),
            });
        }
    }
    for base in &baseline.scenarios {
        let Some(cur) = current.scenario(&base.name) else {
            verdicts.push(Verdict::Warn {
                scenario: base.name.clone(),
                speedup: 0.0,
                reason: "scenario missing from current report".to_string(),
            });
            continue;
        };
        let speedup = if base.events_per_sec > 0.0 { cur.events_per_sec / base.events_per_sec } else { 0.0 };
        // Counter drift and the speed gate are independent signals: a
        // drifted baseline still gates throughput (events/sec stays
        // comparable across small semantic changes), so a kernel change
        // cannot smuggle a hard regression past CI behind the drift
        // warning.
        if cur.events != base.events || cur.requests != base.requests {
            verdicts.push(Verdict::Warn {
                scenario: base.name.clone(),
                speedup,
                reason: format!(
                    "work counters drifted (events {} -> {}, requests {} -> {}): refresh bench_baseline.json",
                    base.events, cur.events, base.requests, cur.requests
                ),
            });
        }
        if speedup * max_regression < 1.0 {
            // A median beyond the gate fails only when the slowdown is
            // also statistically significant across the retained trials;
            // with no trial samples on either side (a schema-2-era or
            // hand-trimmed baseline) the median ratio stands alone.
            let significance = tpv_stats::mann_whitney_u(&cur.wall_ms_trials, &base.wall_ms_trials);
            match significance {
                Some(mw) if !mw.differs(0.05) => {
                    verdicts.push(Verdict::Warn {
                        scenario: base.name.clone(),
                        speedup,
                        reason: format!(
                            "median events/sec {:.0} breaches baseline {:.0} / {max_regression}, but the \
                             trial spreads overlap (Mann-Whitney p = {:.3}) — rerun before trusting it",
                            cur.events_per_sec, base.events_per_sec, mw.p_value
                        ),
                    });
                }
                _ => {
                    verdicts.push(Verdict::Fail {
                        scenario: base.name.clone(),
                        speedup,
                        reason: format!(
                            "events/sec {:.0} is worse than baseline {:.0} / {max_regression} (speedup {speedup:.2}x{})",
                            cur.events_per_sec,
                            base.events_per_sec,
                            significance.map_or(String::new(), |mw| format!(
                                ", Mann-Whitney p = {:.4}",
                                mw.p_value
                            ))
                        ),
                    });
                }
            }
        } else if speedup * WARN_FACTOR < 1.0 {
            verdicts.push(Verdict::Warn {
                scenario: base.name.clone(),
                speedup,
                reason: format!(
                    "events/sec {:.0} lags baseline {:.0} (speedup {speedup:.2}x) — within tolerance",
                    cur.events_per_sec, base.events_per_sec
                ),
            });
        } else {
            verdicts.push(Verdict::Ok { scenario: base.name.clone(), speedup });
        }
    }
    verdicts
}

/// The baseline to check in after a refresh: `current`'s scenarios
/// replace their namesakes in `base` (and append when new), so a
/// single-scenario probe (`perf_probe --scenario X --write-baseline`)
/// updates one entry in place instead of clobbering the rest. With no
/// readable base (first run, or a schema bump) the current report *is*
/// the baseline — a schema bump therefore needs one full-matrix probe.
pub fn refreshed_baseline(base: Option<BenchReport>, current: &BenchReport) -> BenchReport {
    match base {
        None => current.clone(),
        Some(mut base) => {
            base.quick = current.quick;
            for cur in &current.scenarios {
                match base.scenarios.iter_mut().find(|s| s.name == cur.name) {
                    Some(slot) => *slot = cur.clone(),
                    None => base.scenarios.push(cur.clone()),
                }
            }
            base
        }
    }
}

/// Renders the compact markdown delta table CI appends to
/// `$GITHUB_STEP_SUMMARY`: one row per scenario of `current` with its
/// deterministic work, throughput, the events/sec delta against the
/// baseline (when one is given) and the gate verdict.
pub fn summary_markdown(current: &BenchReport, baseline: Option<(&BenchReport, f64)>) -> String {
    let mut out = String::new();
    out.push_str("### perf_probe — kernel events/sec vs baseline\n\n");
    out.push_str("| scenario | events/run | median wall (ms) | events/sec | Δ vs baseline | shard speedup | verdict |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    let verdicts = baseline.map(|(base, max_regression)| compare(current, base, max_regression));
    for s in &current.scenarios {
        let (delta, verdict) = match (&verdicts, baseline) {
            (Some(verdicts), Some((base, _))) => {
                let delta = base
                    .scenario(&s.name)
                    .filter(|b| b.events_per_sec > 0.0)
                    .map_or("n/a".to_string(), |b| {
                        format!("{:+.1}%", (s.events_per_sec / b.events_per_sec - 1.0) * 100.0)
                    });
                // The worst verdict for this scenario (a scenario can
                // carry both a drift warning and a speed verdict).
                let verdict = verdicts
                    .iter()
                    .filter_map(|v| match v {
                        Verdict::Fail { scenario, .. } if *scenario == s.name => Some((0, "❌ fail")),
                        Verdict::Warn { scenario, .. } if *scenario == s.name => Some((1, "⚠️ warn")),
                        Verdict::Ok { scenario, .. } if *scenario == s.name => Some((2, "✅ ok")),
                        _ => None,
                    })
                    .min_by_key(|&(rank, _)| rank)
                    .map_or("—", |(_, label)| label);
                (delta, verdict)
            }
            _ => ("n/a".to_string(), "—"),
        };
        let speedup = match (s.speedup_vs_serial, s.wall_ms_serial) {
            (Some(sp), Some(serial)) => format!("{sp:.2}x ({serial:.1} ms serial)"),
            _ => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2}M | {} | {} | {} |",
            s.name,
            s.events,
            s.wall_ms_median,
            s.events_per_sec / 1e6,
            delta,
            speedup,
            verdict
        );
    }
    out
}

/// A minimal recursive-descent JSON reader — just enough for the
/// [`BenchReport`] schema (objects, arrays, strings, numbers, booleans).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON object, insertion-ordered.
        Object(Vec<(String, Value)>),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON string (escapes resolved for `\"`, `\\`, `\/`, `\n`, `\t`).
        Str(String),
        /// JSON number.
        Num(f64),
        /// JSON boolean.
        Bool(bool),
        /// JSON null.
        Null,
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or_else(|| format!("missing key '{key}'"))
    }

    pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
        match get(obj, key)? {
            Value::Str(s) => Ok(s),
            other => Err(format!("'{key}' must be a string, got {other:?}")),
        }
    }

    pub fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
        match get(obj, key)? {
            Value::Num(n) => Ok(*n),
            other => Err(format!("'{key}' must be a number, got {other:?}")),
        }
    }

    pub fn get_f64_array(obj: &[(String, Value)], key: &str) -> Result<Vec<f64>, String> {
        let items = get(obj, key)?.as_array().ok_or_else(|| format!("'{key}' must be an array"))?;
        items
            .iter()
            .map(|v| match v {
                Value::Num(n) => Ok(*n),
                other => Err(format!("'{key}' entries must be numbers, got {other:?}")),
            })
            .collect()
    }

    /// Reads an optional number: `null` (or an absent key) is `None`.
    /// The absent-key case keeps hand-trimmed reports parseable; the
    /// schema writer always emits the key.
    pub fn get_opt_f64(obj: &[(String, Value)], key: &str) -> Result<Option<f64>, String> {
        match get(obj, key) {
            Err(_) => Ok(None),
            Ok(Value::Null) => Ok(None),
            Ok(Value::Num(n)) => Ok(Some(*n)),
            Ok(other) => Err(format!("'{key}' must be a number or null, got {other:?}")),
        }
    }

    /// Renders an optional number as JSON: `null` or a fixed-precision
    /// literal.
    pub fn opt_num(value: Option<f64>, decimals: usize) -> String {
        match value {
            None => "null".to_string(),
            Some(v) => format!("{v:.decimals$}"),
        }
    }

    /// Escapes a string for embedding in a JSON literal (the subset the
    /// reader above understands: backslash, quote, newline, tab).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                other => out.push(other),
            }
        }
        out
    }

    pub fn get_bool(obj: &[(String, Value)], key: &str) -> Result<bool, String> {
        match get(obj, key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("'{key}' must be a boolean, got {other:?}")),
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            quick: true,
            runner: RunnerInfo {
                cpu_model: "Test CPU \"quoted\" model".to_string(),
                cores: 8,
                kernel: "6.0.0-test".to_string(),
            },
            scenarios: vec![
                ScenarioReport {
                    name: "static_1x1".to_string(),
                    trials: 5,
                    events: 32_768,
                    requests: 5_432,
                    wall_ms_median: 3.25,
                    wall_ms_cov: 0.021,
                    events_per_sec: 10_082_461.5,
                    wall_ms_serial: None,
                    speedup_vs_serial: None,
                    repeats: 16,
                    peak_rss_kb: 14_200,
                    wall_ms_trials: vec![3.21, 3.25, 3.30, 3.24, 3.27],
                    events_per_sec_ci_low: 9_929_000.0,
                    events_per_sec_ci_high: 10_207_000.0,
                    wall_ms_parallel_trials: Vec::new(),
                    speedup_ci_low: 0.0,
                    speedup_ci_high: 0.0,
                },
                ScenarioReport {
                    name: "fleet_16".to_string(),
                    trials: 5,
                    events: 500_000,
                    requests: 90_000,
                    wall_ms_median: 42.5,
                    wall_ms_cov: 0.013,
                    events_per_sec: 11_764_705.9,
                    wall_ms_serial: Some(160.1),
                    speedup_vs_serial: Some(3.7671),
                    repeats: 2,
                    peak_rss_kb: 18_944,
                    wall_ms_trials: vec![42.1, 42.5, 43.0, 42.4, 42.9],
                    events_per_sec_ci_low: 11_600_000.0,
                    events_per_sec_ci_high: 11_900_000.0,
                    wall_ms_parallel_trials: vec![11.2, 11.4, 11.3, 11.5, 11.25],
                    speedup_ci_low: 3.61,
                    speedup_ci_high: 3.90,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed.schema, report.schema);
        assert_eq!(parsed.quick, report.quick);
        assert_eq!(parsed.runner, report.runner, "runner fingerprint must round-trip (incl. escapes)");
        assert_eq!(parsed.scenarios.len(), 2);
        for (a, b) in parsed.scenarios.iter().zip(&report.scenarios) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.events, b.events);
            assert_eq!(a.requests, b.requests);
            assert!((a.wall_ms_median - b.wall_ms_median).abs() < 1e-3);
            assert!((a.events_per_sec - b.events_per_sec).abs() < 1.0);
            match (a.wall_ms_serial, b.wall_ms_serial) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-3),
                (x, y) => assert_eq!(x, y, "serial wall None-ness must round-trip"),
            }
            match (a.speedup_vs_serial, b.speedup_vs_serial) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-3),
                (x, y) => assert_eq!(x, y, "speedup None-ness must round-trip"),
            }
            assert_eq!(a.repeats, b.repeats);
            assert_eq!(a.peak_rss_kb, b.peak_rss_kb);
            assert_eq!(a.wall_ms_trials.len(), b.wall_ms_trials.len());
            for (x, y) in a.wall_ms_trials.iter().zip(&b.wall_ms_trials) {
                assert!((x - y).abs() < 1e-3);
            }
            assert!((a.events_per_sec_ci_low - b.events_per_sec_ci_low).abs() < 1.0);
            assert!((a.events_per_sec_ci_high - b.events_per_sec_ci_high).abs() < 1.0);
            assert_eq!(a.wall_ms_parallel_trials.len(), b.wall_ms_parallel_trials.len());
            for (x, y) in a.wall_ms_parallel_trials.iter().zip(&b.wall_ms_parallel_trials) {
                assert!((x - y).abs() < 1e-3);
            }
            assert!((a.speedup_ci_low - b.speedup_ci_low).abs() < 1e-3);
            assert!((a.speedup_ci_high - b.speedup_ci_high).abs() < 1e-3);
        }
    }

    #[test]
    fn events_per_sec_ci_brackets_the_point_estimate() {
        let walls = [42.1, 42.5, 43.0, 42.4, 42.9, 42.6, 42.3];
        let events = 500_000u64;
        let (low, high) = events_per_sec_ci(events, &walls).expect("7 trials bootstrap fine");
        let point = events as f64 / (tpv_stats::desc::median(&walls) / 1e3);
        assert!(low <= point && point <= high, "CI [{low}, {high}] must bracket {point}");
        assert!(low > 0.0);
        // Deterministic: same trials, same interval.
        assert_eq!(events_per_sec_ci(events, &walls), Some((low, high)));
        // Too few trials: no interval rather than a fake one.
        assert_eq!(events_per_sec_ci(events, &[42.0]), None);
    }

    #[test]
    fn speedup_ci_brackets_the_ratio_and_detects_noise() {
        // Tight legs around a 4x speedup: the CI hugs the ratio.
        let serial = [160.0, 161.0, 159.5, 160.5, 160.2];
        let parallel = [40.0, 40.3, 39.8, 40.1, 40.2];
        let (low, high) = speedup_ci(&serial, &parallel).expect("5 trials per leg");
        assert!(low > 3.8 && high < 4.2, "tight legs must give a tight CI, got [{low}, {high}]");
        // A noisy parallel leg widens the interval downward — the lower
        // bound is what the scaling gate binds on.
        let noisy = [40.0, 80.0, 39.8, 75.0, 40.2];
        let (noisy_low, _) = speedup_ci(&serial, &noisy).expect("5 trials per leg");
        assert!(noisy_low < low, "noise must drag the lower bound down: {noisy_low} vs {low}");
        // Single-trial legs: no interval.
        assert_eq!(speedup_ci(&[160.0], &parallel), None);
        assert_eq!(speedup_ci(&serial, &[40.0]), None);
    }

    #[test]
    fn refreshed_baseline_replaces_in_place_and_appends() {
        let base = sample();
        let mut current = sample();
        current.scenarios[0].events_per_sec = 99.0;
        current.scenarios.remove(1); // a partial (--scenario) probe
        current.scenarios.push(ScenarioReport {
            name: "fleet_256".to_string(),
            trials: 5,
            events: 10,
            requests: 10,
            wall_ms_median: 1.0,
            wall_ms_cov: 0.0,
            events_per_sec: 10.0,
            wall_ms_serial: Some(4.0),
            speedup_vs_serial: Some(4.0),
            repeats: 1,
            peak_rss_kb: 0,
            wall_ms_trials: vec![1.0, 1.1],
            ..ScenarioReport::default()
        });
        let refreshed = refreshed_baseline(Some(base.clone()), &current);
        // Replaced in place, untouched entries kept, new ones appended.
        assert_eq!(refreshed.scenario("static_1x1").unwrap().events_per_sec, 99.0);
        assert_eq!(
            refreshed.scenario("fleet_16").unwrap().events_per_sec,
            base.scenario("fleet_16").unwrap().events_per_sec
        );
        assert!(refreshed.scenario("fleet_256").is_some());
        // No readable base: the current report becomes the baseline.
        let fresh = refreshed_baseline(None, &current);
        assert_eq!(fresh, current);
    }

    #[test]
    fn summary_markdown_renders_deltas_and_verdicts() {
        let baseline = sample();
        let mut current = sample();
        current.scenarios[0].events_per_sec *= 1.10;
        current.scenarios[1].events_per_sec /= 3.0;
        for t in &mut current.scenarios[1].wall_ms_trials {
            *t *= 3.0; // a real slowdown: walls stretch with the rate
        }
        let md = summary_markdown(&current, Some((&baseline, 2.0)));
        assert!(md.contains("| static_1x1 |"), "{md}");
        assert!(md.contains("+10.0%"), "{md}");
        assert!(md.contains("✅ ok"), "{md}");
        assert!(md.contains("❌ fail"), "{md}");
        assert!(md.contains("3.77x"), "dual-timed scenario must show its speedup: {md}");
        // Without a baseline the table still renders, ungated.
        let md = summary_markdown(&current, None);
        assert!(md.contains("n/a"), "{md}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut report = sample();
        report.schema = "tpv-perf/1".to_string();
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in ["", "{", "{\"schema\": }", "[1,2", "{\"schema\":\"tpv-perf/1\"} extra"] {
            assert!(BenchReport::from_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_beyond() {
        let baseline = sample();
        // Identical performance: all Ok.
        let verdicts = compare(&baseline, &baseline, 2.0);
        assert!(verdicts.iter().all(|v| matches!(v, Verdict::Ok { .. })), "{verdicts:?}");

        // 1.5x slower: warns but does not fail under the 2x gate.
        let mut slower = baseline.clone();
        for s in &mut slower.scenarios {
            s.events_per_sec /= 1.5;
        }
        let verdicts = compare(&slower, &baseline, 2.0);
        assert!(verdicts.iter().all(|v| matches!(v, Verdict::Warn { .. })), "{verdicts:?}");

        // 3x slower — walls stretched to match, so the slowdown is both
        // beyond the gate and Mann-Whitney significant: fails.
        let mut much_slower = baseline.clone();
        for s in &mut much_slower.scenarios {
            s.events_per_sec /= 3.0;
            for t in &mut s.wall_ms_trials {
                *t *= 3.0;
            }
        }
        let verdicts = compare(&much_slower, &baseline, 2.0);
        assert!(verdicts.iter().all(|v| matches!(v, Verdict::Fail { .. })), "{verdicts:?}");
    }

    #[test]
    fn compare_downgrades_insignificant_breaches() {
        let mut baseline = sample();
        let mut current = sample();
        // Median events/sec breaches the 2x gate, but the trial spreads
        // interleave — no statistically detectable slowdown.
        baseline.scenarios.truncate(1);
        current.scenarios.truncate(1);
        baseline.scenarios[0].wall_ms_trials = vec![10.0, 1_000.0, 12.0, 1_002.0];
        current.scenarios[0].wall_ms_trials = vec![11.0, 1_001.0, 13.0, 1_003.0];
        current.scenarios[0].events_per_sec = baseline.scenarios[0].events_per_sec / 3.0;
        let verdicts = compare(&current, &baseline, 2.0);
        assert!(
            matches!(&verdicts[0], Verdict::Warn { reason, .. } if reason.contains("overlap")),
            "an insignificant breach must warn, not fail: {verdicts:?}"
        );

        // Strip the trial samples (schema-2-era baseline): the median
        // ratio stands alone again and the same breach hard-fails.
        baseline.scenarios[0].wall_ms_trials.clear();
        current.scenarios[0].wall_ms_trials.clear();
        let verdicts = compare(&current, &baseline, 2.0);
        assert!(
            matches!(&verdicts[0], Verdict::Fail { .. }),
            "without trial samples the ratio gate must still bind: {verdicts:?}"
        );
    }

    #[test]
    fn iqr_filter_drops_descheduled_trials_only() {
        // One wild trial (a napping runner) falls outside the Tukey
        // fences; the tight cluster survives untouched.
        let kept = iqr_filter(&[5.0, 5.1, 4.9, 5.05, 250.0, 5.02]);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|&v| v < 6.0), "{kept:?}");
        // Fewer than four samples: quartiles are meaningless, keep all.
        assert_eq!(iqr_filter(&[1.0, 500.0, 2.0]), vec![1.0, 500.0, 2.0]);
        // An identical cluster never filters itself away.
        assert_eq!(iqr_filter(&[7.0; 6]).len(), 6);
    }

    #[test]
    fn iqr_filter_keeps_ulp_stragglers_under_zero_spread() {
        // A quantized timer wall puts both quartiles on the same value;
        // the old point-fences rejected trials one ulp off the mode.
        let above = f64::from_bits(7.0f64.to_bits() + 1);
        let below = f64::from_bits(7.0f64.to_bits() - 1);
        let samples = [7.0, 7.0, 7.0, 7.0, above, below];
        assert_eq!(iqr_filter(&samples), samples.to_vec(), "zero IQR must keep every sample");
        // Sanity: a genuinely wide spread still fences.
        assert_eq!(iqr_filter(&[7.0, 7.0, 7.0, 7.0, 7.1, 700.0]).len(), 5);
    }

    #[test]
    fn compare_flags_work_drift_and_missing_scenarios() {
        let baseline = sample();
        let mut drifted = baseline.clone();
        drifted.scenarios[0].events += 1;
        let verdicts = compare(&drifted, &baseline, 2.0);
        assert!(
            matches!(&verdicts[0], Verdict::Warn { reason, .. } if reason.contains("work counters")),
            "{verdicts:?}"
        );

        // Drift must not mask a hard regression: both verdicts surface.
        let mut drifted_and_slow = baseline.clone();
        drifted_and_slow.scenarios[0].events += 1;
        drifted_and_slow.scenarios[0].events_per_sec /= 3.0;
        for t in &mut drifted_and_slow.scenarios[0].wall_ms_trials {
            *t *= 3.0;
        }
        let verdicts = compare(&drifted_and_slow, &baseline, 2.0);
        assert!(
            verdicts
                .iter()
                .any(|v| matches!(v, Verdict::Warn { reason, .. } if reason.contains("work counters"))),
            "{verdicts:?}"
        );
        assert!(
            verdicts.iter().any(|v| matches!(v, Verdict::Fail { .. })),
            "a 3x slowdown must fail even when counters drifted: {verdicts:?}"
        );

        let mut missing = baseline.clone();
        missing.scenarios.remove(1);
        let verdicts = compare(&missing, &baseline, 2.0);
        assert!(
            verdicts.iter().any(|v| matches!(v, Verdict::Warn { reason, .. } if reason.contains("missing"))),
            "{verdicts:?}"
        );

        // The asymmetric case: a scenario the baseline has never seen is
        // ungated and must warn, not pass silently.
        let mut extra = baseline.clone();
        extra.scenarios.push(ScenarioReport {
            name: "brand_new".to_string(),
            trials: 5,
            events: 1,
            requests: 1,
            wall_ms_median: 1.0,
            wall_ms_cov: 0.0,
            events_per_sec: 1.0,
            wall_ms_serial: None,
            speedup_vs_serial: None,
            repeats: 1,
            peak_rss_kb: 0,
            wall_ms_trials: Vec::new(),
            ..ScenarioReport::default()
        });
        let verdicts = compare(&extra, &baseline, 2.0);
        assert!(
            verdicts.iter().any(
                |v| matches!(v, Verdict::Warn { scenario, reason, .. } if scenario == "brand_new" && reason.contains("ungated"))
            ),
            "{verdicts:?}"
        );
    }
}
