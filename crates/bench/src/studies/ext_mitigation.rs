//! **Extension experiment** (beyond the paper's figures): can a
//! closed-loop controller *tame* the client-side variability the paper
//! measures? An LP-contaminated diurnal sharded fleet runs under every
//! shipped [`MitigationPolicy`] next to a do-nothing baseline, and the
//! study reports how much of the fleet's p99 spread each policy claws
//! back.
//!
//! A 16-node memcached fleet (every 4th node a misconfigured low-power
//! straggler) follows a 6-step diurnal swing over a 4-shard tier. The
//! run is split into 6 control windows aligned to the diurnal steps; at
//! each boundary the policy sees the canonical-order windowed per-node /
//! per-shard p99s and acts:
//!
//! * **do_nothing** — the baseline: the stragglers' ~3× tails persist in
//!   every window;
//! * **hedge_requests** — overdue straggler requests get an analytic
//!   duplicate on the coldest shard; first response wins, capping (not
//!   fixing) the tail at roughly deadline + replica service time;
//! * **reroute_hot_shard** — moves flagged nodes off the hottest shard;
//!   it balances backends but cannot repair a tail manufactured on the
//!   *client's* side of the wire, the study's negative control;
//! * **remediate_node** — swaps the straggler's machine configuration
//!   (the paper's §VI recommendation, applied closed-loop), eliminating
//!   the spread at its source;
//! * **admission_throttle** — sheds straggler load; trades throughput
//!   for tail, another instructive partial fix.
//!
//! Headline metric: the post-decision **fleet p99 spread** (worst node
//! p99 / best node p99, maximized over the windows the controller could
//! influence), plus the worst pooled window p99 and the throughput cost.

use tpv_core::control::{
    AdmissionThrottle, ControlSpec, DoNothing, HedgeRequests, MitigationPolicy, RemediateNode,
    RerouteHotShard,
};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, NodeDynamics, ShardSpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_sim::SimDuration;
use tpv_stats::desc;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const FLEET: usize = 16;
const SHARDS: usize = 4;
const WINDOWS: usize = 6;
const PER_NODE_QPS: f64 = 20_000.0;
const AMPLITUDE: f64 = 0.5;
/// Nodes above this windowed p99 are flagged (LP stragglers sit at
/// ~210 µs under load, clean HP nodes at ~70–90 µs).
const THRESHOLD_US: u64 = 150;

/// The LP-contaminated diurnal fleet as a [`ControlSpec`]: the diurnal
/// plan spans the whole horizon and each control window covers exactly
/// one step, so the controller's phase boundaries are the load plan's.
fn spec(horizon: SimDuration) -> ControlSpec {
    let window = SimDuration::from_ns(horizon.as_ns() / WINDOWS as u64);
    let horizon = window * WINDOWS as u64;
    let gen = GeneratorSpec::mutilate().with_connections(160 / FLEET as u32);
    let rate = PhasedRate::diurnal(horizon, WINDOWS, AMPLITUDE);
    let nodes: Vec<ClientNode> = (0..FLEET)
        .map(|i| {
            let (label, machine) = if i % 4 == 3 {
                (format!("bad{i}"), MachineConfig::low_power())
            } else {
                (format!("agent{i}"), MachineConfig::high_performance())
            };
            ClientNode::new(label, machine, gen, LinkConfig::cloudlab_lan(), PER_NODE_QPS)
                .with_dynamics(NodeDynamics::new(rate.schedule().clone()).with_rate_plan(rate.clone()))
        })
        .collect();
    ControlSpec {
        service: tpv_core::experiment::Benchmark::memcached().service,
        shards: ShardSpec::uniform(MachineConfig::server_baseline(), SHARDS),
        nodes,
        window,
        windows: WINDOWS,
        warmup: SimDuration::from_ns(window.as_ns() / 5),
    }
}

fn policies() -> Vec<Box<dyn MitigationPolicy + Sync>> {
    let threshold = SimDuration::from_us(THRESHOLD_US);
    vec![
        Box::new(DoNothing),
        Box::new(HedgeRequests { threshold, deadline: SimDuration::from_us(120) }),
        Box::new(RerouteHotShard { min_ratio: 1.5, max_moves: 2 }),
        Box::new(RemediateNode { threshold, config: MachineConfig::high_performance() }),
        Box::new(AdmissionThrottle { threshold, factor: 0.5, floor: 0.2 }),
    ]
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(5);
    let horizon = env_duration(120);
    banner(
        "Extension: closed-loop mitigation — policies vs baseline on an LP-contaminated diurnal fleet",
        runs,
        horizon,
    );
    let spec = spec(horizon);
    println!(
        "{FLEET}-node memcached fleet ({} LP stragglers), ±{:.0}% diurnal swing over {SHARDS} shards, \
         {WINDOWS} control windows of {}; policies flag nodes above {THRESHOLD_US} us windowed p99.\n",
        FLEET / 4,
        AMPLITUDE * 100.0,
        spec.window,
    );

    let policies = policies();
    let cells: Vec<(&ControlSpec, &(dyn MitigationPolicy + Sync))> =
        policies.iter().map(|p| (&spec, p.as_ref())).collect();
    let per_cell = ctx.run_control_cells(&cells, runs, env_seed());

    // Windows 1.. are the ones a decision could influence; window 0 is
    // the common observation prelude (identical across policies by
    // construction — same spec, same window seeds).
    let mut table = MarkdownTable::new(&[
        "policy",
        "fleet p99 spread",
        "vs baseline",
        "worst window p99 (us)",
        "achieved kQPS",
        "decisions",
        "hedges",
    ]);
    let mut csv = Csv::new(&["policy", "window", "samples", "pooled_p99_us", "node_spread", "hedges"]);
    let median = |vals: Vec<f64>| desc::median(&vals);
    let spread_of = |samples: &[tpv_core::control::ControlResult]| {
        median(samples.iter().map(|r| r.fleet_p99_spread(1)).collect())
    };
    let baseline_spread = spread_of(&per_cell[0]);
    let mut spreads = Vec::new();
    for (c, samples) in per_cell.iter().enumerate() {
        let name = policies[c].name();
        let spread = spread_of(samples);
        spreads.push(spread);
        let worst = median(samples.iter().map(|r| r.worst_window_p99(1).as_us()).collect());
        let qps = median(samples.iter().map(|r| r.mean_achieved_qps(1)).collect());
        let decisions = median(samples.iter().map(|r| r.decisions.len() as f64).collect());
        let hedges = median(samples.iter().map(|r| r.total_hedges() as f64).collect());
        table.row(&[
            name.to_string(),
            format!("{spread:.2}x"),
            if c == 0 {
                "--".to_string()
            } else {
                format!("{:+.0}%", (spread / baseline_spread - 1.0) * 100.0)
            },
            format!("{worst:.1}"),
            format!("{:.0}", qps / 1000.0),
            format!("{decisions:.0}"),
            format!("{hedges:.0}"),
        ]);
        for w in 0..WINDOWS {
            csv.row(&[
                name.to_string(),
                format!("{w}"),
                format!(
                    "{:.0}",
                    median(samples.iter().map(|r| r.windows[w].aggregate.samples as f64).collect())
                ),
                format!(
                    "{:.3}",
                    median(samples.iter().map(|r| r.windows[w].aggregate.p99.as_us()).collect())
                ),
                format!("{:.3}", {
                    let spreads: Vec<f64> = samples
                        .iter()
                        .map(|r| {
                            let p99s: Vec<f64> = r.windows[w]
                                .nodes
                                .iter()
                                .filter(|n| n.samples > 0)
                                .map(|n| n.p99.as_us())
                                .collect();
                            let hi = p99s.iter().cloned().fold(f64::MIN, f64::max);
                            let lo = p99s.iter().cloned().fold(f64::MAX, f64::min);
                            if lo > 0.0 {
                                hi / lo
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    desc::median(&spreads)
                }),
                format!("{:.0}", median(samples.iter().map(|r| r.windows[w].hedges as f64).collect())),
            ]);
        }
    }
    println!("{}", table.render());
    crate::write_csv("ext_mitigation.csv", &csv);

    let best = (1..per_cell.len())
        .min_by(|&a, &b| spreads[a].total_cmp(&spreads[b]))
        .expect("at least one mitigating policy");
    println!(
        "\nMitigation finding: the {} policy cuts the post-decision fleet p99 spread from {:.2}x \
         (do-nothing) to {:.2}x — closing the loop on the paper's client-side variability instead of \
         just measuring it. Request hedging caps the straggler tail without touching the client; \
         rerouting shards cannot help (the tail is manufactured client-side); throttling trades \
         throughput for little tail.",
        policies[best].name(),
        baseline_spread,
        spreads[best],
    );
    assert!(
        spreads[best] < baseline_spread,
        "at least one mitigation policy must reduce the fleet p99 spread"
    );
}
