//! Regenerates **Figure 8**: Shapiro–Wilk p-values for the §V-A
//! configurations (six scenarios × seven QPS points, 50 runs each at
//! paper scale).

use crate::{avg_samples, banner, env_duration, env_runs, env_seed};
use tpv_core::report::Csv;
use tpv_core::scenarios::{memcached_c1e_study, memcached_smt_study, MEMCACHED_QPS};
use tpv_stats::shapiro_wilk;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(50);
    let duration = env_duration(400);
    banner("Figure 8: Shapiro-Wilk p-values across Section V-A configurations", runs, duration);

    let smt = memcached_smt_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);
    let c1e = memcached_c1e_study(&MEMCACHED_QPS, runs, duration, env_seed() + 1).run_with(&ctx.engine);

    let mut csv = Csv::new(&["config", "qps", "p_value", "passes_alpha_0_05"]);
    let mut total = 0usize;
    let mut passing = 0usize;

    let header: Vec<String> =
        MEMCACHED_QPS.iter().map(|&q| format!("{:>8}", format!("{}K", q as u64 / 1000))).collect();
    println!("config        | {}", header.join(" "));
    let configs: Vec<(&str, &tpv_core::ExperimentResults, &str, &str)> = vec![
        ("LP-SMToff", &smt, "LP", "SMToff"),
        ("LP-SMTon", &smt, "LP", "SMTon"),
        ("HP-SMToff", &smt, "HP", "SMToff"),
        ("HP-SMTon", &smt, "HP", "SMTon"),
        ("LP-C1Eon", &c1e, "LP", "C1Eon"),
        ("HP-C1Eon", &c1e, "HP", "C1Eon"),
    ];
    for (name, results, client, server) in configs {
        let mut row = format!("{name:<13} |");
        for &q in &MEMCACHED_QPS {
            let cell = results.cell(client, server, q).unwrap();
            let xs = avg_samples(cell);
            let p = shapiro_wilk(&xs).map(|r| r.p_value).unwrap_or(0.0);
            total += 1;
            if p >= 0.05 {
                passing += 1;
            }
            row.push_str(&format!(" {p:>8.1e}"));
            csv.row(&[name.to_string(), format!("{q}"), format!("{p:.6e}"), format!("{}", p >= 0.05)]);
        }
        println!("{row}");
    }
    println!("\n(threshold: p = 0.05, the red dashed line of Fig. 8)");
    crate::write_csv("fig8_shapiro.csv", &csv);

    let frac = passing as f64 / total as f64;
    println!(
        "{passing}/{total} = {:.0}% of configurations conform to a normal distribution \
         (paper: approximately 50%).",
        frac * 100.0
    );
    if !(0.25..=0.85).contains(&frac) {
        eprintln!("[shape warning] normality fraction far from the paper's ~50%");
    }
}
