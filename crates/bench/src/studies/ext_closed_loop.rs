//! **Extension experiment** (beyond the paper's figures): the closed-loop
//! half of the §II taxonomy.
//!
//! The paper's taxonomy covers closed-loop generators qualitatively —
//! "because the timing of the next request depends on when the response to
//! the previous request arrives, any timing inaccuracy can further impact
//! the time when a successive request is sent" — but §V only evaluates
//! open-loop generators. This experiment fills that cell: the same
//! memcached service driven closed-loop from LP and HP clients.
//!
//! Expected shape: the client-side wake path now throttles *throughput*
//! (it sits inside the request loop), so the LP client both measures
//! higher latency and achieves lower load.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::experiment::{Benchmark, Experiment, ServerScenario};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_hw::MachineConfig;
use tpv_sim::SimDuration;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(20);
    let duration = env_duration(500);
    banner("Extension: closed-loop generator (LP vs HP clients)", runs, duration);

    for think_us in [0u64, 100] {
        let mut bench = Benchmark::memcached();
        bench.generator = bench.generator.closed_loop(SimDuration::from_us(think_us));
        bench.name = format!("memcached-closed-{think_us}us-think");
        let results = Experiment::builder(bench)
            .client(MachineConfig::low_power())
            .client(MachineConfig::high_performance())
            .server(ServerScenario::baseline())
            // Closed loops self-pace; qps only sets the initial phase.
            .qps(&[100_000.0])
            .runs(runs)
            .run_duration(duration)
            .seed(env_seed() + think_us)
            .build()
            .run_with(&ctx.engine);

        println!("-- think time {think_us} us --\n");
        let mut table =
            MarkdownTable::new(&["client", "avg (us)", "p99 (us)", "achieved QPS", "late sends %"]);
        let mut csv = Csv::new(&["think_us", "client", "avg_us", "p99_us", "achieved_qps", "late_pct"]);
        let mut achieved = std::collections::HashMap::new();
        for client in ["LP", "HP"] {
            let cell = results.cell(client, "SMToff", 100_000.0).unwrap();
            let s = cell.summary();
            let rate: f64 =
                cell.samples.iter().map(|r| r.achieved_qps).sum::<f64>() / cell.samples.len() as f64;
            let late: f64 =
                cell.samples.iter().map(|r| r.late_send_fraction).sum::<f64>() / cell.samples.len() as f64;
            achieved.insert(client, rate);
            table.row(&[
                client.to_string(),
                format!("{:.1}", s.avg_median_us()),
                format!("{:.1}", s.p99_median_us()),
                format!("{rate:.0}"),
                format!("{:.1}", late * 100.0),
            ]);
            csv.row(&[
                format!("{think_us}"),
                client.to_string(),
                format!("{:.2}", s.avg_median_us()),
                format!("{:.2}", s.p99_median_us()),
                format!("{rate:.1}"),
                format!("{:.3}", late * 100.0),
            ]);
        }
        println!("{}", table.render());
        println!(
            "closed-loop throughput penalty of the untuned client: {:.1}%\n",
            (1.0 - achieved["LP"] / achieved["HP"]) * 100.0
        );
        crate::write_csv(&format!("ext_closed_loop_{think_us}us.cssv").replace(".cssv", ".csv"), &csv);
    }
}
