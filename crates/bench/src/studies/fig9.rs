//! Regenerates **Figure 9**: frequency chart of per-run average response
//! times for the HP-SMToff 400K configuration — the right-skewed,
//! queueing-dominated distribution that fails normality testing.

use crate::{avg_samples, banner, env_duration, env_runs, env_seed};
use tpv_core::report::{frequency_chart, Csv};
use tpv_core::scenarios::memcached_smt_study;
use tpv_stats::desc::skewness;
use tpv_stats::shapiro_wilk;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(50);
    let duration = env_duration(400);
    banner("Figure 9: frequency chart for HP-SMToff @ 400K QPS", runs, duration);

    let results = memcached_smt_study(&[400_000.0], runs, duration, env_seed()).run_with(&ctx.engine);
    let cell = results.cell("HP", "SMToff", 400_000.0).unwrap();
    let xs = avg_samples(cell);

    println!("{}", frequency_chart(&xs, 17));

    let skew = skewness(&xs);
    let sw = shapiro_wilk(&xs);
    println!("sample skewness = {skew:.2} (positive = right tail, as in the paper)");
    if let Ok(r) = sw {
        println!(
            "Shapiro-Wilk: W = {:.4}, p = {:.2e} (paper: this configuration fails normality)",
            r.w, r.p_value
        );
    }

    let mut csv = Csv::new(&["run", "avg_us"]);
    for (i, x) in xs.iter().enumerate() {
        csv.row(&[format!("{i}"), format!("{x:.3}")]);
    }
    crate::write_csv("fig9_histogram.csv", &csv);

    if skew < 0.0 {
        eprintln!("[shape warning] distribution should be right-skewed");
    }
}
