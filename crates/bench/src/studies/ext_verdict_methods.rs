//! **Extension experiment**: does the verdict methodology matter?
//!
//! The paper declares two configurations different when their
//! non-parametric CIs do not overlap. The classical alternative is a
//! two-sample test (Mann–Whitney U). This ablation reruns the C1E study's
//! decisions under both rules and reports where they disagree — a check
//! that the paper's conclusions are not an artefact of its decision rule.

use crate::{avg_samples, banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::compare;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{memcached_c1e_study, MEMCACHED_QPS};
use tpv_stats::mann_whitney_u;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(30);
    let duration = env_duration(500);
    banner("Extension: CI-overlap vs Mann-Whitney verdicts (C1E study)", runs, duration);

    let results = memcached_c1e_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&[
        "client",
        "QPS",
        "CI-overlap verdict",
        "Mann-Whitney p",
        "MW verdict",
        "agree?",
    ]);
    let mut csv = Csv::new(&["client", "qps", "ci_verdict", "mw_p", "mw_verdict", "agree"]);
    let mut agreements = 0usize;
    let mut total = 0usize;
    for client in ["LP", "HP"] {
        for &q in &MEMCACHED_QPS {
            let base = results.cell(client, "SMToff", q).unwrap();
            let variant = results.cell(client, "C1Eon", q).unwrap();
            let ci_verdict = compare(&base.summary(), &variant.summary()).verdict_avg;
            let mw = mann_whitney_u(&avg_samples(base), &avg_samples(variant));
            let (mw_p, mw_differs) = match mw {
                Some(r) => (r.p_value, r.differs(0.05)),
                None => (1.0, false),
            };
            let ci_differs = ci_verdict != tpv_core::analysis::Verdict::Indistinguishable;
            let agree = ci_differs == mw_differs;
            total += 1;
            if agree {
                agreements += 1;
            }
            table.row(&[
                client.to_string(),
                format!("{}K", q as u64 / 1000),
                ci_verdict.to_string(),
                format!("{mw_p:.3}"),
                if mw_differs { "differs".into() } else { "same".to_string() },
                if agree { "yes".into() } else { "NO".to_string() },
            ]);
            csv.row(&[
                client.to_string(),
                format!("{q}"),
                ci_verdict.to_string(),
                format!("{mw_p:.5}"),
                format!("{mw_differs}"),
                format!("{agree}"),
            ]);
        }
    }
    println!("{}", table.render());
    crate::write_csv("ext_verdict_methods.csv", &csv);
    println!(
        "the two decision rules agree on {agreements}/{total} cells \
         (Mann-Whitney is more sensitive: it detects distribution shifts \
         the median-CI rule misses)."
    );
}
