//! **Figure 2**: performance evaluation of SMT impact on Memcached
//! service latency with LP and HP clients.
//!
//! Panels: (a) average response time (median), (b) p99 latency (median),
//! (c) slowdown caused by disabling SMT on average latency,
//! (d) slowdown on p99 latency.

use tpv_core::analysis::compare;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{memcached_smt_study, MEMCACHED_QPS};

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

/// Renders Figure 2 through the context's engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(30);
    let duration = env_duration(500);
    banner("Figure 2: Memcached SMT study (LP/HP clients)", runs, duration);

    let results = memcached_smt_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&[
        "QPS",
        "LP-SMToff avg",
        "LP-SMTon avg",
        "HP-SMToff avg",
        "HP-SMTon avg",
        "LP-SMToff p99",
        "HP-SMToff p99",
        "SMToff/on avg LP",
        "SMToff/on avg HP",
        "SMToff/on p99 LP",
        "SMToff/on p99 HP",
    ]);
    let mut csv = Csv::new(&[
        "qps",
        "lp_smtoff_avg_us",
        "lp_smton_avg_us",
        "hp_smtoff_avg_us",
        "hp_smton_avg_us",
        "lp_smtoff_p99_us",
        "lp_smton_p99_us",
        "hp_smtoff_p99_us",
        "hp_smton_p99_us",
        "slowdown_avg_lp",
        "slowdown_avg_hp",
        "slowdown_p99_lp",
        "slowdown_p99_hp",
    ]);

    let mut lp_gaps = Vec::new();
    for &q in &MEMCACHED_QPS {
        let lp_off = results.cell("LP", "SMToff", q).unwrap().summary();
        let lp_on = results.cell("LP", "SMTon", q).unwrap().summary();
        let hp_off = results.cell("HP", "SMToff", q).unwrap().summary();
        let hp_on = results.cell("HP", "SMTon", q).unwrap().summary();

        // Panels (c)/(d): SMT_OFF / SMT_ON from run means.
        let lp_cmp = compare(&lp_off, &lp_on); // speedup = off/on
        let hp_cmp = compare(&hp_off, &hp_on);

        lp_gaps.push(lp_off.avg_median_us() / hp_off.avg_median_us());

        table.row(&[
            format!("{}K", q as u64 / 1000),
            format!("{:.1}", lp_off.avg_median_us()),
            format!("{:.1}", lp_on.avg_median_us()),
            format!("{:.1}", hp_off.avg_median_us()),
            format!("{:.1}", hp_on.avg_median_us()),
            format!("{:.1}", lp_off.p99_median_us()),
            format!("{:.1}", hp_off.p99_median_us()),
            format!("{:.3}", lp_cmp.speedup_avg),
            format!("{:.3}", hp_cmp.speedup_avg),
            format!("{:.3}", lp_cmp.speedup_p99),
            format!("{:.3}", hp_cmp.speedup_p99),
        ]);
        csv.row(&[
            format!("{q}"),
            format!("{:.3}", lp_off.avg_median_us()),
            format!("{:.3}", lp_on.avg_median_us()),
            format!("{:.3}", hp_off.avg_median_us()),
            format!("{:.3}", hp_on.avg_median_us()),
            format!("{:.3}", lp_off.p99_median_us()),
            format!("{:.3}", lp_on.p99_median_us()),
            format!("{:.3}", hp_off.p99_median_us()),
            format!("{:.3}", hp_on.p99_median_us()),
            format!("{:.4}", lp_cmp.speedup_avg),
            format!("{:.4}", hp_cmp.speedup_avg),
            format!("{:.4}", lp_cmp.speedup_p99),
            format!("{:.4}", hp_cmp.speedup_p99),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("fig2_memcached_smt.csv", &csv);

    // Finding 1 shape checks (reported, not fatal).
    let min_gap = lp_gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_gap = lp_gaps.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nFinding 1: LP/HP average-latency gap ranges {min_gap:.2}x – {max_gap:.2}x (paper: 1.8x – 2.5x)."
    );
    if max_gap < 1.5 {
        eprintln!("[shape warning] LP/HP gap below the paper's band");
    }
}
