//! Regenerates **Figure 5**: standard deviation of the average response
//! time for Memcached and HDSearch under LP/HP clients and SMT on/off —
//! the variance-crossover evidence behind Finding 4.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{hdsearch_smt_study, memcached_smt_study, HDSEARCH_QPS, MEMCACHED_QPS};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(30);
    let duration = env_duration(500);
    banner("Figure 5: stddev of average response time (Memcached, HDSearch)", runs, duration);

    println!("-- (a) Memcached --\n");
    let mem = memcached_smt_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);
    let mut table = MarkdownTable::new(&["QPS", "LP-SMToff", "LP-SMTon", "HP-SMToff", "HP-SMTon"]);
    let mut csv =
        Csv::new(&["benchmark", "qps", "lp_smtoff_us", "lp_smton_us", "hp_smtoff_us", "hp_smton_us"]);
    let mut lp_low = 0.0;
    let mut hp_low = 0.0;
    let mut lp_high = 0.0;
    let mut hp_high = 0.0;
    for &q in &MEMCACHED_QPS {
        let cells = [
            mem.cell("LP", "SMToff", q).unwrap().summary().avg_std_dev_us(),
            mem.cell("LP", "SMTon", q).unwrap().summary().avg_std_dev_us(),
            mem.cell("HP", "SMToff", q).unwrap().summary().avg_std_dev_us(),
            mem.cell("HP", "SMTon", q).unwrap().summary().avg_std_dev_us(),
        ];
        if q == 10_000.0 {
            lp_low = cells[0];
            hp_low = cells[2];
        }
        if q == 500_000.0 {
            lp_high = cells[0];
            hp_high = cells[2];
        }
        table.row(&[
            format!("{}K", q as u64 / 1000),
            format!("{:.2}", cells[0]),
            format!("{:.2}", cells[1]),
            format!("{:.2}", cells[2]),
            format!("{:.2}", cells[3]),
        ]);
        csv.row(&[
            "memcached".into(),
            format!("{q}"),
            format!("{:.3}", cells[0]),
            format!("{:.3}", cells[1]),
            format!("{:.3}", cells[2]),
            format!("{:.3}", cells[3]),
        ]);
    }
    println!("{}", table.render());

    println!("-- (b) HDSearch --\n");
    let hd = hdsearch_smt_study(&HDSEARCH_QPS, runs.min(20), env_duration(1500), env_seed() + 1)
        .run_with(&ctx.engine);
    let mut table_b = MarkdownTable::new(&["QPS", "LP-SMToff", "LP-SMTon", "HP-SMToff", "HP-SMTon"]);
    for &q in &HDSEARCH_QPS {
        let cells = [
            hd.cell("LP", "SMToff", q).unwrap().summary().avg_std_dev_us(),
            hd.cell("LP", "SMTon", q).unwrap().summary().avg_std_dev_us(),
            hd.cell("HP", "SMToff", q).unwrap().summary().avg_std_dev_us(),
            hd.cell("HP", "SMTon", q).unwrap().summary().avg_std_dev_us(),
        ];
        table_b.row(&[
            format!("{q}"),
            format!("{:.2}", cells[0]),
            format!("{:.2}", cells[1]),
            format!("{:.2}", cells[2]),
            format!("{:.2}", cells[3]),
        ]);
        csv.row(&[
            "hdsearch".into(),
            format!("{q}"),
            format!("{:.3}", cells[0]),
            format!("{:.3}", cells[1]),
            format!("{:.3}", cells[2]),
            format!("{:.3}", cells[3]),
        ]);
    }
    println!("{}", table_b.render());
    crate::write_csv("fig5_stddev.csv", &csv);

    println!(
        "\nFinding 4 crossover: at 10K QPS LP stddev {lp_low:.1}us vs HP {hp_low:.1}us (LP noisier); \
         at 500K LP {lp_high:.1}us vs HP {hp_high:.1}us."
    );
    if lp_low <= hp_low {
        eprintln!("[shape warning] LP should be noisier than HP at low load");
    }
}
