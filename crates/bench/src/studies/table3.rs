//! **Table III**: the scenario taxonomy and which scenarios risk wrong
//! conclusions.

use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios;

use crate::study::StudyCtx;

/// Renders Table III (static taxonomy data; the engine is unused).
pub(crate) fn run(_ctx: &StudyCtx) {
    println!("== Table III: Scenarios tested in Section V ==\n");
    let mut table = MarkdownTable::new(&[
        "Workload Generator Design",
        "Point of Meas.",
        "Client Conf.",
        "Response Time",
        "Risk",
        "Sections",
    ]);
    let mut csv = Csv::new(&["design", "pom", "client", "response_time", "risk", "sections"]);
    for s in scenarios::table_iii() {
        let design = format!(
            "open-loop {}",
            if s.timing == tpv_loadgen::TimingMode::BlockWait {
                "time-sensitive"
            } else {
                "time-insensitive"
            }
        );
        let pom = "in-app".to_string();
        let client = if s.client_tuned { "tuned" } else { "not-tuned" }.to_string();
        let resp = if s.small_response_time { "small" } else { "big" }.to_string();
        let risk = if s.risk { "X" } else { "-" }.to_string();
        table.row(&[
            design.clone(),
            pom.clone(),
            client.clone(),
            resp.clone(),
            risk.clone(),
            s.sections.to_string(),
        ]);
        csv.row(&[design, pom, client, resp, risk, s.sections.to_string()]);
    }
    println!("{}", table.render());
    crate::write_csv("table3_scenarios.csv", &csv);
}
