//! Regenerates **Figure 6**: LP/HP clients on the Social Network
//! application (read-user-timeline) — the multi-service case of Finding 3.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{socialnet_study, SOCIALNET_QPS};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(20);
    let duration = env_duration(4000);
    banner("Figure 6: Social Network (read-user-timeline), LP vs HP", runs, duration);

    let results = socialnet_study(&SOCIALNET_QPS, runs, duration, env_seed()).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&[
        "QPS",
        "LP avg (ms)",
        "HP avg (ms)",
        "LP p99 (ms)",
        "HP p99 (ms)",
        "LP/HP avg",
        "LP/HP p99",
    ]);
    let mut csv =
        Csv::new(&["qps", "lp_avg_us", "hp_avg_us", "lp_p99_us", "hp_p99_us", "ratio_avg", "ratio_p99"]);

    let mut avg_ratios = Vec::new();
    let mut p99_ratios = Vec::new();
    for &q in &SOCIALNET_QPS {
        let lp = results.cell("LP", "SMToff", q).unwrap().summary();
        let hp = results.cell("HP", "SMToff", q).unwrap().summary();
        let r_avg = lp.avg_median_us() / hp.avg_median_us();
        let r_p99 = lp.p99_median_us() / hp.p99_median_us();
        avg_ratios.push(r_avg);
        p99_ratios.push(r_p99);
        table.row(&[
            format!("{q}"),
            format!("{:.2}", lp.avg_median_us() / 1000.0),
            format!("{:.2}", hp.avg_median_us() / 1000.0),
            format!("{:.2}", lp.p99_median_us() / 1000.0),
            format!("{:.2}", hp.p99_median_us() / 1000.0),
            format!("{r_avg:.3}"),
            format!("{r_p99:.3}"),
        ]);
        csv.row(&[
            format!("{q}"),
            format!("{:.2}", lp.avg_median_us()),
            format!("{:.2}", hp.avg_median_us()),
            format!("{:.2}", lp.p99_median_us()),
            format!("{:.2}", hp.p99_median_us()),
            format!("{r_avg:.4}"),
            format!("{r_p99:.4}"),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("fig6_socialnet.csv", &csv);

    let mean_avg_ratio = avg_ratios.iter().sum::<f64>() / avg_ratios.len() as f64;
    let mean_p99_ratio = p99_ratios.iter().sum::<f64>() / p99_ratios.len() as f64;
    println!(
        "\nFinding 3 (multi-service): mean LP/HP ratio {mean_avg_ratio:.3} on avg (paper ~1.05) \
         and {mean_p99_ratio:.3} on p99 (paper ~1.00: the tail is server-dominated)."
    );
    if mean_avg_ratio > 1.20 {
        eprintln!("[shape warning] Social Network LP/HP gap larger than the paper's band");
    }
}
