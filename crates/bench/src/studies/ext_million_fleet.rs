//! **Extension experiment** (beyond the paper's figures): the paper's
//! LP-client p99 spread at *population* scale — one million modeled
//! clients, cohort-compressed.
//!
//! The paper characterizes client-side variability on a handful of
//! testbed machines; the north star is a fleet of millions. ConfigTron's
//! observation makes that tractable: real client populations cluster
//! into a modest number of (hardware × network × load) classes, so a
//! population-scale simulation needs per-class state only. This study
//! declares 16 cohorts of 62,500 clients each — a quarter low-power,
//! split across two link classes, with slightly staggered per-client
//! load — over a 16-shard server tier, and lets the cohort layer lower
//! the million-client population to 48 simulated nodes (two tracked
//! representatives plus one pooled arrival stream per cohort).
//!
//! Reported per cohort class: population, pooled samples and the
//! median-across-runs p50/p99 of the cohort's rollup. Expected shape:
//! the LP cohorts own the worst tails — the paper's client-configuration
//! skew survives aggregation over 10^6 clients, and the spread between
//! the worst (LP) and best (HP) cohort p99 quantifies it.

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, CohortSpec, ShardSpec, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const COHORTS: usize = 16;
const POPULATION: u32 = 62_500;
const TRACKED: u32 = 2;
const SHARDS: usize = 16;
const BASE_QPS_PER_CLIENT: f64 = 2.0;

/// The 16 cohort classes: a quarter low-power, alternating link
/// classes, per-client load staggered so every class is distinct
/// content (distinct RNG streams under content addressing).
fn cohorts() -> Vec<CohortSpec> {
    let gen = GeneratorSpec::mutilate().with_connections(8);
    (0..COHORTS)
        .map(|i| {
            let lp = i % 4 == 0;
            let machine = if lp { MachineConfig::low_power() } else { MachineConfig::high_performance() };
            let link = if i % 2 == 0 { LinkConfig::cloudlab_lan() } else { LinkConfig::cross_rack() };
            let class = if lp { "lp" } else { "hp" };
            let qps = BASE_QPS_PER_CLIENT + 0.05 * i as f64;
            let node = ClientNode::new(format!("{class}-class{i}"), machine, gen, link, qps);
            CohortSpec::new(node, POPULATION).with_tracked(TRACKED)
        })
        .collect()
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(5);
    let duration = env_duration(150);
    let cohorts = cohorts();
    let tier = ShardSpec::uniform(MachineConfig::server_baseline(), SHARDS);
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let topo = TopologySpec {
        shards: Some(&tier),
        service: &service,
        server: &server,
        nodes: &[],
        duration,
        warmup: duration / 10,
        cohorts: &cohorts,
    };
    banner(
        "Extension: one million cohort-compressed clients — LP-class p99 spread at population scale",
        runs,
        duration,
    );
    println!(
        "{} modeled clients in {COHORTS} cohorts of {POPULATION} ({TRACKED} tracked each) over \
         {SHARDS} shards; the cohort layer lowers the population to {} simulated nodes.\n",
        topo.modeled_clients(),
        topo.lowered_node_count(),
    );
    assert!(topo.modeled_clients() >= 1_000_000, "study must model at least a million clients");

    let per_cell = ctx.run_cohorted_cells(&[topo], runs, env_seed());
    let samples = &per_cell[0];

    let mut table = MarkdownTable::new(&["cohort", "class", "population", "samples", "p50 (us)", "p99 (us)"]);
    let mut csv =
        Csv::new(&["cohort", "class", "population", "samples", "p50_us", "p99_us", "per_client_qps"]);
    let mut lp_p99: Vec<f64> = Vec::new();
    let mut hp_p99: Vec<f64> = Vec::new();
    for (ci, spec) in cohorts.iter().enumerate() {
        let rollups: Vec<_> = samples.iter().map(|s| s.cohorts[ci].result.clone()).collect();
        let summary = Summary::from_runs(&rollups);
        let p99 = summary.p99_median_us();
        let mut p50s: Vec<f64> = rollups.iter().map(|r| r.p50.as_us()).collect();
        p50s.sort_by(f64::total_cmp);
        let p50 = p50s[p50s.len() / 2];
        let label = &spec.node.label;
        let class = if label.starts_with("lp") { "LP" } else { "HP" };
        if class == "LP" {
            lp_p99.push(p99);
        } else {
            hp_p99.push(p99);
        }
        table.row(&[
            label.clone(),
            class.to_string(),
            spec.population.to_string(),
            rollups[0].samples.to_string(),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
        ]);
        csv.row(&[
            label.clone(),
            class.to_string(),
            spec.population.to_string(),
            rollups[0].samples.to_string(),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.3}", spec.node.qps),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_million_fleet.csv", &csv);

    let worst_lp = lp_p99.iter().copied().fold(f64::MIN, f64::max);
    let best_hp = hp_p99.iter().copied().fold(f64::MAX, f64::min);
    let spread = worst_lp / best_hp;
    println!(
        "\nPopulation finding: across 10^6 modeled clients the worst low-power cohort posts a \
         p99 of {worst_lp:.1} us against the best high-performance cohort's {best_hp:.1} us — a \
         {spread:.2}x spread from client-side configuration alone, at the simulation cost of \
         {} nodes.",
        cohorts.len() * 3
    );
}
