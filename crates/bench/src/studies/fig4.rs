//! Regenerates **Figure 4**: SMT and C1E impact on HDSearch service
//! latency with LP and HP clients — the high-response-time service where
//! client choice stops mattering (Finding 3).

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::compare;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{hdsearch_c1e_study, hdsearch_smt_study, HDSEARCH_QPS};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(20);
    let duration = env_duration(1500);
    banner("Figure 4: HDSearch SMT + C1E studies (LP/HP clients)", runs, duration);

    let smt = hdsearch_smt_study(&HDSEARCH_QPS, runs, duration, env_seed()).run_with(&ctx.engine);
    let c1e = hdsearch_c1e_study(&HDSEARCH_QPS, runs, duration, env_seed() + 1).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&[
        "QPS",
        "LP-SMToff avg (ms)",
        "HP-SMToff avg (ms)",
        "LP/HP gap",
        "SMT speedup LP",
        "SMT speedup HP",
        "C1E slowdown LP",
        "C1E slowdown HP",
    ]);
    let mut csv = Csv::new(&[
        "qps",
        "lp_smtoff_avg_us",
        "hp_smtoff_avg_us",
        "lp_smtoff_p99_us",
        "hp_smtoff_p99_us",
        "lp_hp_gap_avg",
        "lp_hp_gap_p99",
        "smt_speedup_avg_lp",
        "smt_speedup_avg_hp",
        "c1e_slowdown_avg_lp",
        "c1e_slowdown_avg_hp",
    ]);

    let mut gaps = Vec::new();
    let mut trend_agreement = 0usize;
    for &q in &HDSEARCH_QPS {
        let lp_off = smt.cell("LP", "SMToff", q).unwrap().summary();
        let hp_off = smt.cell("HP", "SMToff", q).unwrap().summary();
        let lp_on = smt.cell("LP", "SMTon", q).unwrap().summary();
        let hp_on = smt.cell("HP", "SMTon", q).unwrap().summary();
        let lp_c_off = c1e.cell("LP", "SMToff", q).unwrap().summary();
        let lp_c_on = c1e.cell("LP", "C1Eon", q).unwrap().summary();
        let hp_c_off = c1e.cell("HP", "SMToff", q).unwrap().summary();
        let hp_c_on = c1e.cell("HP", "C1Eon", q).unwrap().summary();

        let gap_avg = lp_off.avg_median_us() / hp_off.avg_median_us();
        let gap_p99 = lp_off.p99_median_us() / hp_off.p99_median_us();
        gaps.push(gap_avg);

        let smt_lp = compare(&lp_off, &lp_on).speedup_avg;
        let smt_hp = compare(&hp_off, &hp_on).speedup_avg;
        let c1e_lp = compare(&lp_c_on, &lp_c_off).speedup_avg;
        let c1e_hp = compare(&hp_c_on, &hp_c_off).speedup_avg;
        // "Same speedups (with similar trends) for both clients".
        if (smt_lp - smt_hp).abs() < 0.08 {
            trend_agreement += 1;
        }

        table.row(&[
            format!("{q}"),
            format!("{:.3}", lp_off.avg_median_us() / 1000.0),
            format!("{:.3}", hp_off.avg_median_us() / 1000.0),
            format!("{gap_avg:.3}"),
            format!("{smt_lp:.3}"),
            format!("{smt_hp:.3}"),
            format!("{c1e_lp:.3}"),
            format!("{c1e_hp:.3}"),
        ]);
        csv.row(&[
            format!("{q}"),
            format!("{:.2}", lp_off.avg_median_us()),
            format!("{:.2}", hp_off.avg_median_us()),
            format!("{:.2}", lp_off.p99_median_us()),
            format!("{:.2}", hp_off.p99_median_us()),
            format!("{gap_avg:.4}"),
            format!("{gap_p99:.4}"),
            format!("{smt_lp:.4}"),
            format!("{smt_hp:.4}"),
            format!("{c1e_lp:.4}"),
            format!("{c1e_hp:.4}"),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("fig4_hdsearch.csv", &csv);

    let lo = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = gaps.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nFinding 3 (single-service): LP/HP gap {lo:.2}x – {hi:.2}x (paper: 1.07x – 1.17x); \
         SMT speedup trends agree for {trend_agreement}/{} load points.",
        HDSEARCH_QPS.len()
    );
    if hi > 1.35 {
        eprintln!("[shape warning] HDSearch LP/HP gap larger than the paper's band");
    }
}
