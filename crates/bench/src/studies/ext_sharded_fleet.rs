//! **Extension experiment** (beyond the paper's figures): the paper's
//! client-side skew against a *sharded* server tier.
//!
//! Datacenter services are not one backend: a load-balanced tier of K
//! shards serves the fleet, and the node→shard routing is itself a knob
//! (ConfigTron's heterogeneous populations spread over multiple
//! backends). This study runs a 32-node memcached fleet against an
//! 8-shard tier and crosses two variables:
//!
//! * **routing** — uniform round-robin vs a skewed hot shard that takes
//!   40% of the fleet (an imbalanced router);
//! * **client hygiene** — an all-HP fleet vs one LP (untuned, deep
//!   C-states) client injected per shard.
//!
//! Reported per cell: the pooled aggregate p99 next to the per-shard
//! spread (worst/best shard p99). Expected shape: hot-shard routing
//! inflates the hot backend's tail through genuine server queueing,
//! while the LP injection inflates *every* shard's recorded tail —
//! client-side skew mimics backend imbalance at shard granularity, and
//! only the per-shard × per-node breakdown tells the two apart.

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, ShardPolicy, ShardSpec, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const SHARDS: usize = 8;
const FLEET: usize = 32;
const TOTAL_QPS: f64 = 400_000.0;
const HOT_SHARE: f64 = 0.4;

/// A 32-node fleet; with `lp_per_shard`, nodes 0..8 are LP — exactly one
/// per shard under round-robin routing.
fn fleet(lp_per_shard: bool) -> Vec<ClientNode> {
    let gen = GeneratorSpec::mutilate().with_connections(160 / FLEET as u32);
    let link = LinkConfig::cloudlab_lan();
    let per_node = TOTAL_QPS / FLEET as f64;
    (0..FLEET)
        .map(|i| {
            if lp_per_shard && i < SHARDS {
                ClientNode::new(format!("lp{i}"), MachineConfig::low_power(), gen, link, per_node)
            } else {
                ClientNode::new(format!("hp{i}"), MachineConfig::high_performance(), gen, link, per_node)
            }
        })
        .collect()
}

fn tier(hot: bool) -> ShardSpec {
    let spec = ShardSpec::uniform(MachineConfig::server_baseline(), SHARDS);
    if hot {
        spec.with_policy(ShardPolicy::HotShard { hot: 0, share: HOT_SHARE })
    } else {
        spec
    }
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(10);
    let duration = env_duration(300);
    banner(
        "Extension: sharded server tier — per-shard p99 under uniform vs hot-shard routing",
        runs,
        duration,
    );
    println!(
        "{FLEET}-node memcached fleet at {:.0}K QPS over {SHARDS} backend shards; \
         hot routing sends {:.0}% of the fleet to shard 0; LP injection puts one untuned client per shard.\n",
        TOTAL_QPS / 1000.0,
        HOT_SHARE * 100.0
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let cells: Vec<(&str, ShardSpec, Vec<ClientNode>)> = vec![
        ("uniform / all-HP", tier(false), fleet(false)),
        ("uniform / LP-per-shard", tier(false), fleet(true)),
        ("hot / all-HP", tier(true), fleet(false)),
        ("hot / LP-per-shard", tier(true), fleet(true)),
    ];
    let topos: Vec<TopologySpec<'_>> = cells
        .iter()
        .map(|(_, shards, nodes)| TopologySpec {
            shards: Some(shards),
            service: &service,
            server: &server,
            nodes,
            duration,
            warmup,
            cohorts: &[],
        })
        .collect();
    let per_cell = ctx.run_sharded_cells(&topos, runs, env_seed());

    let mut table = MarkdownTable::new(&[
        "routing / fleet",
        "agg p99 (us)",
        "best shard p99 (us)",
        "worst shard p99 (us)",
        "shard spread",
        "hot-shard samples %",
    ]);
    let mut csv = Csv::new(&[
        "routing",
        "lp_per_shard",
        "agg_p99_us",
        "best_shard_p99_us",
        "worst_shard_p99_us",
        "shard_spread",
        "hot_share_pct",
    ]);

    let mut spreads: Vec<(String, f64)> = Vec::new();
    for (ci, (label, _, _)) in cells.iter().enumerate() {
        let samples = &per_cell[ci];
        let aggregate: Vec<_> = samples.iter().map(|s| s.fleet.aggregate.clone()).collect();
        let agg_p99 = Summary::from_runs(&aggregate).p99_median_us();
        // Median across runs of the per-run best/worst shard tails.
        let mut best: Vec<f64> = samples.iter().map(|s| s.best_shard_p99().as_us()).collect();
        let mut worst: Vec<f64> = samples.iter().map(|s| s.worst_shard_p99().as_us()).collect();
        best.sort_by(f64::total_cmp);
        worst.sort_by(f64::total_cmp);
        let best_p99 = best[best.len() / 2];
        let worst_p99 = worst[worst.len() / 2];
        let spread = worst_p99 / best_p99;
        let hot_pct: f64 = samples
            .iter()
            .map(|s| s.shards[0].result.samples as f64 / s.fleet.aggregate.samples.max(1) as f64)
            .sum::<f64>()
            / samples.len() as f64
            * 100.0;
        spreads.push((label.to_string(), spread));
        table.row(&[
            label.to_string(),
            format!("{agg_p99:.1}"),
            format!("{best_p99:.1}"),
            format!("{worst_p99:.1}"),
            format!("{spread:.2}x"),
            format!("{hot_pct:.1}"),
        ]);
        let (routing, lp) = label.split_once(" / ").expect("cell label shape");
        csv.row(&[
            routing.to_string(),
            u8::from(lp.starts_with("LP")).to_string(),
            format!("{agg_p99:.3}"),
            format!("{best_p99:.3}"),
            format!("{worst_p99:.3}"),
            format!("{spread:.4}"),
            format!("{hot_pct:.3}"),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_sharded_fleet.csv", &csv);

    let clean = spreads[0].1;
    let hot = spreads[2].1;
    let lp = spreads[1].1;
    println!(
        "\nShard finding: hot-shard routing widens the per-shard p99 spread to {hot:.2}x \
         (uniform baseline {clean:.2}x) through real backend queueing — but one untuned client \
         per shard already widens it to {lp:.2}x with *no* server imbalance: client-side \
         configuration skew is indistinguishable from backend imbalance until the per-node \
         breakdown names the culprits."
    );
}
