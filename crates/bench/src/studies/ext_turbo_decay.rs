//! **Extension experiment** (beyond the paper's figures): mid-run
//! turbo/power-budget exhaustion on a subset of client nodes.
//!
//! The paper's client configurations are frozen per run, but a tuned
//! client does not stay tuned under sustained load: the turbo budget
//! drains, RAPL capping kicks in and the platform falls back to
//! powersave behaviour — frequency drops and deep idle states re-arm.
//! This study runs an 8-node HP memcached fleet in which two nodes
//! exhaust their budget halfway through the run and degrade to the
//! untuned (LP-like) behaviour for the rest of it.
//!
//! Expected shape: the pooled per-phase p99 is clean before the boundary
//! and degrades after it (the regime change is visible in time), while
//! the whole-run **per-node** breakdown localizes the culprits — the two
//! decayed nodes carry inflated p99 and send slip, the steady majority
//! stays clean. A mid-run state change is therefore observable twice
//! over: *when* (per-phase) and *where* (per-node).

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, NodeDynamics, TopologySpec};
use tpv_hw::{CStatePolicy, DynamicMachine, FreqDriver, FreqGovernor, MachineConfig, UncoreMode};
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_sim::{PhaseSchedule, SimTime};
use tpv_stats::desc;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const FLEET: usize = 8;
const DECAYED: usize = 2;
const TOTAL_QPS: f64 = 200_000.0;

/// What an HP client becomes once its turbo/power budget is spent: turbo
/// gone, the governor back in powersave with deep idle re-armed and the
/// uncore allowed to ramp — the platform's capped fallback, not a
/// generator restart.
fn exhausted(base: MachineConfig) -> MachineConfig {
    base.with_turbo(false)
        .with_dvfs(FreqDriver::IntelPstate, FreqGovernor::Powersave)
        .with_cstates(CStatePolicy::UpToC6)
        .with_uncore(UncoreMode::Dynamic)
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(400);
    banner("Extension: turbo decay — power budget exhausts mid-run on 2 of 8 nodes", runs, duration);
    let decay_at = SimTime::ZERO + duration / 2;
    println!(
        "{FLEET}-node HP memcached fleet, {:.0}K QPS total; nodes decay0..{} fall back to capped \
         powersave behaviour at {decay_at}.\n",
        TOTAL_QPS / 1000.0,
        DECAYED - 1
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(160 / FLEET as u32);
    let link = LinkConfig::cloudlab_lan();
    let per_node = TOTAL_QPS / FLEET as f64;
    let hp = MachineConfig::high_performance();
    let schedule = PhaseSchedule::new(vec![decay_at]);
    let decay_plan = DynamicMachine::new(schedule.clone(), vec![hp, exhausted(hp)]);
    let nodes: Vec<ClientNode> = (0..FLEET)
        .map(|i| {
            if i < DECAYED {
                ClientNode::new(format!("decay{i}"), hp, gen, link, per_node)
                    .with_dynamics(NodeDynamics::new(schedule.clone()).with_machine_plan(decay_plan.clone()))
            } else {
                ClientNode::new(format!("steady{i}"), hp, gen, link, per_node)
            }
        })
        .collect();
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration,
        warmup,
        cohorts: &[],
    };
    let samples = &ctx.run_phased_cells(&[topo], runs, env_seed())[0];

    // When: the pooled per-phase regimes around the boundary.
    let mut phase_table = MarkdownTable::new(&["phase", "window", "p50 (us)", "p99 (us)", "CoV"]);
    let mut csv = Csv::new(&["phase", "p50_us", "p99_us", "cov", "class", "node_p99_us", "slip_us"]);
    let median_of = |f: &dyn Fn(&tpv_core::collect::PhaseStats) -> f64, i: usize| -> f64 {
        let vals: Vec<f64> = samples.iter().map(|r| f(&r.phases[i])).collect();
        desc::median(&vals)
    };
    let mut phase_p99 = Vec::new();
    for i in 0..samples[0].phases.len() {
        let stats = &samples[0].phases[i];
        let p50 = median_of(&|p| p.p50.as_us(), i);
        let p99 = median_of(&|p| p.p99.as_us(), i);
        let cov = median_of(&|p| p.cov, i);
        phase_p99.push(p99);
        phase_table.row(&[
            format!("{}", stats.phase),
            format!("{}..{}", stats.start, stats.end),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            format!("{cov:.3}"),
        ]);
        csv.row(&[
            format!("{}", stats.phase),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{cov:.4}"),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!("{}", phase_table.render());

    // Where: the whole-run per-node breakdown that names the culprits.
    let mut node_table =
        MarkdownTable::new(&["node class", "whole-run p99 (us)", "mean send slip (us)", "deep wakes"]);
    for class in ["decay", "steady"] {
        let class_runs: Vec<_> = samples
            .iter()
            .flat_map(|r| {
                r.fleet.nodes.iter().filter(|n| n.label.starts_with(class)).map(|n| n.result.clone())
            })
            .collect();
        let summary = Summary::from_runs(&class_runs);
        let slip: Vec<f64> = class_runs.iter().map(|r| r.mean_send_slip.as_us()).collect();
        let deep: Vec<f64> =
            class_runs.iter().map(|r| (r.client_wakes[2] + r.client_wakes[3]) as f64).collect();
        node_table.row(&[
            class.to_string(),
            format!("{:.1}", summary.p99_median_us()),
            format!("{:.1}", desc::median(&slip)),
            format!("{:.0}", desc::median(&deep)),
        ]);
        csv.row(&[
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            class.to_string(),
            format!("{:.3}", summary.p99_median_us()),
            format!("{:.3}", desc::median(&slip)),
        ]);
    }
    println!("{}", node_table.render());
    crate::write_csv("ext_turbo_decay.csv", &csv);

    let degradation = phase_p99.last().unwrap() / phase_p99.first().unwrap();
    println!(
        "\nDecay finding: the pooled p99 degrades {degradation:.2}x at the mid-run boundary, and the \
         per-node breakdown pins it on the {DECAYED} decayed nodes — per-phase metrics say *when*, \
         per-node metrics say *who*."
    );
}
