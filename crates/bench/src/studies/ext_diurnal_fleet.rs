//! **Extension experiment** (beyond the paper's figures): a fleet under
//! stepped diurnal load.
//!
//! Every run in the paper holds one QPS for the whole window, but
//! production traffic is diurnal — and time-varying load is exactly what
//! makes naive whole-run statistics lie (TUNA's unstable-noise argument).
//! This study drives an 8-node HP memcached fleet with a stepped
//! approximation of one diurnal cycle (per-phase rate multipliers from a
//! sinusoid, time-average 1.0) and reports **per-phase pooled
//! statistics**: the latency regime of each load step next to the single
//! whole-run p99 an experimenter would naively publish.
//!
//! Expected shape: per-phase p99 tracks the load steps — highest at the
//! peak phase, lowest at the trough — while each phase's achieved rate
//! matches its offered multiplier; the whole-run aggregate blends the
//! regimes into one number that describes none of them.

use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{uniform_fleet, ClientNode, NodeDynamics, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_stats::desc;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const FLEET: usize = 8;
const TOTAL_QPS: f64 = 200_000.0;
const STEPS: usize = 6;
const AMPLITUDE: f64 = 0.6;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(400);
    banner("Extension: diurnal fleet — stepped time-varying load, per-phase regimes", runs, duration);
    println!(
        "{FLEET}-node HP memcached fleet, {:.0}K QPS base; one diurnal cycle in {STEPS} steps, amplitude {AMPLITUDE}.\n",
        TOTAL_QPS / 1000.0
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    // One cycle spans the run; every node follows the same rate plan, so
    // the fleet-wide load sweeps trough -> peak deterministically.
    let rate = PhasedRate::diurnal(duration, STEPS, AMPLITUDE);
    let dynamics = NodeDynamics::new(rate.schedule().clone()).with_rate_plan(rate.clone());
    let nodes: Vec<ClientNode> = uniform_fleet(
        "agent",
        MachineConfig::high_performance(),
        GeneratorSpec::mutilate(),
        LinkConfig::cloudlab_lan(),
        TOTAL_QPS,
        FLEET,
    )
    .into_iter()
    .map(|n| n.with_dynamics(dynamics.clone()))
    .collect();
    let topo = TopologySpec {
        shards: None,
        service: &service,
        server: &server,
        nodes: &nodes,
        duration,
        warmup,
        cohorts: &[],
    };
    let per_cell = ctx.run_phased_cells(&[topo], runs, env_seed());
    let samples = &per_cell[0];

    let mut table = MarkdownTable::new(&[
        "phase",
        "window",
        "multiplier",
        "offered (QPS)",
        "achieved (QPS)",
        "p50 (us)",
        "p99 (us)",
        "CoV",
    ]);
    let mut csv =
        Csv::new(&["phase", "multiplier", "offered_qps", "achieved_qps", "p50_us", "p99_us", "cov"]);

    // All runs share the schedule, so phase i means the same regime in
    // every run; report the across-run median of each per-phase metric.
    let phase_count = samples[0].phases.len();
    let median_of = |f: &dyn Fn(&tpv_core::collect::PhaseStats) -> f64, i: usize| -> f64 {
        let vals: Vec<f64> = samples.iter().map(|r| f(&r.phases[i])).collect();
        desc::median(&vals)
    };
    let mut peak = (0usize, f64::MIN);
    let mut trough = (0usize, f64::MAX);
    for i in 0..phase_count {
        let stats = &samples[0].phases[i];
        let mult = rate.multiplier(stats.phase);
        let p50 = median_of(&|p| p.p50.as_us(), i);
        let p99 = median_of(&|p| p.p99.as_us(), i);
        let cov = median_of(&|p| p.cov, i);
        let achieved = median_of(&|p| p.achieved_qps, i);
        if mult > peak.1 {
            peak = (i, mult);
        }
        if mult < trough.1 {
            trough = (i, mult);
        }
        table.row(&[
            format!("{}", stats.phase),
            format!("{}..{}", stats.start, stats.end),
            format!("{mult:.2}x"),
            format!("{:.0}", TOTAL_QPS * mult),
            format!("{achieved:.0}"),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            format!("{cov:.3}"),
        ]);
        csv.row(&[
            format!("{}", stats.phase),
            format!("{mult:.4}"),
            format!("{:.1}", TOTAL_QPS * mult),
            format!("{achieved:.1}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{cov:.4}"),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_diurnal_fleet.csv", &csv);

    let whole_run: Vec<f64> = samples.iter().map(|r| r.fleet.aggregate.p99.as_us()).collect();
    let peak_p99 = median_of(&|p| p.p99.as_us(), peak.0);
    let trough_p99 = median_of(&|p| p.p99.as_us(), trough.0);
    println!(
        "\nDiurnal finding: the peak phase ({:.1}x load) runs a {:.2}x higher pooled p99 than the trough \
         ({:.1}x load) — one whole-run p99 ({:.1}us) describes neither regime.",
        peak.1,
        peak_p99 / trough_p99,
        trough.1,
        desc::median(&whole_run),
    );
}
