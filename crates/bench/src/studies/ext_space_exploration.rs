//! **Extension experiment**: the §VI space exploration, executed.
//!
//! "When the target configuration is unknown, a space exploration could
//! be made to evaluate a technique under several scenarios, using either
//! homogeneous or heterogeneous client and server machine configurations."
//!
//! This binary runs the SMT question under a grid of client
//! configurations (LP, HP, and single-knob hybrids) and reports the
//! speedup each client would publish — the spread *is* the configuration
//! risk the paper warns about.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::compare;
use tpv_core::experiment::{Benchmark, Experiment, ServerScenario};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_hw::{CStatePolicy, FreqDriver, FreqGovernor, MachineConfig};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(400);
    banner("Extension: Section VI space exploration (SMT study under client grid)", runs, duration);

    let lp = MachineConfig::low_power();
    let clients: Vec<(&str, MachineConfig)> = vec![
        ("LP", lp),
        ("LP+nocstates", lp.with_cstates(CStatePolicy::PollIdle)),
        ("LP+perfgov", lp.with_dvfs(FreqDriver::IntelPstate, FreqGovernor::Performance)),
        ("LP+C1only", lp.with_cstates(CStatePolicy::UpToC1)),
        ("HP", MachineConfig::high_performance()),
    ];

    let mut builder = Experiment::builder(Benchmark::memcached())
        .server(ServerScenario::baseline())
        .server(ServerScenario::smt_on())
        .qps(&[400_000.0])
        .runs(runs)
        .run_duration(duration)
        .seed(env_seed());
    for (label, cfg) in &clients {
        builder = builder.client_labelled(*label, *cfg);
    }
    let results = builder.build().run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&["client config", "avg SMToff (us)", "SMT p99 speedup", "verdict"]);
    let mut csv = Csv::new(&["client", "avg_smtoff_us", "smt_speedup_p99", "verdict"]);
    let mut speedups = Vec::new();
    for (label, _) in &clients {
        let off = results.cell(label, "SMToff", 400_000.0).unwrap().summary();
        let on = results.cell(label, "SMTon", 400_000.0).unwrap().summary();
        let cmp = compare(&off, &on);
        speedups.push(cmp.speedup_p99);
        table.row(&[
            label.to_string(),
            format!("{:.1}", off.avg_median_us()),
            format!("{:.3}", cmp.speedup_p99),
            cmp.verdict_p99.to_string(),
        ]);
        csv.row(&[
            label.to_string(),
            format!("{:.2}", off.avg_median_us()),
            format!("{:.4}", cmp.speedup_p99),
            cmp.verdict_p99.to_string(),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_space_exploration.csv", &csv);

    let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "published SMT p99 speedup would range {lo:.3}x – {hi:.3}x depending on \
         client configuration — the spread is the reproducibility risk of \
         unreported client hardware."
    );
}
