//! Regenerates **Table IV**: number of iterations to gain statistical
//! confidence (parametric Eq. 3 vs CONFIRM) and Shapiro–Wilk results, for
//! the six §V-A scenarios across the QPS sweep.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::iteration_estimate;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{memcached_c1e_study, memcached_smt_study, MEMCACHED_QPS};
use tpv_sim::SimRng;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(50);
    let duration = env_duration(400);
    banner("Table IV: iterations to gain statistical confidence (1% error, 95% level)", runs, duration);

    let smt = memcached_smt_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);
    let c1e = memcached_c1e_study(&MEMCACHED_QPS, runs, duration, env_seed() + 1).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&["Configuration", "QPS", "Parametric", "CONFIRM", "Shapiro-Wilk"]);
    let mut csv = Csv::new(&["config", "qps", "parametric", "confirm", "shapiro"]);
    let mut rng = SimRng::seed_from_u64(env_seed() ^ 0x7ab1e4);

    let configs: Vec<(&str, &tpv_core::ExperimentResults, &str, &str)> = vec![
        ("LP-SMToff", &smt, "LP", "SMToff"),
        ("LP-SMTon", &smt, "LP", "SMTon"),
        ("HP-SMToff", &smt, "HP", "SMToff"),
        ("HP-SMTon", &smt, "HP", "SMTon"),
        ("LP-C1Eon", &c1e, "LP", "C1Eon"),
        ("HP-C1Eon", &c1e, "HP", "C1Eon"),
    ];

    let mut lp_low_iters = 0usize;
    let mut hp_low_iters = usize::MAX;
    for (name, results, client, server) in configs {
        for &q in &MEMCACHED_QPS {
            let summary = results.cell(client, server, q).unwrap().summary();
            let est = iteration_estimate(&summary, &mut rng);
            let shapiro = match est.shapiro_pass {
                Some(true) => "pass",
                Some(false) => "fail",
                None => "n/a",
            };
            if name == "LP-SMToff" && q == 10_000.0 {
                lp_low_iters = est.parametric;
            }
            if name == "HP-SMToff" && q == 10_000.0 {
                hp_low_iters = est.parametric;
            }
            table.row(&[
                name.to_string(),
                format!("{}K", q as u64 / 1000),
                est.parametric.to_string(),
                est.confirm.to_string(),
                shapiro.to_string(),
            ]);
            csv.row(&[
                name.to_string(),
                format!("{q}"),
                est.parametric.to_string(),
                est.confirm.to_string(),
                shapiro.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    crate::write_csv("table4_iterations.csv", &csv);

    println!(
        "\nFinding 4: at 10K QPS the LP client needs {lp_low_iters} iterations (paper: 288) \
         while the HP client needs {hp_low_iters} (paper: 1)."
    );
    if lp_low_iters < 20 * hp_low_iters {
        eprintln!("[shape warning] LP should need far more iterations than HP at low load");
    }
}
