//! Regenerates **Figure 3**: performance evaluation of C1E impact on
//! Memcached service latency with LP and HP clients — the paper's
//! conflicting-conclusions study (Finding 2).

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::{compare, conclusions_conflict};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{memcached_c1e_study, MEMCACHED_QPS};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(30);
    let duration = env_duration(500);
    banner("Figure 3: Memcached C1E study (LP/HP clients)", runs, duration);

    let results = memcached_c1e_study(&MEMCACHED_QPS, runs, duration, env_seed()).run_with(&ctx.engine);

    let mut table = MarkdownTable::new(&[
        "QPS",
        "LP C1Eoff avg",
        "LP C1Eon avg",
        "HP C1Eoff avg",
        "HP C1Eon avg",
        "C1E_ON/OFF avg LP",
        "C1E_ON/OFF avg HP",
        "verdict LP",
        "verdict HP",
        "conflict",
    ]);
    let mut csv = Csv::new(&[
        "qps",
        "lp_off_avg_us",
        "lp_on_avg_us",
        "hp_off_avg_us",
        "hp_on_avg_us",
        "slowdown_avg_lp",
        "slowdown_avg_hp",
        "slowdown_p99_lp",
        "slowdown_p99_hp",
        "verdict_lp",
        "verdict_hp",
    ]);

    let mut hp_low_load_slowdown = 0.0;
    let mut conflicts = 0;
    for &q in &MEMCACHED_QPS {
        let lp_off = results.cell("LP", "SMToff", q).unwrap().summary();
        let lp_on = results.cell("LP", "C1Eon", q).unwrap().summary();
        let hp_off = results.cell("HP", "SMToff", q).unwrap().summary();
        let hp_on = results.cell("HP", "C1Eon", q).unwrap().summary();

        // Panel (c)/(d) ratios: C1E_ON / C1E_OFF (>1 ⇒ C1E slower).
        let lp_ratio = compare(&lp_on, &lp_off).speedup_avg;
        let hp_ratio = compare(&hp_on, &hp_off).speedup_avg;
        let lp_ratio_p99 = compare(&lp_on, &lp_off).speedup_p99;
        let hp_ratio_p99 = compare(&hp_on, &hp_off).speedup_p99;
        if q == 10_000.0 {
            hp_low_load_slowdown = hp_ratio;
        }

        // Verdict from the baseline's perspective: is C1E-on slower?
        let v_lp = compare(&lp_off, &lp_on).verdict_avg;
        let v_hp = compare(&hp_off, &hp_on).verdict_avg;
        let conflict = conclusions_conflict(v_lp, v_hp);
        if conflict {
            conflicts += 1;
        }

        table.row(&[
            format!("{}K", q as u64 / 1000),
            format!("{:.1}", lp_off.avg_median_us()),
            format!("{:.1}", lp_on.avg_median_us()),
            format!("{:.1}", hp_off.avg_median_us()),
            format!("{:.1}", hp_on.avg_median_us()),
            format!("{lp_ratio:.3}"),
            format!("{hp_ratio:.3}"),
            v_lp.to_string(),
            v_hp.to_string(),
            if conflict { "CONFLICT".into() } else { "-".to_string() },
        ]);
        csv.row(&[
            format!("{q}"),
            format!("{:.3}", lp_off.avg_median_us()),
            format!("{:.3}", lp_on.avg_median_us()),
            format!("{:.3}", hp_off.avg_median_us()),
            format!("{:.3}", hp_on.avg_median_us()),
            format!("{lp_ratio:.4}"),
            format!("{hp_ratio:.4}"),
            format!("{lp_ratio_p99:.4}"),
            format!("{hp_ratio_p99:.4}"),
            v_lp.to_string(),
            v_hp.to_string(),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("fig3_memcached_c1e.csv", &csv);

    println!(
        "\nFinding 2: HP sees a C1E slowdown of {:.1}% at 10K QPS (paper: up to 19%), \
         and {} of {} load points produced conflicting LP-vs-HP conclusions.",
        (hp_low_load_slowdown - 1.0) * 100.0,
        conflicts,
        MEMCACHED_QPS.len()
    );
    if hp_low_load_slowdown < 1.02 {
        eprintln!("[shape warning] HP C1E slowdown at 10K below the paper's band");
    }
}
