//! **Extension experiment** (beyond the paper's figures): time-varying
//! client dynamics against a *sharded* server tier — the combination the
//! kernel historically rejected (`TopologyError::PhasedMultiShard`) and
//! PR 8's canonical-order per-phase merges unlocked.
//!
//! A 32-node memcached fleet follows a 6-phase stepped diurnal load
//! while a quarter of the nodes exhaust their turbo/power budget at
//! mid-run and fall back to capped powersave behaviour. The same fleet
//! runs against two 8-shard tiers:
//!
//! * **uniform** — round-robin routing, every backend takes 1/8 of the
//!   fleet;
//! * **hot** — a skewed router parks 40% of the fleet on shard 0, so the
//!   diurnal peak lands on an already-loaded backend.
//!
//! Reported per tier: the pooled per-phase p50/p99 (when does the tail
//! degrade), the per-phase spread (peak-phase p99 / trough-phase p99)
//! and the whole-run per-shard tails (where the fan-out concentrates
//! it). Expected shape: uniform fan-out *absorbs* the diurnal swing —
//! every shard keeps headroom through the peak, so the per-phase spread
//! stays near the decay-driven floor — while hot-shard fan-out
//! *amplifies* it: the peak phases push the hot backend into queueing
//! and the pooled tail inherits the swing.

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, NodeDynamics, ShardPolicy, ShardSpec, TopologySpec};
use tpv_hw::{CStatePolicy, DynamicMachine, FreqDriver, FreqGovernor, MachineConfig, UncoreMode};
use tpv_loadgen::{GeneratorSpec, PhasedRate};
use tpv_net::LinkConfig;
use tpv_stats::desc;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const FLEET: usize = 32;
const SHARDS: usize = 8;
const PHASES: usize = 6;
const TOTAL_QPS: f64 = 640_000.0;
const AMPLITUDE: f64 = 0.5;
const HOT_SHARE: f64 = 0.4;

/// What an HP client becomes once its turbo/power budget is spent —
/// the same capped fallback `ext_turbo_decay` models.
fn exhausted(base: MachineConfig) -> MachineConfig {
    base.with_turbo(false)
        .with_dvfs(FreqDriver::IntelPstate, FreqGovernor::Powersave)
        .with_cstates(CStatePolicy::UpToC6)
        .with_uncore(UncoreMode::Dynamic)
}

fn tier(hot: bool) -> ShardSpec {
    let spec = ShardSpec::uniform(MachineConfig::server_baseline(), SHARDS);
    if hot {
        spec.with_policy(ShardPolicy::HotShard { hot: 0, share: HOT_SHARE })
    } else {
        spec
    }
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(9);
    let duration = env_duration(240);
    banner(
        "Extension: phased × sharded — 6-phase diurnal + mid-run turbo decay over an 8-shard tier",
        runs,
        duration,
    );
    println!(
        "{FLEET}-node HP memcached fleet, {:.0}K QPS total, ±{:.0}% stepped diurnal swing; every 4th \
         node exhausts its power budget at mid-run. Uniform round-robin vs a hot shard taking \
         {:.0}% of the fleet.\n",
        TOTAL_QPS / 1000.0,
        AMPLITUDE * 100.0,
        HOT_SHARE * 100.0
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let gen = GeneratorSpec::mutilate().with_connections(160 / FLEET as u32);
    let link = LinkConfig::cloudlab_lan();
    let per_node = TOTAL_QPS / FLEET as f64;
    let hp = MachineConfig::high_performance();

    // One 6-phase schedule carries both dynamics: the diurnal rate plan
    // on every node, and — on every 4th node — a machine plan that flips
    // to the exhausted config for the second half of the phases.
    let rate = PhasedRate::diurnal(duration, PHASES, AMPLITUDE);
    let schedule = rate.schedule().clone();
    let mut machines = vec![hp; PHASES / 2];
    machines.extend(vec![exhausted(hp); PHASES - PHASES / 2]);
    let decay_plan = DynamicMachine::new(schedule.clone(), machines);
    let nodes: Vec<ClientNode> = (0..FLEET)
        .map(|i| {
            let dynamics = if i % 4 == 0 {
                NodeDynamics::new(schedule.clone())
                    .with_rate_plan(rate.clone())
                    .with_machine_plan(decay_plan.clone())
            } else {
                NodeDynamics::new(schedule.clone()).with_rate_plan(rate.clone())
            };
            let label = if i % 4 == 0 { format!("decay{i}") } else { format!("steady{i}") };
            ClientNode::new(label, hp, gen, link, per_node).with_dynamics(dynamics)
        })
        .collect();

    let tiers_spec = [tier(false), tier(true)];
    let cells: Vec<TopologySpec<'_>> = tiers_spec
        .iter()
        .map(|shards| TopologySpec {
            shards: Some(shards),
            service: &service,
            server: &server,
            nodes: &nodes,
            duration,
            warmup,
            cohorts: &[],
        })
        .collect();
    let per_cell = ctx.run_phased_cells(&cells, runs, env_seed());
    let tiers = ["uniform", "hot"];

    // When: the pooled per-phase regimes, side by side per tier.
    let mut phase_table =
        MarkdownTable::new(&["phase", "window", "uniform p50 (us)", "uniform p99 (us)", "hot p99 (us)"]);
    let mut csv = Csv::new(&["tier", "phase", "p50_us", "p99_us", "cov", "shard", "shard_p99_us"]);
    let mut spreads = Vec::new();
    for (t, samples) in per_cell.iter().enumerate() {
        let median_of = |f: &dyn Fn(&tpv_core::collect::PhaseStats) -> f64, i: usize| -> f64 {
            let vals: Vec<f64> = samples.iter().map(|r| f(&r.phases[i])).collect();
            desc::median(&vals)
        };
        let mut phase_p99 = Vec::new();
        for i in 0..samples[0].phases.len() {
            let p50 = median_of(&|p| p.p50.as_us(), i);
            let p99 = median_of(&|p| p.p99.as_us(), i);
            let cov = median_of(&|p| p.cov, i);
            phase_p99.push(p99);
            if t == 0 {
                let stats = &samples[0].phases[i];
                let hot_p99: Vec<f64> = per_cell[1].iter().map(|r| r.phases[i].p99.as_us()).collect();
                phase_table.row(&[
                    format!("{}", stats.phase),
                    format!("{}..{}", stats.start, stats.end),
                    format!("{p50:.1}"),
                    format!("{p99:.1}"),
                    format!("{:.1}", desc::median(&hot_p99)),
                ]);
            }
            csv.row(&[
                tiers[t].to_string(),
                format!("{i}"),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                format!("{cov:.4}"),
                String::new(),
                String::new(),
            ]);
        }
        let peak = phase_p99.iter().cloned().fold(f64::MIN, f64::max);
        let trough = phase_p99.iter().cloned().fold(f64::MAX, f64::min);
        spreads.push(peak / trough);
    }
    println!("{}", phase_table.render());

    // Where: the whole-run per-shard tails that show what the fan-out
    // does with the swing.
    let mut shard_table =
        MarkdownTable::new(&["tier", "worst shard p99 (us)", "best shard p99 (us)", "per-phase spread"]);
    for (t, samples) in per_cell.iter().enumerate() {
        for shard in 0..SHARDS {
            let p99s: Vec<f64> = samples.iter().map(|r| r.shards[shard].result.p99.as_us()).collect();
            csv.row(&[
                tiers[t].to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("{shard}"),
                format!("{:.3}", desc::median(&p99s)),
            ]);
        }
        let worst: Vec<f64> = samples
            .iter()
            .map(|r| r.shards.iter().map(|s| s.result.p99.as_us()).fold(f64::MIN, f64::max))
            .collect();
        let best: Vec<f64> = samples
            .iter()
            .map(|r| r.shards.iter().map(|s| s.result.p99.as_us()).fold(f64::MAX, f64::min))
            .collect();
        shard_table.row(&[
            tiers[t].to_string(),
            format!("{:.1}", desc::median(&worst)),
            format!("{:.1}", desc::median(&best)),
            format!("{:.2}x", spreads[t]),
        ]);
    }
    println!("{}", shard_table.render());

    // Who: the decayed quarter still shows up in the per-node breakdown
    // even with the diurnal swing and the shard fan-out in play.
    let mut node_table = MarkdownTable::new(&["node class", "whole-run p99 (us, uniform tier)"]);
    for class in ["decay", "steady"] {
        let class_runs: Vec<_> = per_cell[0]
            .iter()
            .flat_map(|r| {
                r.fleet.nodes.iter().filter(|n| n.label.starts_with(class)).map(|n| n.result.clone())
            })
            .collect();
        let summary = Summary::from_runs(&class_runs);
        node_table.row(&[class.to_string(), format!("{:.1}", summary.p99_median_us())]);
    }
    println!("{}", node_table.render());
    crate::write_csv("ext_phased_shards.csv", &csv);

    let verdict = if spreads[1] > spreads[0] { "amplifies" } else { "absorbs" };
    println!(
        "\nPhased-shards finding: uniform fan-out holds the per-phase p99 spread at {:.2}x while the \
         hot-shard router {verdict} the diurnal swing ({:.2}x) — backend fan-out, not client hygiene \
         alone, decides whether a load swing reaches the tail.",
        spreads[0], spreads[1]
    );
}
