//! **Table II**: client- and server-side hardware configurations.

use tpv_core::report::{Csv, MarkdownTable};
use tpv_hw::MachineConfig;

use crate::study::StudyCtx;

/// Renders Table II (static configuration data; the engine is unused).
pub(crate) fn run(_ctx: &StudyCtx) {
    println!("== Table II: Client- and server-side hardware configurations ==\n");
    let lp = MachineConfig::low_power();
    let hp = MachineConfig::high_performance();
    let srv = MachineConfig::server_baseline();

    let rows: Vec<(&str, String, String, String)> = vec![
        ("C-states", lp.cstates.to_string(), hp.cstates.to_string(), srv.cstates.to_string()),
        (
            "Frequency Driver",
            lp.dvfs.driver.to_string(),
            hp.dvfs.driver.to_string(),
            srv.dvfs.driver.to_string(),
        ),
        (
            "Frequency Governor",
            lp.dvfs.governor.to_string(),
            hp.dvfs.governor.to_string(),
            srv.dvfs.governor.to_string(),
        ),
        ("Turbo", lp.turbo.to_string(), hp.turbo.to_string(), srv.turbo.to_string()),
        ("SMT", lp.smt.to_string(), hp.smt.to_string(), srv.smt.to_string()),
        ("Uncore Frequency", lp.uncore.to_string(), hp.uncore.to_string(), srv.uncore.to_string()),
        ("Tickless", lp.tick.to_string(), hp.tick.to_string(), srv.tick.to_string()),
    ];

    let mut table = MarkdownTable::new(&["Configuration", "Client LP", "Client HP", "Server Baseline"]);
    let mut csv = Csv::new(&["knob", "client_lp", "client_hp", "server_baseline"]);
    for (knob, a, b, c) in &rows {
        table.row(&[knob.to_string(), a.clone(), b.clone(), c.clone()]);
        csv.row(&[knob.to_string(), a.clone(), b.clone(), c.clone()]);
    }
    println!("{}", table.render());
    crate::write_csv("table2_configs.csv", &csv);

    // Paper fidelity checks.
    assert_eq!(lp.cstates.to_string(), "C0,C1,C1E,C6");
    assert_eq!(hp.cstates.to_string(), "off");
    assert_eq!(srv.cstates.to_string(), "C0,C1");
}
