//! Renderer implementations for every registered [`Study`](crate::study::Study).
//!
//! Each module is one artefact: it builds its experiments, executes them
//! through the context's engine (sharing the run cache with any other
//! study in the same driver process) and prints the paper-format output.

pub(crate) mod calibrate;
pub(crate) mod ext_closed_loop;
pub(crate) mod ext_diurnal_fleet;
pub(crate) mod ext_fleet_scaling;
pub(crate) mod ext_million_fleet;
pub(crate) mod ext_mitigation;
pub(crate) mod ext_mixed_fleet;
pub(crate) mod ext_phased_shards;
pub(crate) mod ext_sharded_fleet;
pub(crate) mod ext_space_exploration;
pub(crate) mod ext_turbo_decay;
pub(crate) mod ext_verdict_methods;
pub(crate) mod fig2;
pub(crate) mod fig3;
pub(crate) mod fig4;
pub(crate) mod fig5;
pub(crate) mod fig6;
pub(crate) mod fig7;
pub(crate) mod fig8;
pub(crate) mod fig9;
pub(crate) mod table1;
pub(crate) mod table2;
pub(crate) mod table3;
pub(crate) mod table4;
