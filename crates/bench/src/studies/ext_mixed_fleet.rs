//! **Extension experiment** (beyond the paper's figures): the paper's
//! client-configuration skew at *fleet* scale.
//!
//! The paper shows one misconfigured client machine corrupts its own
//! measurements (Finding 1). Real load-generation deployments run fleets
//! of agents (mutilate's 4-agent deployment, ConfigTron's heterogeneous
//! fleets) and pool their samples — so the operative question becomes:
//! **how many misconfigured agents does it take to corrupt the pooled
//! aggregate?** This study runs an 8-node memcached fleet at fixed total
//! load and sweeps the number of LP (untuned, deep C-states) nodes from
//! 0 to 8, reporting the aggregate p99 the experimenter would naively
//! publish next to the per-node breakdown that reveals the culprits.
//!
//! Expected shape: good nodes' own p99 stays near the all-HP baseline
//! (the server is far from saturation), while the *pooled* p99 degrades
//! sharply once the bad minority's share of samples reaches the tail
//! percentile — with 1/8 of traffic skewed, p99 already moves; the
//! aggregate avg degrades roughly linearly in the bad-node count.

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{ClientNode, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const FLEET: usize = 8;
const TOTAL_QPS: f64 = 200_000.0;
const BAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

fn fleet_with_bad(bad: usize) -> Vec<ClientNode> {
    let gen = GeneratorSpec::mutilate().with_connections(160 / FLEET as u32);
    let link = LinkConfig::cloudlab_lan();
    let per_node = TOTAL_QPS / FLEET as f64;
    (0..FLEET)
        .map(|i| {
            if i < bad {
                ClientNode::new(format!("bad{i}"), MachineConfig::low_power(), gen, link, per_node)
            } else {
                ClientNode::new(format!("good{i}"), MachineConfig::high_performance(), gen, link, per_node)
            }
        })
        .collect()
}

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(400);
    banner("Extension: mixed fleet — how many bad clients corrupt the aggregate?", runs, duration);
    println!(
        "{FLEET}-node memcached fleet, {:.0}K QPS total; LP nodes are the paper's untuned client.\n",
        TOTAL_QPS / 1000.0
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let fleets: Vec<Vec<ClientNode>> = BAD_COUNTS.iter().map(|&b| fleet_with_bad(b)).collect();
    let topos: Vec<TopologySpec<'_>> = fleets
        .iter()
        .map(|nodes| TopologySpec {
            shards: None,
            service: &service,
            server: &server,
            nodes,
            duration,
            warmup,
            cohorts: &[],
        })
        .collect();
    let per_cell = ctx.run_fleet_cells(&topos, runs, env_seed());

    let mut table = MarkdownTable::new(&[
        "bad nodes",
        "agg avg (us)",
        "agg p99 (us)",
        "good-node p99 (us)",
        "bad-node p99 (us)",
        "agg p99 vs clean",
        "late sends %",
    ]);
    let mut csv = Csv::new(&[
        "bad_nodes",
        "agg_avg_us",
        "agg_p99_us",
        "good_p99_us",
        "bad_p99_us",
        "p99_slowdown",
        "late_pct",
    ]);

    let mut clean_p99 = f64::NAN;
    let mut corruption_threshold: Option<usize> = None;
    for (ci, &bad) in BAD_COUNTS.iter().enumerate() {
        let samples = &per_cell[ci];
        let aggregate: Vec<_> = samples.iter().map(|f| f.aggregate.clone()).collect();
        let summary = Summary::from_runs(&aggregate);
        let agg_p99 = summary.p99_median_us();
        if bad == 0 {
            clean_p99 = agg_p99;
        }
        let slowdown = agg_p99 / clean_p99;
        if corruption_threshold.is_none() && bad > 0 && slowdown > 1.10 {
            corruption_threshold = Some(bad);
        }
        // Median p99 across all (node, run) results of a class — the
        // *typical* node of that class, not its worst case. `None` when
        // the fleet has no node of the class.
        let class_p99 = |prefix: &str| -> Option<f64> {
            let per_run: Vec<_> = samples
                .iter()
                .flat_map(|f| {
                    f.nodes.iter().filter(|n| n.label.starts_with(prefix)).map(|n| n.result.clone())
                })
                .collect();
            if per_run.is_empty() {
                None
            } else {
                Some(Summary::from_runs(&per_run).p99_median_us())
            }
        };
        let good_p99 = class_p99("good");
        let bad_p99 = class_p99("bad");
        let late: f64 = aggregate.iter().map(|r| r.late_send_fraction).sum::<f64>() / aggregate.len() as f64;

        table.row(&[
            format!("{bad}/{FLEET}"),
            format!("{:.1}", summary.avg_median_us()),
            format!("{agg_p99:.1}"),
            good_p99.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            bad_p99.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            format!("{slowdown:.2}x"),
            format!("{:.1}", late * 100.0),
        ]);
        // Absent classes emit empty CSV fields, not "NaN".
        csv.row(&[
            format!("{bad}"),
            format!("{:.3}", summary.avg_median_us()),
            format!("{agg_p99:.3}"),
            good_p99.map_or_else(String::new, |v| format!("{v:.3}")),
            bad_p99.map_or_else(String::new, |v| format!("{v:.3}")),
            format!("{slowdown:.4}"),
            format!("{:.3}", late * 100.0),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_mixed_fleet.csv", &csv);

    match corruption_threshold {
        Some(bad) => println!(
            "\nFleet finding: {bad} of {FLEET} misconfigured clients already inflate the pooled p99 by >10% \
             — client-side skew does not average out, it pollutes the tail."
        ),
        None => println!(
            "\nFleet finding: even {FLEET}/{FLEET} misconfigured clients stayed within 10% of the clean p99 \
             (unexpected — check scale parameters)."
        ),
    }
}
