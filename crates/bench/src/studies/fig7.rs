//! Regenerates **Figure 7**: the synthetic-service sensitivity sweep —
//! how the LP/HP measurement gap shrinks as service latency grows.
//!
//! Panels: (a)/(b) LP/HP ratios vs added delay per QPS, (c)–(f) absolute
//! avg/p99 at 5K and 20K QPS.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::scenarios::{synthetic_study, SYNTHETIC_DELAYS_US, SYNTHETIC_QPS};
use tpv_sim::SimDuration;

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    // §V-B: "the results presented in this section are the average of 20 runs".
    let runs = env_runs(20);
    let duration = env_duration(500);
    banner("Figure 7: synthetic-service sensitivity (delay 0-400us x 5K-20K QPS)", runs, duration);

    let mut table = MarkdownTable::new(&[
        "Delay (us)",
        "QPS",
        "LP avg",
        "HP avg",
        "LP/HP avg",
        "LP p99",
        "HP p99",
        "LP/HP p99",
    ]);
    let mut csv = Csv::new(&[
        "delay_us",
        "qps",
        "lp_avg_us",
        "hp_avg_us",
        "ratio_avg",
        "lp_p99_us",
        "hp_p99_us",
        "ratio_p99",
    ]);

    let mut ratio_at_zero_20k = 0.0;
    let mut ratio_at_400_20k = 0.0;
    for &delay_us in &SYNTHETIC_DELAYS_US {
        let exp = synthetic_study(
            SimDuration::from_us(delay_us),
            &SYNTHETIC_QPS,
            runs,
            duration,
            env_seed() + delay_us,
        );
        let results = exp.run_with(&ctx.engine);
        for &q in &SYNTHETIC_QPS {
            let lp = results.cell("LP", "SMToff", q).unwrap().summary();
            let hp = results.cell("HP", "SMToff", q).unwrap().summary();
            let r_avg = lp.avg_median_us() / hp.avg_median_us();
            let r_p99 = lp.p99_median_us() / hp.p99_median_us();
            if q == 20_000.0 && delay_us == 0 {
                ratio_at_zero_20k = r_avg;
            }
            if q == 20_000.0 && delay_us == 400 {
                ratio_at_400_20k = r_avg;
            }
            table.row(&[
                format!("{delay_us}"),
                format!("{}K", q as u64 / 1000),
                format!("{:.1}", lp.avg_median_us()),
                format!("{:.1}", hp.avg_median_us()),
                format!("{r_avg:.2}"),
                format!("{:.1}", lp.p99_median_us()),
                format!("{:.1}", hp.p99_median_us()),
                format!("{r_p99:.2}"),
            ]);
            csv.row(&[
                format!("{delay_us}"),
                format!("{q}"),
                format!("{:.2}", lp.avg_median_us()),
                format!("{:.2}", hp.avg_median_us()),
                format!("{r_avg:.4}"),
                format!("{:.2}", lp.p99_median_us()),
                format!("{:.2}", hp.p99_median_us()),
                format!("{r_p99:.4}"),
            ]);
        }
    }
    println!("{}", table.render());
    crate::write_csv("fig7_synthetic.csv", &csv);

    println!(
        "\nFinding 3 (sensitivity): at 20K QPS the LP/HP average ratio falls from \
         {ratio_at_zero_20k:.2}x at 0us added delay to {ratio_at_400_20k:.2}x at 400us \
         (paper: 2.8x -> 1.02x)."
    );
    if ratio_at_zero_20k < 1.5 || ratio_at_400_20k > 1.15 {
        eprintln!("[shape warning] synthetic convergence outside the paper's band");
    }
}
