//! Calibration scorecard: runs reduced versions of the paper's key
//! studies and prints every "shape obligation" from DESIGN.md §4 next to
//! the paper's value. Used during development to tune model constants;
//! kept as a fast end-to-end health check.

use crate::{banner, env_duration, env_runs, env_seed};
use tpv_core::analysis::{compare, iteration_estimate};
use tpv_core::scenarios;
use tpv_sim::{SimDuration, SimRng};

use crate::study::StudyCtx;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(150);
    let seed = env_seed();
    banner("calibration scorecard", runs, duration);

    // ---- Memcached SMT study (Fig 2) ----
    let qps = [10_000.0, 100_000.0, 300_000.0, 500_000.0];
    let exp = scenarios::memcached_smt_study(&qps, runs, duration, seed);
    let res = exp.run_with(&ctx.engine);
    println!("-- memcached SMT (fig2) --");
    println!("qps | LP/HP avg (want 1.8-2.5x) | LP/HP p99 (want 1.33-3x) | smtoff/on p99 LP | HP (want ~1.03 vs ~1.13 at high qps) | LP avg us | HP avg us");
    for &q in &qps {
        let lp_off = res.cell("LP", "SMToff", q).unwrap().summary();
        let hp_off = res.cell("HP", "SMToff", q).unwrap().summary();
        let lp_on = res.cell("LP", "SMTon", q).unwrap().summary();
        let hp_on = res.cell("HP", "SMTon", q).unwrap().summary();
        let gap_avg = lp_off.avg_median_us() / hp_off.avg_median_us();
        let gap_p99 = lp_off.p99_median_us() / hp_off.p99_median_us();
        let smt_lp = compare(&lp_off, &lp_on).speedup_p99;
        let smt_hp = compare(&hp_off, &hp_on).speedup_p99;
        println!(
            "{q:>7} | {gap_avg:.2}x | {gap_p99:.2}x | {:.3} | {:.3} | {:.1} | {:.1}",
            smt_lp,
            smt_hp,
            lp_off.avg_median_us(),
            hp_off.avg_median_us()
        );
    }

    // ---- Memcached C1E study (Fig 3) ----
    let exp = scenarios::memcached_c1e_study(&qps, runs, duration, seed + 1);
    let res = exp.run_with(&ctx.engine);
    println!("\n-- memcached C1E (fig3) --");
    println!("qps | C1E slowdown avg LP | HP (HP up to 1.19 at 10K, ~1.0 high) | verdict avg LP | HP (want LP slower@high, HP same)");
    for &q in &qps {
        let lp_off = res.cell("LP", "SMToff", q).unwrap().summary();
        let hp_off = res.cell("HP", "SMToff", q).unwrap().summary();
        let lp_on = res.cell("LP", "C1Eon", q).unwrap().summary();
        let hp_on = res.cell("HP", "C1Eon", q).unwrap().summary();
        let slow_lp = compare(&lp_on, &lp_off).speedup_avg; // C1E_ON/C1E_OFF
        let slow_hp = compare(&hp_on, &hp_off).speedup_avg;
        let v_lp = compare(&lp_off, &lp_on).verdict_avg;
        let v_hp = compare(&hp_off, &hp_on).verdict_avg;
        println!("{q:>7} | {slow_lp:.3} | {slow_hp:.3} | {v_lp} | {v_hp}");
    }

    // ---- Per-run variability / Table IV shape ----
    println!("\n-- run-to-run cv & iterations (table4-ish, from fig2 baseline cells) --");
    let exp = scenarios::memcached_smt_study(&qps, runs.max(20), duration, seed + 2);
    let res = exp.run_with(&ctx.engine);
    let mut rng = SimRng::seed_from_u64(99);
    println!("cell | cv_avg % (want LP@10K ~8.7, HP@10K <0.5, HP@400-500K ~5, LP@500K ~1-2) | parametric | confirm | shapiro");
    for key in ["LP-SMToff", "HP-SMToff", "LP-SMTon", "HP-SMTon"] {
        for &q in &qps {
            let (c, s) = key.split_once('-').unwrap();
            let cell = res.cell(c, s, q).unwrap().summary();
            let cv = cell.avg_std_dev_us() / cell.avg_mean_us() * 100.0;
            let est = iteration_estimate(&cell, &mut rng);
            println!(
                "{key:>10} @{q:>7} | {cv:5.2}% | {:>4} | {:>4} | {}",
                est.parametric,
                est.confirm.to_string(),
                match est.shapiro_pass {
                    Some(true) => "pass",
                    Some(false) => "fail",
                    None => "n/a",
                }
            );
        }
    }

    // ---- Synthetic sensitivity (Fig 7) ----
    println!("\n-- synthetic (fig7): LP/HP avg ratio at 20K qps (want 2.8x @0us -> ~1.02x @400us) --");
    for delay_us in [0u64, 100, 400] {
        let exp = scenarios::synthetic_study(
            SimDuration::from_us(delay_us),
            &[5_000.0, 20_000.0],
            runs.min(12),
            duration,
            seed + 3,
        );
        let res = exp.run_with(&ctx.engine);
        for &q in &[5_000.0, 20_000.0] {
            let lp = res.cell("LP", "SMToff", q).unwrap().summary();
            let hp = res.cell("HP", "SMToff", q).unwrap().summary();
            println!(
                "delay {delay_us:>4}us @{q:>6}: LP/HP avg {:.2}x  p99 {:.2}x (LP {:.0}us HP {:.0}us)",
                lp.avg_median_us() / hp.avg_median_us(),
                lp.p99_median_us() / hp.p99_median_us(),
                lp.avg_median_us(),
                hp.avg_median_us()
            );
        }
    }

    // ---- HDSearch + SocialNet gaps (Fig 4/6) ----
    println!("\n-- hdsearch (fig4): LP/HP avg gap want 1.07-1.17, same speedup trends --");
    let exp = scenarios::hdsearch_smt_study(&[500.0, 2500.0], runs.min(10), env_duration(400), seed + 4);
    let res = exp.run_with(&ctx.engine);
    for &q in &[500.0, 2500.0] {
        let lp = res.cell("LP", "SMToff", q).unwrap().summary();
        let hp = res.cell("HP", "SMToff", q).unwrap().summary();
        println!(
            "@{q:>6}: LP/HP avg {:.3}x p99 {:.3}x (LP {:.0}us)",
            lp.avg_median_us() / hp.avg_median_us(),
            lp.p99_median_us() / hp.p99_median_us(),
            lp.avg_median_us()
        );
    }

    println!("\n-- socialnet (fig6): LP/HP avg want ~1.05, p99 want ~1.00 --");
    let exp = scenarios::socialnet_study(&[100.0, 600.0], runs.min(10), env_duration(1000), seed + 5);
    let res = exp.run_with(&ctx.engine);
    for &q in &[100.0, 600.0] {
        let lp = res.cell("LP", "SMToff", q).unwrap().summary();
        let hp = res.cell("HP", "SMToff", q).unwrap().summary();
        println!(
            "@{q:>6}: LP/HP avg {:.3}x p99 {:.3}x (LP avg {:.2}ms p99 {:.2}ms)",
            lp.avg_median_us() / hp.avg_median_us(),
            lp.p99_median_us() / hp.p99_median_us(),
            lp.avg_median_us() / 1000.0,
            lp.p99_median_us() / 1000.0
        );
    }
}
