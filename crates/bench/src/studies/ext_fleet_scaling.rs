//! **Extension experiment** (beyond the paper's figures): spreading one
//! offered load over 1→16 client nodes.
//!
//! The paper's mutilate deployment already uses 4 agent machines but the
//! testbed models them as one client. This study holds the total offered
//! load and connection count fixed while splitting them across 1, 2, 4,
//! 8 and 16 well-tuned (HP) nodes, answering two methodological
//! questions: (a) does agent count itself perturb the measurement (it
//! should not, up to per-node connection granularity), and (b) how much
//! per-node sample spread should an experimenter expect from a healthy
//! homogeneous fleet — the baseline against which `ext_mixed_fleet`'s
//! skew is judged.

use tpv_core::analysis::Summary;
use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::topology::{uniform_fleet, ClientNode, TopologySpec};
use tpv_hw::MachineConfig;
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;

use crate::study::StudyCtx;
use crate::{banner, env_duration, env_runs, env_seed};

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const TOTAL_QPS: f64 = 200_000.0;

/// Renders this artefact through the context engine.
pub(crate) fn run(ctx: &StudyCtx) {
    let runs = env_runs(15);
    let duration = env_duration(400);
    banner("Extension: fleet scaling — one load, 1..16 client nodes", runs, duration);
    println!(
        "memcached, {:.0}K QPS total across HP nodes; 160 connections split evenly.\n",
        TOTAL_QPS / 1000.0
    );

    let warmup = duration / 10;
    let service = tpv_core::experiment::Benchmark::memcached().service;
    let server = MachineConfig::server_baseline();
    let fleets: Vec<Vec<ClientNode>> = NODE_COUNTS
        .iter()
        .map(|&n| {
            uniform_fleet(
                "agent",
                MachineConfig::high_performance(),
                GeneratorSpec::mutilate(),
                LinkConfig::cloudlab_lan(),
                TOTAL_QPS,
                n,
            )
        })
        .collect();
    let topos: Vec<TopologySpec<'_>> = fleets
        .iter()
        .map(|nodes| TopologySpec {
            shards: None,
            service: &service,
            server: &server,
            nodes,
            duration,
            warmup,
            cohorts: &[],
        })
        .collect();
    let per_cell = ctx.run_fleet_cells(&topos, runs, env_seed());

    let mut table = MarkdownTable::new(&[
        "nodes",
        "conns/node",
        "agg avg (us)",
        "agg p99 (us)",
        "achieved/target",
        "node p99 spread (worst/best)",
    ]);
    let mut csv = Csv::new(&[
        "nodes",
        "conns_per_node",
        "agg_avg_us",
        "agg_p99_us",
        "achieved_over_target",
        "node_p99_spread",
    ]);

    let mut avg_range = (f64::INFINITY, 0.0f64);
    for (ci, &n) in NODE_COUNTS.iter().enumerate() {
        let samples = &per_cell[ci];
        let aggregate: Vec<_> = samples.iter().map(|f| f.aggregate.clone()).collect();
        let summary = Summary::from_runs(&aggregate);
        let achieved: f64 =
            aggregate.iter().map(|r| r.achieved_qps / r.target_qps).sum::<f64>() / aggregate.len() as f64;
        // Median over runs of the within-run worst/best node-p99 ratio.
        let mut spreads: Vec<f64> = samples
            .iter()
            .map(|f| f.worst_node_p99().as_us() / f.best_node_p99().as_us().max(1e-9))
            .collect();
        spreads.sort_by(f64::total_cmp);
        let spread = spreads[spreads.len() / 2];
        let avg = summary.avg_median_us();
        avg_range = (avg_range.0.min(avg), avg_range.1.max(avg));

        table.row(&[
            format!("{n}"),
            format!("{}", fleets[ci][0].generator.connections),
            format!("{avg:.1}"),
            format!("{:.1}", summary.p99_median_us()),
            format!("{achieved:.3}"),
            format!("{spread:.2}x"),
        ]);
        csv.row(&[
            format!("{n}"),
            format!("{}", fleets[ci][0].generator.connections),
            format!("{avg:.3}"),
            format!("{:.3}", summary.p99_median_us()),
            format!("{achieved:.4}"),
            format!("{spread:.4}"),
        ]);
    }
    println!("{}", table.render());
    crate::write_csv("ext_fleet_scaling.csv", &csv);

    let drift = avg_range.1 / avg_range.0;
    println!(
        "\nFleet finding: splitting one load over 1..16 tuned nodes moves the median average latency by \
         {:.1}% ({}) — agent count is {} a hidden variable for a well-tuned fleet.",
        (drift - 1.0) * 100.0,
        if drift < 1.10 { "within run-to-run noise" } else { "beyond run-to-run noise" },
        if drift < 1.10 { "not" } else { "itself" },
    );
}
