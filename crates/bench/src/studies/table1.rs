//! **Table I**: hardware characterization in previous work.

use tpv_core::report::{Csv, MarkdownTable};
use tpv_core::survey;

use crate::study::StudyCtx;

/// Renders Table I (static survey data; the engine is unused).
pub(crate) fn run(_ctx: &StudyCtx) {
    println!("== Table I: Hardware characterization in previous work ==\n");
    let mut table = MarkdownTable::new(&["Characterization", "Publications"]);
    let counts = survey::table_i_counts();
    for (c, n) in &counts {
        table.row(&[c.to_string(), n.to_string()]);
    }
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    table.row(&["Total".into(), total.to_string()]);
    println!("{}", table.render());
    println!(
        "{:.0}% of surveyed papers specify the client-side hardware configuration.",
        survey::client_specified_fraction() * 100.0
    );

    let mut csv = Csv::new(&["characterization", "publications"]);
    for (c, n) in &counts {
        csv.row(&[c.to_string(), n.to_string()]);
    }
    crate::write_csv("table1_survey.csv", &csv);

    assert_eq!(total, 20, "survey must cover 20 publications");
}
