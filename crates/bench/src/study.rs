//! The declarative study registry: every paper artefact and extension
//! experiment as a named, in-process runnable.
//!
//! A [`Study`] bundles an identifier (matching the historical binary
//! name), a human title and a renderer function. The per-artefact
//! binaries are thin wrappers over [`run_by_name`], and the
//! `all_experiments` driver iterates [`registry`] **in one process**, so
//! every study routes through a single [`Engine`] whose [`RunCache`]
//! deduplicates the baseline cells shared across figures (seeds are
//! content-addressed — see `tpv_core::engine`).

use std::sync::Arc;

use tpv_core::control::{ControlResult, ControlSpec, Controller, MitigationPolicy};
use tpv_core::engine::{fingerprint_control, fingerprint_topology, Engine, JobPlan, RunCache};
use tpv_core::runtime::PhasedFleetResult;
use tpv_core::topology::{CohortedFleetResult, FleetResult, ShardedFleetResult, TopologySpec};

use crate::studies;

/// What a study regenerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyKind {
    /// A table of the paper (Tables I–IV).
    Table,
    /// A figure of the paper (Figures 2–9).
    Figure,
    /// An experiment beyond the paper's artefacts.
    Extension,
    /// A development diagnostic (calibration scorecards, probes).
    Diagnostic,
}

/// Execution context handed to every study renderer.
pub struct StudyCtx {
    /// The engine every experiment routes through. Sharing one context
    /// across studies shares its run cache.
    pub engine: Engine,
}

impl StudyCtx {
    /// A parallel engine with a fresh run cache.
    pub fn new() -> Self {
        StudyCtx { engine: Engine::new().with_cache(RunCache::new()) }
    }

    /// The engine's cache (always present for contexts built here).
    pub fn cache(&self) -> Option<&Arc<RunCache>> {
        self.engine.cache()
    }

    /// Executes `runs` seeded fleet runs of every topology cell through
    /// the context engine and regroups the results per cell — the fleet
    /// counterpart of `Experiment::run_with`, shared by the topology
    /// studies so the fingerprint → plan → execute → regroup convention
    /// lives in one place.
    pub fn run_fleet_cells(
        &self,
        topos: &[TopologySpec<'_>],
        runs: usize,
        seed: u64,
    ) -> Vec<Vec<FleetResult>> {
        let fingerprints: Vec<u64> = topos.iter().map(fingerprint_topology).collect();
        let plan = JobPlan::new(seed, &fingerprints, runs);
        let results = self.engine.execute_topology(&plan, |cell| topos[cell]);
        let mut per_cell: Vec<Vec<FleetResult>> = vec![Vec::with_capacity(runs); topos.len()];
        for (cell, _, fleet) in results {
            per_cell[cell].push(fleet);
        }
        per_cell
    }

    /// The sharded counterpart of [`StudyCtx::run_fleet_cells`]: every
    /// topology cell executes as a
    /// [`tpv_core::runtime::run_topology_sharded`] job, so each run
    /// carries the per-shard breakdown next to its fleet result. The
    /// engine splits its worker budget between job-level and intra-run
    /// (shard-level) parallelism; results are bit-identical either way.
    pub fn run_sharded_cells(
        &self,
        topos: &[TopologySpec<'_>],
        runs: usize,
        seed: u64,
    ) -> Vec<Vec<ShardedFleetResult>> {
        let fingerprints: Vec<u64> = topos.iter().map(fingerprint_topology).collect();
        let plan = JobPlan::new(seed, &fingerprints, runs);
        let results = self.engine.execute_sharded(&plan, |cell| topos[cell]);
        let mut per_cell: Vec<Vec<ShardedFleetResult>> = vec![Vec::with_capacity(runs); topos.len()];
        for (cell, _, sharded) in results {
            per_cell[cell].push(sharded);
        }
        per_cell
    }

    /// The phased counterpart of [`StudyCtx::run_fleet_cells`]: every
    /// topology cell executes as a
    /// [`tpv_core::runtime::run_phased_sharded`] job, so each run carries
    /// pooled per-phase statistics and the per-shard breakdown next to
    /// its fleet result — what the time-varying studies
    /// (`ext_diurnal_fleet`, `ext_turbo_decay`, `ext_phased_shards`)
    /// render. Multi-shard tiers run on the work-stealing pool with
    /// canonical-order per-phase merges, so results are bit-identical at
    /// any worker split.
    ///
    /// # Panics
    ///
    /// Panics with the cell's [`tpv_core::topology::TopologyError`] if a
    /// topology fails validation — `all_experiments` isolates study
    /// panics, so a misconfigured study reports its typed error without
    /// aborting the rest of the suite.
    pub fn run_phased_cells(
        &self,
        topos: &[TopologySpec<'_>],
        runs: usize,
        seed: u64,
    ) -> Vec<Vec<PhasedFleetResult>> {
        let fingerprints: Vec<u64> = topos.iter().map(fingerprint_topology).collect();
        let plan = JobPlan::new(seed, &fingerprints, runs);
        let results = self.engine.execute_phased(&plan, |cell| topos[cell]).unwrap_or_else(|e| panic!("{e}"));
        let mut per_cell: Vec<Vec<PhasedFleetResult>> = vec![Vec::with_capacity(runs); topos.len()];
        for (cell, _, phased) in results {
            per_cell[cell].push(phased);
        }
        per_cell
    }

    /// The cohorted counterpart of [`StudyCtx::run_fleet_cells`]: every
    /// topology cell executes as a [`tpv_core::runtime::run_cohorted`]
    /// job, carrying per-cohort rollups (and any per-shard breakdown)
    /// next to its fleet result — what the population-scale study
    /// (`ext_million_fleet`) renders. Worker budgeting follows
    /// [`tpv_core::engine::Engine::execute_sharded`]: leftover workers
    /// parallelize the shards inside each run.
    pub fn run_cohorted_cells(
        &self,
        topos: &[TopologySpec<'_>],
        runs: usize,
        seed: u64,
    ) -> Vec<Vec<CohortedFleetResult>> {
        let fingerprints: Vec<u64> = topos.iter().map(fingerprint_topology).collect();
        let plan = JobPlan::new(seed, &fingerprints, runs);
        let results = self
            .engine
            .execute_jobs(&plan, |job| tpv_core::runtime::run_cohorted(&topos[job.cell], job.seed, 1));
        let mut per_cell: Vec<Vec<CohortedFleetResult>> = vec![Vec::with_capacity(runs); topos.len()];
        for (cell, _, cohorted) in results {
            per_cell[cell].push(cohorted);
        }
        per_cell
    }

    /// The closed-loop counterpart of [`StudyCtx::run_fleet_cells`]:
    /// every cell is a `(spec, policy)` pair executed through
    /// [`tpv_core::control::Controller`], seeded per run off the cell's
    /// [`fingerprint_control`] content address — so a policy cell's seeds
    /// survive reordering the policy sweep, exactly like topology cells.
    /// What the mitigation study (`ext_mitigation`) renders.
    pub fn run_control_cells(
        &self,
        cells: &[(&ControlSpec, &(dyn MitigationPolicy + Sync))],
        runs: usize,
        seed: u64,
    ) -> Vec<Vec<ControlResult>> {
        let fingerprints: Vec<u64> =
            cells.iter().map(|(spec, policy)| fingerprint_control(spec, policy.name())).collect();
        let plan = JobPlan::new(seed, &fingerprints, runs);
        let results = self.engine.execute_jobs(&plan, |job| {
            let (spec, policy) = cells[job.cell];
            Controller::new(spec, policy).run(job.seed, 1)
        });
        let mut per_cell: Vec<Vec<ControlResult>> = vec![Vec::with_capacity(runs); cells.len()];
        for (cell, _, result) in results {
            per_cell[cell].push(result);
        }
        per_cell
    }
}

impl Default for StudyCtx {
    fn default() -> Self {
        StudyCtx::new()
    }
}

/// One registered artefact: name + kind + renderer.
pub struct Study {
    /// Stable identifier; matches the wrapper binary's name.
    pub name: &'static str,
    /// One-line description printed by drivers.
    pub title: &'static str,
    /// Artefact classification.
    pub kind: StudyKind,
    /// Builds, executes (through `ctx.engine`) and prints the artefact.
    pub run: fn(&StudyCtx),
}

/// Every study, in the paper's presentation order (extensions and
/// diagnostics last).
pub fn registry() -> Vec<Study> {
    vec![
        Study {
            name: "table1_survey",
            title: "Table I: hardware characterization in previous work",
            kind: StudyKind::Table,
            run: studies::table1::run,
        },
        Study {
            name: "table2_configs",
            title: "Table II: client- and server-side hardware configurations",
            kind: StudyKind::Table,
            run: studies::table2::run,
        },
        Study {
            name: "table3_scenarios",
            title: "Table III: scenarios tested in Section V",
            kind: StudyKind::Table,
            run: studies::table3::run,
        },
        Study {
            name: "fig2_memcached_smt",
            title: "Figure 2: SMT impact on Memcached with LP/HP clients",
            kind: StudyKind::Figure,
            run: studies::fig2::run,
        },
        Study {
            name: "fig3_memcached_c1e",
            title: "Figure 3: C1E impact on Memcached with LP/HP clients",
            kind: StudyKind::Figure,
            run: studies::fig3::run,
        },
        Study {
            name: "fig4_hdsearch",
            title: "Figure 4: SMT and C1E impact on HDSearch",
            kind: StudyKind::Figure,
            run: studies::fig4::run,
        },
        Study {
            name: "fig5_stddev",
            title: "Figure 5: stddev of average response time",
            kind: StudyKind::Figure,
            run: studies::fig5::run,
        },
        Study {
            name: "fig6_socialnet",
            title: "Figure 6: Social Network read-user-timeline, LP vs HP",
            kind: StudyKind::Figure,
            run: studies::fig6::run,
        },
        Study {
            name: "fig7_synthetic",
            title: "Figure 7: synthetic-service sensitivity sweep",
            kind: StudyKind::Figure,
            run: studies::fig7::run,
        },
        Study {
            name: "fig8_shapiro",
            title: "Figure 8: Shapiro-Wilk p-values across configurations",
            kind: StudyKind::Figure,
            run: studies::fig8::run,
        },
        Study {
            name: "fig9_histogram",
            title: "Figure 9: frequency chart for HP-SMToff @ 400K QPS",
            kind: StudyKind::Figure,
            run: studies::fig9::run,
        },
        Study {
            name: "table4_iterations",
            title: "Table IV: iterations to gain statistical confidence",
            kind: StudyKind::Table,
            run: studies::table4::run,
        },
        Study {
            name: "ext_closed_loop",
            title: "Extension: closed-loop generator taxonomy cell",
            kind: StudyKind::Extension,
            run: studies::ext_closed_loop::run,
        },
        Study {
            name: "ext_space_exploration",
            title: "Extension: Section VI client-grid space exploration",
            kind: StudyKind::Extension,
            run: studies::ext_space_exploration::run,
        },
        Study {
            name: "ext_mixed_fleet",
            title: "Extension: mixed fleet — misconfigured-client minority vs aggregate p99",
            kind: StudyKind::Extension,
            run: studies::ext_mixed_fleet::run,
        },
        Study {
            name: "ext_fleet_scaling",
            title: "Extension: one offered load spread over 1..16 client nodes",
            kind: StudyKind::Extension,
            run: studies::ext_fleet_scaling::run,
        },
        Study {
            name: "ext_diurnal_fleet",
            title: "Extension: fleet under stepped diurnal load, per-phase regimes",
            kind: StudyKind::Extension,
            run: studies::ext_diurnal_fleet::run,
        },
        Study {
            name: "ext_turbo_decay",
            title: "Extension: turbo/power budget exhausts mid-run on a node subset",
            kind: StudyKind::Extension,
            run: studies::ext_turbo_decay::run,
        },
        Study {
            name: "ext_sharded_fleet",
            title: "Extension: sharded server tier — per-shard p99 under uniform vs hot-shard routing",
            kind: StudyKind::Extension,
            run: studies::ext_sharded_fleet::run,
        },
        Study {
            name: "ext_phased_shards",
            title: "Extension: phased × sharded — diurnal swing + mid-run decay over an 8-shard tier",
            kind: StudyKind::Extension,
            run: studies::ext_phased_shards::run,
        },
        Study {
            name: "ext_million_fleet",
            title:
                "Extension: one million cohort-compressed clients — LP-class p99 spread at population scale",
            kind: StudyKind::Extension,
            run: studies::ext_million_fleet::run,
        },
        Study {
            name: "ext_mitigation",
            title: "Extension: closed-loop mitigation — hedging/rerouting/remediation/throttling vs baseline",
            kind: StudyKind::Extension,
            run: studies::ext_mitigation::run,
        },
        Study {
            name: "ext_verdict_methods",
            title: "Extension: CI-overlap vs Mann-Whitney verdicts",
            kind: StudyKind::Extension,
            run: studies::ext_verdict_methods::run,
        },
        Study {
            name: "calibrate",
            title: "Calibration scorecard against DESIGN.md shape obligations",
            kind: StudyKind::Diagnostic,
            run: studies::calibrate::run,
        },
    ]
}

/// The study registered under `name`.
pub fn find(name: &str) -> Option<Study> {
    registry().into_iter().find(|s| s.name == name)
}

/// Runs one study on a fresh cached context — the entry point of the
/// thin per-artefact binaries.
///
/// # Panics
///
/// Panics if `name` is not in the registry.
pub fn run_by_name(name: &str) {
    let study = find(name).unwrap_or_else(|| panic!("unknown study '{name}'"));
    let ctx = StudyCtx::new();
    (study.run)(&ctx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_include_the_dynamic_studies() {
        let studies = registry();
        let mut names: Vec<&str> = studies.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "registry names must be unique");
        // The `all_experiments --list` smoke check greps for these; keep
        // the registry and CI in sync.
        for required in [
            "ext_diurnal_fleet",
            "ext_turbo_decay",
            "ext_mixed_fleet",
            "ext_fleet_scaling",
            "ext_sharded_fleet",
            "ext_million_fleet",
            "ext_phased_shards",
            "ext_mitigation",
        ] {
            assert!(
                find(required).is_some(),
                "study '{required}' must be registered (CI smoke-checks --list for it)"
            );
        }
        assert_eq!(find("ext_diurnal_fleet").unwrap().kind, StudyKind::Extension);
        assert_eq!(find("ext_turbo_decay").unwrap().kind, StudyKind::Extension);
    }
}
