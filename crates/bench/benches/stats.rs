//! Criterion benchmarks of the §III statistics toolkit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpv_sim::dist::{Normal, Sampler};
use tpv_sim::SimRng;
use tpv_stats::ci::{nonparametric_median_ci, parametric_mean_ci};
use tpv_stats::normality::{anderson_darling, shapiro_wilk};
use tpv_stats::repetitions::{confirm, ConfirmConfig};

fn samples(n: usize, seed: u64) -> Vec<f64> {
    let d = Normal::new(100.0, 3.0);
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn bench_shapiro(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapiro_wilk");
    for n in [50usize, 500, 5000] {
        let xs = samples(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| shapiro_wilk(xs).unwrap())
        });
    }
    group.finish();
}

fn bench_anderson_darling(c: &mut Criterion) {
    let xs = samples(500, 2);
    c.bench_function("anderson_darling_500", |b| b.iter(|| anderson_darling(&xs).unwrap()));
}

fn bench_cis(c: &mut Criterion) {
    let xs = samples(50, 3);
    c.bench_function("nonparametric_median_ci_50", |b| {
        b.iter(|| nonparametric_median_ci(&xs, 0.95).unwrap())
    });
    c.bench_function("parametric_mean_ci_50", |b| b.iter(|| parametric_mean_ci(&xs, 0.95).unwrap()));
}

fn bench_confirm(c: &mut Criterion) {
    // The paper's CONFIRM setting: 50 samples, c=200 shuffles.
    let xs = samples(50, 4);
    c.bench_function("confirm_50_samples_200_shuffles", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(5);
            confirm(&xs, &ConfirmConfig::default(), &mut rng)
        })
    });
}

criterion_group!(benches, bench_shapiro, bench_anderson_darling, bench_cis, bench_confirm);
criterion_main!(benches);
