//! Criterion benchmarks of the simulation engine: how fast the testbed
//! simulates, which bounds how much paper-scale regeneration costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpv_core::runtime::{run_once, RunSpec};
use tpv_hw::{CoreResource, MachineConfig};
use tpv_loadgen::GeneratorSpec;
use tpv_net::LinkConfig;
use tpv_services::kv::KvConfig;
use tpv_services::{ServiceConfig, ServiceKind};
use tpv_sim::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ns(rng.next_below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("latency_histogram_record_100k", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        let values: Vec<SimDuration> =
            (0..100_000).map(|_| SimDuration::from_ns(rng.next_below(10_000_000))).collect();
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            h.percentile(99.0)
        })
    });
}

fn bench_core_resource(c: &mut Criterion) {
    c.bench_function("core_resource_acquire_100k", |b| {
        let lp = MachineConfig::low_power();
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let env = lp.draw_environment(&mut rng);
            let mut core = CoreResource::new(&lp, &env);
            let mut t = SimTime::ZERO;
            for _ in 0..100_000 {
                t += SimDuration::from_us(40);
                core.acquire(t, SimDuration::from_us(2), &mut rng);
            }
            core.busy_until()
        })
    });
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("memcached_run_50ms");
    group.sample_size(10);
    for (label, machine) in [("lp", MachineConfig::low_power()), ("hp", MachineConfig::high_performance())] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &machine, |b, client| {
            let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig {
                preload_keys: 10_000,
                ..KvConfig::default()
            }));
            let server = MachineConfig::server_baseline();
            let generator = GeneratorSpec::mutilate();
            let link = LinkConfig::cloudlab_lan();
            let spec = RunSpec {
                service: &service,
                server: &server,
                client,
                generator: &generator,
                link: &link,
                qps: 100_000.0,
                duration: SimDuration::from_ms(50),
                warmup: SimDuration::from_ms(5),
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_once(&spec, seed)
            })
        });
    }
    group.finish();
}

fn bench_fleet_run(c: &mut Criterion) {
    use tpv_core::runtime::run_topology;
    use tpv_core::topology::{uniform_fleet, TopologySpec};

    let mut group = c.benchmark_group("memcached_fleet_50ms");
    group.sample_size(10);
    for nodes in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            let service = ServiceConfig::new(ServiceKind::Memcached(KvConfig {
                preload_keys: 10_000,
                ..KvConfig::default()
            }));
            let server = MachineConfig::server_baseline();
            let fleet = uniform_fleet(
                "agent",
                MachineConfig::high_performance(),
                GeneratorSpec::mutilate(),
                LinkConfig::cloudlab_lan(),
                100_000.0,
                n,
            );
            let spec = TopologySpec {
                shards: None,
                service: &service,
                server: &server,
                nodes: &fleet,
                duration: SimDuration::from_ms(50),
                warmup: SimDuration::from_ms(5),
                cohorts: &[],
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_topology(&spec, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_histogram,
    bench_core_resource,
    bench_full_run,
    bench_fleet_run
);
criterion_main!(benches);
