//! Criterion wrappers that time a *reduced* regeneration of each paper
//! artefact (a couple of runs per cell, short simulated windows). The
//! full-fidelity regeneration lives in the `tpv-bench` binaries
//! (`cargo run --release -p tpv-bench --bin all_experiments`); these
//! benches make the cost of each artefact visible in `cargo bench` output
//! and catch performance regressions in the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use tpv_core::scenarios;
use tpv_sim::SimDuration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_regeneration");
    g.sample_size(10);
    g.bench_function("fig2_memcached_smt_reduced", |b| {
        b.iter(|| {
            scenarios::memcached_smt_study(&[10_000.0, 500_000.0], 2, SimDuration::from_ms(20), 1).run()
        })
    });
    g.bench_function("fig3_memcached_c1e_reduced", |b| {
        b.iter(|| {
            scenarios::memcached_c1e_study(&[10_000.0, 500_000.0], 2, SimDuration::from_ms(20), 2).run()
        })
    });
    g.bench_function("fig4_hdsearch_reduced", |b| {
        b.iter(|| scenarios::hdsearch_smt_study(&[500.0, 2500.0], 2, SimDuration::from_ms(100), 3).run())
    });
    g.bench_function("fig6_socialnet_reduced", |b| {
        b.iter(|| scenarios::socialnet_study(&[100.0, 600.0], 2, SimDuration::from_ms(200), 4).run())
    });
    g.bench_function("fig7_synthetic_reduced", |b| {
        b.iter(|| {
            scenarios::synthetic_study(
                SimDuration::from_us(400),
                &[5_000.0, 20_000.0],
                2,
                SimDuration::from_ms(20),
                5,
            )
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
