//! # tpv-net — the network between client and server machines
//!
//! The paper's testbed is a CloudLab LAN: client and server machines on
//! the same 10 GbE switch. For microsecond-scale services the network leg
//! is a meaningful part of end-to-end latency, so it is modelled
//! explicitly:
//!
//! * [`LinkConfig`]/[`Link`] — one-way delay = wire/switch propagation +
//!   NIC processing + kernel stack traversal, plus exponential jitter and
//!   a per-run offset (switch queue occupancy, cable path, neighbours).
//! * [`Connection`] — per-connection FIFO delivery: TCP never reorders
//!   within a connection, so each direction's deliveries are monotone.
//! * [`StackCosts`] — the CPU costs the stack charges to *cores* (client
//!   send/recv syscall work, server softirq work); these are consumed by
//!   the load generator and service models, which place them on
//!   `tpv_hw::CoreResource`s.
//! * [`Coalescing`] — optional NIC interrupt coalescing (an ablation knob;
//!   the paper's NICs run with adaptive coalescing effectively off for
//!   latency benchmarks).
//!
//! # Example
//!
//! ```
//! use tpv_net::{Link, LinkConfig, Connection};
//! use tpv_sim::{SimRng, SimTime};
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let link = Link::new(&LinkConfig::cloudlab_lan(), &mut rng);
//! let mut conn = Connection::new(0);
//! let sent = SimTime::from_us(100);
//! let arrival = conn.deliver_to_server(sent + link.one_way(&mut rng));
//! assert!(arrival > sent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use tpv_sim::dist::{Exponential, Normal, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

/// Static parameters of a network path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Deterministic one-way component: propagation + switch + NIC +
    /// kernel stack traversal.
    pub base_one_way: SimDuration,
    /// Mean of the exponential jitter added per packet.
    pub jitter_mean: SimDuration,
    /// Standard deviation (µs) of the per-run offset added to every
    /// packet of a run — switch load and neighbour traffic differ between
    /// runs.
    pub run_offset_sigma_us: f64,
    /// NIC interrupt coalescing.
    pub coalescing: Coalescing,
}

impl LinkConfig {
    /// A CloudLab-style 10 GbE LAN: ~11 µs deterministic one-way
    /// (NIC ≈ 2 µs, switch ≈ 1 µs, kernel stack ≈ 8 µs) plus ~2 µs mean
    /// jitter — giving the familiar ~25–30 µs software RTT.
    pub fn cloudlab_lan() -> Self {
        LinkConfig {
            base_one_way: SimDuration::from_us(11),
            jitter_mean: SimDuration::from_us(2),
            run_offset_sigma_us: 0.15,
            coalescing: Coalescing::Off,
        }
    }

    /// A cross-rack path in the same datacenter: an extra switch hop and
    /// longer cables (~18 µs one way), more jitter and a larger per-run
    /// offset. Fleet topologies use this to model load-generator agents
    /// that are *not* all on the server's rack — a client-side
    /// configuration difference the paper's single-client testbed cannot
    /// express.
    pub fn cross_rack() -> Self {
        LinkConfig {
            base_one_way: SimDuration::from_us(18),
            jitter_mean: SimDuration::from_us(4),
            run_offset_sigma_us: 0.6,
            coalescing: Coalescing::Off,
        }
    }

    /// An ideal, jitter-free link (unit tests, ablations).
    pub fn ideal() -> Self {
        LinkConfig {
            base_one_way: SimDuration::from_us(10),
            jitter_mean: SimDuration::ZERO,
            run_offset_sigma_us: 0.0,
            coalescing: Coalescing::Off,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::cloudlab_lan()
    }
}

/// NIC interrupt coalescing setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Coalescing {
    /// Every packet interrupts immediately.
    Off,
    /// Interrupts are batched: delivery timestamps are rounded up to the
    /// next multiple of the holding window.
    Window(SimDuration),
}

/// A live link for one run: the per-run offset has been drawn.
#[derive(Debug, Clone)]
pub struct Link {
    base: SimDuration,
    jitter: Option<Exponential>,
    run_offset: SimDuration,
    coalescing: Coalescing,
}

impl Link {
    /// Instantiates a link for one run, drawing the per-run offset.
    pub fn new(cfg: &LinkConfig, rng: &mut SimRng) -> Self {
        let offset_us = if cfg.run_offset_sigma_us > 0.0 {
            Normal::new(0.0, cfg.run_offset_sigma_us).sample(rng).max(0.0)
        } else {
            0.0
        };
        Link {
            base: cfg.base_one_way,
            jitter: if cfg.jitter_mean.is_zero() {
                None
            } else {
                Some(Exponential::with_mean(cfg.jitter_mean.as_us()))
            },
            run_offset: SimDuration::from_us_f64(offset_us),
            coalescing: cfg.coalescing,
        }
    }

    /// Samples one packet's one-way delay.
    pub fn one_way(&self, rng: &mut SimRng) -> SimDuration {
        let jitter = match &self.jitter {
            Some(j) => j.sample_us(rng),
            None => SimDuration::ZERO,
        };
        self.base + self.run_offset + jitter
    }

    /// Applies interrupt coalescing to a raw NIC arrival instant.
    pub fn coalesce(&self, arrival: SimTime) -> SimTime {
        match self.coalescing {
            Coalescing::Off => arrival,
            Coalescing::Window(w) => {
                if w.is_zero() {
                    arrival
                } else {
                    let w_ns = w.as_ns();
                    let ns = arrival.as_ns();
                    let rem = ns % w_ns;
                    if rem == 0 {
                        arrival
                    } else {
                        SimTime::from_ns(ns - rem + w_ns)
                    }
                }
            }
        }
    }

    /// The per-run offset drawn for this link instance.
    pub fn run_offset(&self) -> SimDuration {
        self.run_offset
    }
}

/// Per-connection FIFO delivery state (TCP ordering per direction).
#[derive(Debug, Clone)]
pub struct Connection {
    id: usize,
    last_to_server: SimTime,
    last_to_client: SimTime,
}

impl Connection {
    /// A new idle connection.
    pub fn new(id: usize) -> Self {
        Connection { id, last_to_server: SimTime::ZERO, last_to_client: SimTime::ZERO }
    }

    /// Connection identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Registers a client→server delivery, enforcing in-order arrival.
    pub fn deliver_to_server(&mut self, raw_arrival: SimTime) -> SimTime {
        let arrival = raw_arrival.max(self.last_to_server);
        self.last_to_server = arrival;
        arrival
    }

    /// Registers a server→client delivery, enforcing in-order arrival.
    pub fn deliver_to_client(&mut self, raw_arrival: SimTime) -> SimTime {
        let arrival = raw_arrival.max(self.last_to_client);
        self.last_to_client = arrival;
        arrival
    }
}

/// CPU costs the network stack charges to cores (placed on
/// `tpv_hw::CoreResource`s by the generator and service models).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackCosts {
    /// Client-side work to build + `write()` a request.
    pub client_send: SimDuration,
    /// Client-side work to `read()` + parse + timestamp a response.
    pub client_recv: SimDuration,
    /// Kernel RX path (IRQ + softirq) before a blocked thread can be
    /// woken; paid between NIC arrival and the in-app timestamp.
    pub kernel_rx: SimDuration,
    /// Server-side softirq work per request (RX + TX combined).
    pub server_softirq: SimDuration,
}

impl StackCosts {
    /// Typical kernel-TCP numbers for small RPC messages.
    pub fn tcp_small_rpc() -> Self {
        StackCosts {
            client_send: SimDuration::from_us(2),
            client_recv: SimDuration::from_us(2),
            kernel_rx: SimDuration::from_us(3),
            server_softirq: SimDuration::from_us(2),
        }
    }
}

impl Default for StackCosts {
    fn default() -> Self {
        StackCosts::tcp_small_rpc()
    }
}

/// Approximate wire size of a request/response, used for size-dependent
/// service costs (large memcached values cost more to serialize).
pub fn wire_size_bytes(payload: usize) -> usize {
    const TCP_IP_ETH_OVERHEAD: usize = 78;
    payload + TCP_IP_ETH_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_includes_base_and_offset() {
        let mut rng = SimRng::seed_from_u64(1);
        let link = Link::new(&LinkConfig::ideal(), &mut rng);
        assert_eq!(link.one_way(&mut rng), SimDuration::from_us(10));
        assert_eq!(link.run_offset(), SimDuration::ZERO);
    }

    #[test]
    fn jitter_is_nonnegative_and_has_right_mean() {
        let mut rng = SimRng::seed_from_u64(2);
        let link = Link::new(&LinkConfig::cloudlab_lan(), &mut rng);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = link.one_way(&mut rng);
            assert!(d >= SimDuration::from_us(11));
            sum += d.as_us();
        }
        let mean = sum / n as f64;
        let expected = 11.0 + 2.0 + link.run_offset().as_us();
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    fn cross_rack_is_strictly_slower_than_the_lan() {
        let lan = LinkConfig::cloudlab_lan();
        let xr = LinkConfig::cross_rack();
        assert!(xr.base_one_way > lan.base_one_way);
        assert!(xr.jitter_mean > lan.jitter_mean);
        assert!(xr.run_offset_sigma_us > lan.run_offset_sigma_us);
        let mut rng = SimRng::seed_from_u64(9);
        let link = Link::new(&xr, &mut rng);
        assert!(link.one_way(&mut rng) >= SimDuration::from_us(18));
    }

    #[test]
    fn run_offset_differs_between_runs() {
        let cfg = LinkConfig::cloudlab_lan();
        let mut rng = SimRng::seed_from_u64(3);
        let offsets: Vec<u64> = (0..20).map(|_| Link::new(&cfg, &mut rng).run_offset().as_ns()).collect();
        let distinct: std::collections::HashSet<_> = offsets.iter().collect();
        assert!(distinct.len() > 5, "offsets not varying: {offsets:?}");
    }

    #[test]
    fn connection_enforces_fifo_per_direction() {
        let mut c = Connection::new(7);
        assert_eq!(c.id(), 7);
        let a1 = c.deliver_to_server(SimTime::from_us(100));
        // A "faster" later packet cannot overtake.
        let a2 = c.deliver_to_server(SimTime::from_us(90));
        assert_eq!(a1, SimTime::from_us(100));
        assert_eq!(a2, SimTime::from_us(100));
        // Directions are independent.
        let b = c.deliver_to_client(SimTime::from_us(50));
        assert_eq!(b, SimTime::from_us(50));
    }

    #[test]
    fn coalescing_rounds_up_to_window() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut cfg = LinkConfig::ideal();
        cfg.coalescing = Coalescing::Window(SimDuration::from_us(10));
        let link = Link::new(&cfg, &mut rng);
        assert_eq!(link.coalesce(SimTime::from_us(12)), SimTime::from_us(20));
        assert_eq!(link.coalesce(SimTime::from_us(20)), SimTime::from_us(20));
        let off = Link::new(&LinkConfig::ideal(), &mut rng);
        assert_eq!(off.coalesce(SimTime::from_us(12)), SimTime::from_us(12));
        let mut zero = LinkConfig::ideal();
        zero.coalescing = Coalescing::Window(SimDuration::ZERO);
        let z = Link::new(&zero, &mut rng);
        assert_eq!(z.coalesce(SimTime::from_us(12)), SimTime::from_us(12));
    }

    #[test]
    fn stack_costs_are_small_relative_to_service() {
        let c = StackCosts::tcp_small_rpc();
        assert!(c.client_send < SimDuration::from_us(10));
        assert!(c.kernel_rx < SimDuration::from_us(10));
        assert_eq!(wire_size_bytes(100), 178);
    }
}
