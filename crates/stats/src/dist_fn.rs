//! Special functions underlying the statistical tests.
//!
//! Implemented locally (no external math crate is in the allowed set):
//!
//! * standard normal PDF/CDF/quantile — CDF via Marsaglia's Taylor series
//!   with an asymptotic tail, quantile via Acklam's rational approximation
//!   polished by one Halley step (≈1e-14 absolute accuracy);
//! * `ln Γ` via the Lanczos approximation;
//! * the regularized incomplete beta function via Lentz's continued
//!   fraction, from which the Student-t CDF and quantile follow.

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_TAU: f64 = 0.398_942_280_401_432_7; // 1/sqrt(2π)
    INV_SQRT_TAU * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Accuracy is ~1e-15 over the practically relevant range; underflows to
/// 0/1 smoothly in the far tails.
pub fn norm_cdf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < -38.0 {
        return 0.0;
    }
    if x > 38.0 {
        return 1.0;
    }
    let ax = x.abs();
    if ax < 7.0 {
        // Marsaglia (2004): Φ(x) = 1/2 + φ(x) · Σ x^(2k+1) / (1·3·5···(2k+1))
        let mut sum = ax;
        let mut term = ax;
        let x2 = ax * ax;
        let mut k = 1.0f64;
        while term.abs() > 1e-18 * sum.abs() {
            term *= x2 / (2.0 * k + 1.0);
            sum += term;
            k += 1.0;
            if k > 500.0 {
                break;
            }
        }
        // Symmetry applied before the subtraction, so the tail keeps full
        // relative precision for negative x.
        if x >= 0.0 {
            0.5 + norm_pdf(ax) * sum
        } else {
            0.5 - norm_pdf(ax) * sum
        }
    } else {
        // Asymptotic expansion of the upper tail Q(x) = φ(x)/x · (1 - 1/x² + 3/x⁴ - …)
        let inv_x2 = 1.0 / (ax * ax);
        let mut s = 1.0;
        let mut term = 1.0;
        for k in 1..=8u32 {
            term *= -((2 * k - 1) as f64) * inv_x2;
            s += term;
        }
        let tail = norm_pdf(ax) / ax * s;
        if x >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }
}

/// Upper-tail probability 1 − Φ(x), accurate in the right tail.
pub fn norm_sf(x: f64) -> f64 {
    norm_cdf(-x)
}

/// Standard normal quantile Φ⁻¹(p).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_quantile requires p in (0,1), got {p}");
    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] =
        [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate CDF.
    let e = norm_cdf(x) - p;
    let u = e * (std::f64::consts::TAU).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b).
///
/// Computed with Lentz's continued fraction; relative accuracy ~1e-14.
///
/// # Panics
///
/// Panics unless `a > 0`, `b > 0` and `0 <= x <= 1`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc needs positive shape parameters, got ({a}, {b})");
    assert!((0.0..=1.0).contains(&x), "beta_inc needs x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let bt = ln_front.exp();
    // Apply the symmetry relation at most once (decided here, no
    // recursion) to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * beta_cf(a, b, x) / a
    } else {
        1.0 - bt * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student-t cumulative distribution function with `df` degrees of freedom.
///
/// # Panics
///
/// Panics unless `df > 0`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf needs positive degrees of freedom, got {df}");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p_tail = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p_tail
    } else {
        p_tail
    }
}

/// Student-t quantile (inverse CDF) with `df` degrees of freedom.
///
/// Uses the normal quantile as an initial guess, followed by Newton
/// iterations on the exact CDF.
///
/// # Panics
///
/// Panics unless `df > 0` and `0 < p < 1`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_quantile needs positive degrees of freedom, got {df}");
    assert!(p > 0.0 && p < 1.0, "t_quantile requires p in (0,1), got {p}");
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // Cornish–Fisher-style expansion around the normal quantile.
    let z = norm_quantile(p);
    let g1 = (z.powi(3) + z) / 4.0;
    let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
    let mut t = z + g1 / df + g2 / (df * df);
    // Newton polish.
    for _ in 0..60 {
        let f = t_cdf(t, df) - p;
        let dens = t_pdf(t, df);
        if dens <= 0.0 {
            break;
        }
        let step = f / dens;
        t -= step;
        if step.abs() < 1e-12 * (1.0 + t.abs()) {
            break;
        }
    }
    t
}

/// Student-t probability density function.
fn t_pdf(t: f64, df: f64) -> f64 {
    let ln_c = ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0) - 0.5 * (df * std::f64::consts::PI).ln();
    (ln_c - (df + 1.0) / 2.0 * (1.0 + t * t / df).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((norm_cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((norm_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((norm_cdf(3.0) - 0.998_650_101_968_369_9).abs() < 1e-12);
        // Deep tail (value from standard tables: Q(8) ≈ 6.22096e-16).
        let q8 = norm_sf(8.0);
        assert!((q8 / 6.220_960_574_271_78e-16 - 1.0).abs() < 1e-6, "Q(8) = {q8}");
        assert_eq!(norm_cdf(-40.0), 0.0);
        assert_eq!(norm_cdf(40.0), 1.0);
    }

    #[test]
    fn norm_quantile_inverts_cdf() {
        for &p in &[1e-10, 1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-9] {
            let x = norm_quantile(p);
            let back = norm_cdf(x);
            assert!((back - p).abs() < 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)), "p={p} x={x} back={back}");
        }
        // The paper's z for 95 %: 1.96.
        assert!((norm_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn norm_quantile_rejects_bad_p() {
        norm_quantile(0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-13);
        assert!((ln_gamma(2.0)).abs() < 1e-13);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(10.3) via recurrence check: lnΓ(x+1) = lnΓ(x) + ln(x).
        assert!((ln_gamma(11.3) - ln_gamma(10.3) - 10.3f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_basic_identities() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x.
        for &x in &[0.1, 0.37, 0.92] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-13);
        }
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let v = beta_inc(2.5, 4.5, 0.3);
        let w = 1.0 - beta_inc(4.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
        // I_x(1,b) = 1 − (1−x)^b.
        let got = beta_inc(1.0, 3.0, 0.2);
        assert!((got - (1.0 - 0.8f64.powi(3))).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_matches_known_values() {
        // t with df → ∞ approaches normal.
        assert!((t_cdf(1.96, 1e7) - norm_cdf(1.96)).abs() < 1e-6);
        // Cauchy (df=1): CDF(t) = 1/2 + atan(t)/π.
        for &t in &[-2.0f64, -0.5, 0.0, 1.0, 5.0] {
            let expect = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((t_cdf(t, 1.0) - expect).abs() < 1e-12, "t={t}");
        }
        // Symmetry.
        assert!((t_cdf(1.3, 7.0) + t_cdf(-1.3, 7.0) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn t_quantile_reference_values() {
        // Classic two-sided 95 % critical values.
        let cases = [
            (0.975, 1.0, 12.706_204_736_432_1),
            (0.975, 4.0, 2.776_445_105_198_54),
            (0.975, 9.0, 2.262_157_162_740_99),
            (0.975, 29.0, 2.045_229_642_132_703),
            (0.995, 9.0, 3.249_835_541_592_14),
        ];
        for (p, df, expect) in cases {
            let got = t_quantile(p, df);
            assert!((got - expect).abs() < 1e-6, "p={p} df={df}: got {got}, expect {expect}");
        }
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &df in &[1.0, 3.0, 10.0, 49.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }
}
