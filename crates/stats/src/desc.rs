//! Descriptive statistics over sample sets, plus Little's law.

pub use tpv_sim::Welford;

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns 0 for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The finite values of `xs`, sorted ascending — the edge-case guard
/// shared by [`median`], [`percentile`] and
/// [`coefficient_of_variation`]: NaN (and ±∞) samples are *dropped*, not
/// propagated, so a single poisoned sample cannot silently turn these
/// three summary statistics into NaN or a panic. (The guard is local to
/// them: [`sorted`] keeps its documented panic-on-NaN contract, and
/// [`mean`]/[`std_dev`] still propagate NaN like every float sum.)
fn finite_sorted(xs: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(f64::total_cmp);
    v
}

/// Coefficient of variation, `std_dev / mean`, over the finite samples.
/// Returns 0 for empty or single-element input and when the mean is 0
/// (a CoV of a degenerate sample set carries no information).
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let v = finite_sorted(xs);
    let m = mean(&v);
    if m == 0.0 {
        0.0
    } else {
        std_dev(&v) / m
    }
}

/// Returns a sorted copy of the samples.
///
/// # Panics
///
/// Panics if any value is NaN (samples must be comparable).
pub fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample set"));
    v
}

/// Median of the finite samples (mean of the two central order
/// statistics for even n). Returns 0 when no finite sample remains —
/// non-finite values are dropped, never propagated.
pub fn median(xs: &[f64]) -> f64 {
    let v = finite_sorted(xs);
    if v.is_empty() {
        return 0.0;
    }
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// The `p`-th percentile (nearest-rank on the sorted finite samples).
/// Returns 0 when no finite sample remains — non-finite values are
/// dropped, never propagated, and an empty sample set is reported as 0
/// rather than a panic so a single starved cell cannot abort a whole
/// report.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` (a caller bug, unlike empty
/// data).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let v = finite_sorted(xs);
    if v.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank.min(v.len()) - 1]
}

/// Sample skewness (adjusted Fisher–Pearson). Returns 0 for n < 3.
///
/// Positive skew — a long right tail — is the signature of the queueing-
/// dominated high-QPS configurations in the paper's Fig. 9.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    let m3 = xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>();
    m3 * nf / ((nf - 1.0) * (nf - 2.0))
}

/// Little's law: mean concurrency `L = λ·W`.
///
/// The paper uses this to bound the synthetic-workload QPS so that the
/// offered concurrency stays below the worker count (§V-B).
pub fn littles_law_concurrency(arrival_rate_per_sec: f64, mean_latency_secs: f64) -> f64 {
    arrival_rate_per_sec * mean_latency_secs
}

/// The largest arrival rate that keeps `L = λ·W` at or below `max_concurrency`.
///
/// # Panics
///
/// Panics unless `mean_latency_secs > 0`.
pub fn littles_law_max_rate(max_concurrency: f64, mean_latency_secs: f64) -> f64 {
    assert!(mean_latency_secs > 0.0, "latency must be positive");
    max_concurrency / mean_latency_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(median(&xs), 4.5);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn empty_and_single_element_are_total() {
        // Degenerate inputs answer with the neutral 0 / identity instead
        // of panicking: a starved cell must not abort a whole report.
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(percentile(&[42.0], 1.0), 42.0);
        assert_eq!(percentile(&[42.0], 100.0), 42.0);
        assert_eq!(median(&[42.0]), 42.0);
        assert_eq!(coefficient_of_variation(&[42.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn nan_samples_are_dropped_not_propagated() {
        let clean = [1.0, 2.0, 3.0, 4.0];
        let poisoned = [1.0, f64::NAN, 2.0, 3.0, f64::INFINITY, 4.0, f64::NEG_INFINITY];
        assert_eq!(median(&poisoned), median(&clean));
        assert_eq!(percentile(&poisoned, 99.0), percentile(&clean, 99.0));
        assert!((coefficient_of_variation(&poisoned) - coefficient_of_variation(&clean)).abs() < 1e-12);
        // All-NaN collapses to the empty case, still without panicking.
        let all_nan = [f64::NAN, f64::NAN];
        assert_eq!(median(&all_nan), 0.0);
        assert_eq!(percentile(&all_nan, 50.0), 0.0);
        assert_eq!(coefficient_of_variation(&all_nan), 0.0);
    }

    #[test]
    fn skewness_signs() {
        let right_skewed = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0, 20.0];
        assert!(skewness(&right_skewed) > 1.0);
        let symmetric = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert!(skewness(&symmetric).abs() < 1e-12);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(skewness(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn littles_law_round_trip() {
        // 10 workers, 500 µs latency ⇒ max 20 000 QPS — the paper's bound
        // for the synthetic workload sweep.
        let max_rate = littles_law_max_rate(10.0, 500e-6);
        assert!((max_rate - 20_000.0).abs() < 1e-9);
        assert!((littles_law_concurrency(max_rate, 500e-6) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cv_is_scale_free() {
        let xs = [10.0, 12.0, 8.0, 11.0, 9.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 7.0).collect();
        assert!((coefficient_of_variation(&xs) - coefficient_of_variation(&scaled)).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }
}
