//! How many repetitions does an experiment need? (§III, Table IV)
//!
//! Two estimators, exactly as the paper compares them:
//!
//! * [`jain_sample_size`] — the parametric closed form (Jain, *The Art of
//!   Computer Systems Performance Analysis*, 1991), Eq. (3) of the paper.
//! * [`confirm`] — the non-parametric CONFIRM resampling procedure
//!   (Maricq et al., OSDI '18), which the paper runs with c = 200 shuffles
//!   and a minimum subset size of 10.

use crate::ci::nonparametric_median_ci;
use crate::desc::{mean, median, std_dev};
use crate::dist_fn::norm_quantile;
use tpv_sim::SimRng;

/// Jain's parametric repetition count — paper Eq. (3):
///
/// ```text
/// n = (100 · z · s / (r · x̄))²
/// ```
///
/// where `z` is the normal critical value for the confidence `level`, `s`
/// the sample standard deviation, `x̄` the sample mean, and `r` the desired
/// half-width as a *percentage* of the mean.
///
/// Returns the rounded-up number of repetitions, minimum 1.
///
/// # Panics
///
/// Panics unless `level ∈ (0,1)`, `r_pct > 0` and `mean != 0`.
///
/// # Example
///
/// ```
/// use tpv_stats::jain_sample_size;
/// // cv = s/x̄ = 8.66 % at 95 %/1 % target ⇒ ~288 iterations — the
/// // LP-SMToff 10K row of the paper's Table IV.
/// let n = jain_sample_size(100.0, 8.66, 1.0, 0.95);
/// assert!((285..=292).contains(&n));
/// ```
pub fn jain_sample_size(mean: f64, std_dev: f64, r_pct: f64, level: f64) -> usize {
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1), got {level}");
    assert!(r_pct > 0.0, "relative error must be positive, got {r_pct}");
    assert!(mean != 0.0, "mean of zero makes relative error undefined");
    let z = norm_quantile(0.5 + level / 2.0);
    let n = (100.0 * z * std_dev / (r_pct * mean)).powi(2);
    (n.ceil() as usize).max(1)
}

/// Convenience: Jain's Eq. (3) evaluated on a sample set.
///
/// # Panics
///
/// Panics if the sample mean is zero or fewer than 2 samples are given.
pub fn jain_sample_size_of(samples: &[f64], r_pct: f64, level: f64) -> usize {
    assert!(samples.len() >= 2, "need at least 2 samples to estimate variance");
    jain_sample_size(mean(samples), std_dev(samples), r_pct, level)
}

/// Outcome of the CONFIRM procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmOutcome {
    /// The error target is met with this many repetitions.
    Converged(usize),
    /// Even the full sample set does not meet the target; more than this
    /// many repetitions are required (rendered as "> n" in Table IV).
    MoreThan(usize),
}

impl ConfirmOutcome {
    /// The repetition count if converged.
    pub fn converged(self) -> Option<usize> {
        match self {
            ConfirmOutcome::Converged(n) => Some(n),
            ConfirmOutcome::MoreThan(_) => None,
        }
    }

    /// A lower bound on the repetitions required (the count itself when
    /// converged).
    pub fn lower_bound(self) -> usize {
        match self {
            ConfirmOutcome::Converged(n) | ConfirmOutcome::MoreThan(n) => n,
        }
    }
}

impl std::fmt::Display for ConfirmOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfirmOutcome::Converged(n) => write!(f, "{n}"),
            ConfirmOutcome::MoreThan(n) => write!(f, ">{n}"),
        }
    }
}

/// Parameters for [`confirm`]; defaults match the original paper
/// (c = 200, s ≥ 10, ≤1 % error at 95 % confidence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfirmConfig {
    /// Number of shuffled subsets evaluated per subset size.
    pub shuffles: usize,
    /// Smallest subset size considered ("smaller subsets cannot estimate
    /// non-parametric CIs reliably").
    pub min_subset: usize,
    /// Target half-width as a percentage of the median.
    pub target_error_pct: f64,
    /// Confidence level of the underlying non-parametric CI.
    pub level: f64,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        ConfirmConfig { shuffles: 200, min_subset: 10, target_error_pct: 1.0, level: 0.95 }
    }
}

/// The CONFIRM repetition estimator (Maricq et al., OSDI '18).
///
/// For each candidate subset size `s` (from `min_subset` to `n`):
/// shuffle the full sample set `c` times, take the first `s` samples each
/// time, compute the non-parametric median CI, then average the lower and
/// upper bounds across shuffles. If the averaged interval's half-width is
/// within `target_error_pct` of the full-set median, `s` repetitions
/// suffice.
///
/// # Panics
///
/// Panics if `samples` is empty or the full-set median is zero.
pub fn confirm(samples: &[f64], cfg: &ConfirmConfig, rng: &mut SimRng) -> ConfirmOutcome {
    assert!(!samples.is_empty(), "CONFIRM needs samples");
    let n = samples.len();
    let med = median(samples);
    assert!(med != 0.0, "zero median makes relative error undefined");

    let mut pool = samples.to_vec();
    let mut s = cfg.min_subset.max(1);
    while s <= n {
        let mut lower_sum = 0.0;
        let mut upper_sum = 0.0;
        let mut valid = 0usize;
        for _ in 0..cfg.shuffles {
            rng.shuffle(&mut pool);
            if let Some(ci) = nonparametric_median_ci(&pool[..s], cfg.level) {
                lower_sum += ci.low;
                upper_sum += ci.high;
                valid += 1;
            }
        }
        if valid == cfg.shuffles {
            let mean_low = lower_sum / valid as f64;
            let mean_high = upper_sum / valid as f64;
            let err_pct = ((mean_high - mean_low) / 2.0) / med.abs() * 100.0;
            if err_pct <= cfg.target_error_pct {
                return ConfirmOutcome::Converged(s);
            }
        }
        s += 1;
    }
    ConfirmOutcome::MoreThan(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::dist::{Normal, Sampler};

    #[test]
    fn jain_matches_hand_computation() {
        // n = (100·1.96·s/(r·x̄))² with s/x̄ = 1 %, r = 1 % ⇒ (1.96·1)² ≈ 3.84 ⇒ 4.
        assert_eq!(jain_sample_size(100.0, 1.0, 1.0, 0.95), 4);
        // cv = 5.7 % ⇒ ~125 (the HP-SMToff 400K regime of Table IV).
        let n = jain_sample_size(100.0, 5.7, 1.0, 0.95);
        assert!((120..=130).contains(&n), "n = {n}");
        // Tiny variance ⇒ 1 iteration.
        assert_eq!(jain_sample_size(100.0, 0.01, 1.0, 0.95), 1);
    }

    #[test]
    fn jain_scales_quadratically_with_cv_and_inverse_r() {
        let base = jain_sample_size(100.0, 2.0, 1.0, 0.95);
        let double_cv = jain_sample_size(100.0, 4.0, 1.0, 0.95);
        assert!((double_cv as f64 / base as f64 - 4.0).abs() < 0.2);
        let half_r = jain_sample_size(100.0, 2.0, 0.5, 0.95);
        assert!((half_r as f64 / base as f64 - 4.0).abs() < 0.2);
    }

    #[test]
    fn jain_of_samples() {
        let xs = [10.0, 10.1, 9.9, 10.05, 9.95];
        let n = jain_sample_size_of(&xs, 1.0, 0.95);
        assert!(n <= 3, "n = {n}");
    }

    #[test]
    #[should_panic(expected = "relative error must be positive")]
    fn jain_rejects_bad_r() {
        jain_sample_size(1.0, 1.0, 0.0, 0.95);
    }

    #[test]
    fn confirm_converges_fast_for_tight_data() {
        // Extremely tight data: the minimum subset (10) already suffices —
        // this is the "CONFIRM = 10" floor visible all over Table IV.
        let xs: Vec<f64> = (0..50).map(|i| 100.0 + 0.001 * (i % 5) as f64).collect();
        let mut rng = SimRng::seed_from_u64(1);
        let out = confirm(&xs, &ConfirmConfig::default(), &mut rng);
        assert_eq!(out, ConfirmOutcome::Converged(10));
        assert_eq!(out.converged(), Some(10));
        assert_eq!(out.to_string(), "10");
    }

    #[test]
    fn confirm_reports_more_than_n_for_noisy_data() {
        // cv ~ 20 %: 50 samples cannot pin the median to 1 %.
        let d = Normal::new(100.0, 20.0);
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50).map(|_| d.sample(&mut rng)).collect();
        let out = confirm(&xs, &ConfirmConfig::default(), &mut rng);
        assert_eq!(out, ConfirmOutcome::MoreThan(50));
        assert_eq!(out.converged(), None);
        assert_eq!(out.lower_bound(), 50);
        assert_eq!(out.to_string(), ">50");
    }

    #[test]
    fn confirm_needs_more_reps_for_noisier_data() {
        let mut rng = SimRng::seed_from_u64(3);
        let tight: Vec<f64> = {
            let d = Normal::new(100.0, 0.8);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        let loose: Vec<f64> = {
            let d = Normal::new(100.0, 2.5);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        let r_tight = confirm(&tight, &ConfirmConfig::default(), &mut rng).lower_bound();
        let r_loose = confirm(&loose, &ConfirmConfig::default(), &mut rng).lower_bound();
        assert!(r_tight < r_loose, "tight {r_tight} !< loose {r_loose}");
    }

    #[test]
    fn confirm_is_deterministic_given_seed() {
        let d = Normal::new(50.0, 1.0);
        let mut gen = SimRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..50).map(|_| d.sample(&mut gen)).collect();
        let a = confirm(&xs, &ConfirmConfig::default(), &mut SimRng::seed_from_u64(9));
        let b = confirm(&xs, &ConfirmConfig::default(), &mut SimRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
