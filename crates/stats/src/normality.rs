//! Normality testing (§III "Hypothesis Testing - Shapiro-Wilk Test").
//!
//! The paper screens every configuration's 50 run samples with the
//! Shapiro–Wilk test before choosing between parametric and non-parametric
//! repetition estimators (Fig. 8, Table IV). We implement the standard
//! algorithm **AS R94** (Royston, 1995, *Applied Statistics* 44) — the same
//! algorithm behind R's `shapiro.test` and SciPy's `shapiro` — without the
//! censoring path, for sample sizes 3 ≤ n ≤ 5000.
//!
//! [`anderson_darling`] is also provided: it is the arrival-distribution
//! check used by Lancet (Kogias et al., ATC '19), which the paper discusses
//! in related work.

use crate::dist_fn::{norm_cdf, norm_quantile, norm_sf};

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilk {
    /// The W statistic in `(0, 1]`; values near 1 indicate normality.
    pub w: f64,
    /// The p-value for the null hypothesis "the sample is normal".
    pub p_value: f64,
}

impl ShapiroWilk {
    /// Whether the null hypothesis of normality is rejected at
    /// significance level `alpha` (the paper uses 0.05 — the red dashed
    /// threshold in Fig. 8).
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Errors from [`shapiro_wilk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapiroWilkError {
    /// Fewer than 3 samples.
    TooFewSamples,
    /// More than 5000 samples (outside AS R94's calibrated range).
    TooManySamples,
    /// All samples identical — W is undefined.
    ZeroRange,
}

impl std::fmt::Display for ShapiroWilkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapiroWilkError::TooFewSamples => write!(f, "shapiro-wilk requires at least 3 samples"),
            ShapiroWilkError::TooManySamples => write!(f, "shapiro-wilk supports at most 5000 samples"),
            ShapiroWilkError::ZeroRange => write!(f, "all samples are identical"),
        }
    }
}

impl std::error::Error for ShapiroWilkError {}

fn poly(coeffs: &[f64], x: f64) -> f64 {
    // coeffs[0] + coeffs[1]·x + coeffs[2]·x² + …
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// The Shapiro–Wilk W test for normality (AS R94).
///
/// # Errors
///
/// Returns an error for n < 3, n > 5000, or a zero-range sample.
///
/// # Example
///
/// ```
/// use tpv_stats::shapiro_wilk;
/// // Strongly right-skewed data: normality is rejected.
/// let skewed: Vec<f64> = (1..=40).map(|i| (i as f64).exp2() / 1e6).collect();
/// let r = shapiro_wilk(&skewed).unwrap();
/// assert!(r.p_value < 0.01);
/// ```
pub fn shapiro_wilk(samples: &[f64]) -> Result<ShapiroWilk, ShapiroWilkError> {
    let n = samples.len();
    if n < 3 {
        return Err(ShapiroWilkError::TooFewSamples);
    }
    if n > 5000 {
        return Err(ShapiroWilkError::TooManySamples);
    }
    let mut x = samples.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let range = x[n - 1] - x[0];
    if range <= 0.0 {
        return Err(ShapiroWilkError::ZeroRange);
    }

    let an = n as f64;
    let n2 = n / 2;

    // --- Weights (Royston's approximation to the normalized Blom scores).
    // `m[i]` are the expected order statistics of the lower half (negative);
    // `a` holds the positive weights applied antisymmetrically.
    let mut a = vec![0.0f64; n2];
    if n == 3 {
        a[0] = std::f64::consts::FRAC_1_SQRT_2;
    } else {
        const C1: [f64; 6] = [0.0, 0.221_157, -0.147_981, -2.071_190, 4.434_685, -2.706_056];
        const C2: [f64; 6] = [0.0, 0.042_981, -0.293_762, -1.752_461, 5.682_633, -3.582_633];
        let an25 = an + 0.25;
        let mut m = vec![0.0f64; n2];
        let mut summ2 = 0.0;
        for (i, mi) in m.iter_mut().enumerate() {
            *mi = norm_quantile((i as f64 + 1.0 - 0.375) / an25);
            summ2 += *mi * *mi;
        }
        summ2 *= 2.0;
        let ssumm2 = summ2.sqrt();
        let rsn = 1.0 / an.sqrt();
        let a1 = poly(&C1, rsn) - m[0] / ssumm2;
        let (first_unadjusted, fac) = if n > 5 {
            let a2 = poly(&C2, rsn) - m[1] / ssumm2;
            let fac = ((summ2 - 2.0 * m[0] * m[0] - 2.0 * m[1] * m[1])
                / (1.0 - 2.0 * a1 * a1 - 2.0 * a2 * a2))
                .sqrt();
            a[1] = a2;
            (2usize, fac)
        } else {
            let fac = ((summ2 - 2.0 * m[0] * m[0]) / (1.0 - 2.0 * a1 * a1)).sqrt();
            (1usize, fac)
        };
        a[0] = a1;
        for i in first_unadjusted..n2 {
            a[i] = -m[i] / fac;
        }
    }

    // --- W statistic: W = b² / Σ(x − x̄)², with Σ aᵢ² = 1 by construction.
    let mean = x.iter().sum::<f64>() / an;
    let ssq: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    let mut b = 0.0;
    for i in 0..n2 {
        b += a[i] * (x[n - 1 - i] - x[i]);
    }
    let w = ((b * b) / ssq).min(1.0);

    // --- p-value (Royston's normalizing transformations).
    const C3: [f64; 4] = [0.544, -0.399_78, 0.025_054, -6.714e-4];
    const C4: [f64; 4] = [1.3822, -0.778_57, 0.062_767, -0.002_032_2];
    const C5: [f64; 4] = [-1.5861, -0.310_82, -0.083_751, 0.003_891_5];
    const C6: [f64; 3] = [-0.4803, -0.082_676, 0.003_030_2];
    const G: [f64; 2] = [-2.273, 0.459];
    const PI6: f64 = 1.909_859_317_102_744; // 6/π
    const STQR: f64 = 1.047_197_551_196_597_6; // π/3

    let p_value = if n == 3 {
        (PI6 * (w.sqrt().asin() - STQR)).clamp(0.0, 1.0)
    } else {
        let one_minus_w = (1.0 - w).max(1e-300);
        let (y, mu, sigma) = if n <= 11 {
            let gamma = poly(&G, an);
            let arg = gamma - one_minus_w.ln();
            if arg <= 0.0 {
                // W so small the transform saturates: overwhelming rejection.
                return Ok(ShapiroWilk { w, p_value: 0.0 });
            }
            (-arg.ln(), poly(&C3, an), poly(&C4, an).exp())
        } else {
            let ln_n = an.ln();
            (one_minus_w.ln(), poly(&C5, ln_n), poly(&C6, ln_n).exp())
        };
        norm_sf((y - mu) / sigma).clamp(0.0, 1.0)
    };

    Ok(ShapiroWilk { w, p_value })
}

/// Result of an Anderson–Darling normality test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndersonDarling {
    /// The size-adjusted A*² statistic.
    pub a2_star: f64,
    /// Approximate p-value (D'Agostino & Stephens, case: µ, σ estimated).
    pub p_value: f64,
}

/// Anderson–Darling test for normality with estimated mean and variance.
///
/// # Errors
///
/// Returns `None` for n < 8 (the p-value approximation is unreliable) or a
/// zero-variance sample.
pub fn anderson_darling(samples: &[f64]) -> Option<AndersonDarling> {
    let n = samples.len();
    if n < 8 {
        return None;
    }
    let mut x = samples.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let nf = n as f64;
    let mean = x.iter().sum::<f64>() / nf;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (nf - 1.0);
    if var <= 0.0 {
        return None;
    }
    let sd = var.sqrt();
    let mut a2 = 0.0;
    for i in 0..n {
        let zi = (x[i] - mean) / sd;
        let zrev = (x[n - 1 - i] - mean) / sd;
        let cdf_i = norm_cdf(zi).clamp(1e-300, 1.0 - 1e-16);
        let sf_rev = norm_sf(zrev).clamp(1e-300, 1.0);
        a2 += (2.0 * i as f64 + 1.0) * (cdf_i.ln() + sf_rev.ln());
    }
    let a2 = -nf - a2 / nf;
    let a2_star = a2 * (1.0 + 0.75 / nf + 2.25 / (nf * nf));
    let p_value = if a2_star >= 0.6 {
        (1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star).exp()
    } else if a2_star > 0.34 {
        (0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star).exp()
    } else if a2_star > 0.2 {
        1.0 - (-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star).exp()
    } else {
        1.0 - (-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star).exp()
    };
    Some(AndersonDarling { a2_star, p_value: p_value.clamp(0.0, 1.0) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::dist::{Exponential, Normal, Sampler};
    use tpv_sim::SimRng;

    #[test]
    fn n3_symmetric_is_perfectly_normal() {
        // For n=3, W = 1 for any symmetric triple, and the exact p is 1.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!((r.w - 1.0).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn n3_asymmetric_has_lower_w() {
        let r = shapiro_wilk(&[1.0, 1.1, 10.0]).unwrap();
        assert!(r.w < 0.8, "W = {}", r.w);
        assert!(r.p_value < 0.2);
    }

    #[test]
    fn input_validation() {
        assert_eq!(shapiro_wilk(&[1.0, 2.0]).unwrap_err(), ShapiroWilkError::TooFewSamples);
        assert_eq!(shapiro_wilk(&vec![0.0; 5001]).unwrap_err(), ShapiroWilkError::TooManySamples);
        assert_eq!(shapiro_wilk(&[5.0; 10]).unwrap_err(), ShapiroWilkError::ZeroRange);
        let msg = format!("{}", ShapiroWilkError::ZeroRange);
        assert!(msg.contains("identical"));
    }

    #[test]
    fn normal_samples_usually_pass() {
        // Under H0 the p-value is ~Uniform(0,1): at α=0.05 we expect ~5 %
        // rejections. Allow a generous band for a 200-trial estimate.
        let dist = Normal::new(50.0, 4.0);
        let mut rng = SimRng::seed_from_u64(2024);
        let trials = 200;
        let mut rejected = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..50).map(|_| dist.sample(&mut rng)).collect();
            let r = shapiro_wilk(&xs).unwrap();
            assert!(r.w > 0.8, "W suspiciously low for normal data: {}", r.w);
            if r.rejects_normality(0.05) {
                rejected += 1;
            }
        }
        let rate = rejected as f64 / trials as f64;
        assert!(rate < 0.13, "false rejection rate {rate}");
        assert!(rate > 0.0, "test never rejects — p-values look broken");
    }

    #[test]
    fn p_values_are_roughly_uniform_under_h0() {
        // Finer check of the Royston transform calibration: the empirical
        // CDF of p at 0.1/0.5/0.9 should be near nominal.
        let dist = Normal::new(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(7);
        let trials = 300;
        let mut ps = Vec::with_capacity(trials);
        for _ in 0..trials {
            let xs: Vec<f64> = (0..30).map(|_| dist.sample(&mut rng)).collect();
            ps.push(shapiro_wilk(&xs).unwrap().p_value);
        }
        for (q, nominal) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)] {
            let frac = ps.iter().filter(|&&p| p <= q).count() as f64 / trials as f64;
            assert!((frac - nominal).abs() < 0.12, "F({q}) = {frac}, expected ≈{nominal}");
        }
    }

    #[test]
    fn exponential_samples_are_rejected() {
        let dist = Exponential::with_mean(10.0);
        let mut rng = SimRng::seed_from_u64(5);
        let mut rejected = 0;
        let trials = 100;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..50).map(|_| dist.sample(&mut rng)).collect();
            if shapiro_wilk(&xs).unwrap().rejects_normality(0.05) {
                rejected += 1;
            }
        }
        // SW has ~high power against exponential at n=50.
        assert!(rejected >= 90, "only {rejected}/{trials} rejections");
    }

    #[test]
    fn small_sample_branch_n_le_11() {
        let dist = Normal::new(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(11);
        let mut rejected = 0;
        let trials = 200;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..9).map(|_| dist.sample(&mut rng)).collect();
            if shapiro_wilk(&xs).unwrap().rejects_normality(0.05) {
                rejected += 1;
            }
        }
        let rate = rejected as f64 / trials as f64;
        assert!(rate < 0.13, "n=9 false rejection rate {rate}");
    }

    #[test]
    fn w_decreases_with_increasing_skew() {
        // Monotone sanity: heavier right tail ⇒ smaller W.
        let base: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mild: Vec<f64> = base.iter().map(|x| x * x).collect();
        let heavy: Vec<f64> = base.iter().map(|x| (x / 6.0).exp()).collect();
        let w_base = shapiro_wilk(&base).unwrap().w;
        let w_mild = shapiro_wilk(&mild).unwrap().w;
        let w_heavy = shapiro_wilk(&heavy).unwrap().w;
        assert!(w_base > w_mild, "{w_base} vs {w_mild}");
        assert!(w_mild > w_heavy, "{w_mild} vs {w_heavy}");
    }

    #[test]
    fn large_n_branch_works() {
        let dist = Normal::new(5.0, 2.0);
        let mut rng = SimRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..2000).map(|_| dist.sample(&mut rng)).collect();
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.w > 0.995, "W = {}", r.w);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn scale_and_shift_invariance() {
        let mut rng = SimRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..30).map(|_| rng.next_f64() * 10.0).collect();
        let shifted: Vec<f64> = xs.iter().map(|x| x * 1e6 + 42.0).collect();
        let a = shapiro_wilk(&xs).unwrap();
        let b = shapiro_wilk(&shifted).unwrap();
        assert!((a.w - b.w).abs() < 1e-9);
        assert!((a.p_value - b.p_value).abs() < 1e-9);
    }

    #[test]
    fn anderson_darling_agrees_directionally_with_sw() {
        let normal = Normal::new(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(17);
        let good: Vec<f64> = (0..80).map(|_| normal.sample(&mut rng)).collect();
        let ad_good = anderson_darling(&good).unwrap();
        assert!(ad_good.p_value > 0.05, "AD rejected normal data: {ad_good:?}");

        let exp = Exponential::with_mean(1.0);
        let bad: Vec<f64> = (0..80).map(|_| exp.sample(&mut rng)).collect();
        let ad_bad = anderson_darling(&bad).unwrap();
        assert!(ad_bad.p_value < 0.01, "AD accepted exponential data: {ad_bad:?}");
        assert!(ad_bad.a2_star > ad_good.a2_star);
    }

    #[test]
    fn anderson_darling_edge_cases() {
        assert!(anderson_darling(&[1.0; 7]).is_none());
        assert!(anderson_darling(&[3.0; 20]).is_none());
    }
}
