//! # tpv-stats — the statistics toolkit of §III
//!
//! Everything the paper's methodology needs to turn raw run samples into
//! statistically defensible conclusions:
//!
//! * [`ci`] — confidence intervals: the **non-parametric median CI** of the
//!   paper's Eq. (1)/(2) and the classical parametric mean CI (z and
//!   Student-t).
//! * [`normality`] — the **Shapiro–Wilk test** (AS R94 / Royston 1995) used
//!   for Fig. 8 and Table IV, plus Anderson–Darling (the Lancet-style
//!   check referenced in related work).
//! * [`repetitions`] — how many runs an experiment needs: **Jain's
//!   parametric formula** (Eq. 3) and the **CONFIRM** resampling method
//!   (Maricq et al., OSDI '18).
//! * [`iid`] — diagnostics for the iid assumption: autocorrelation,
//!   turning-point test, lag plots, Spearman rank correlation.
//! * [`desc`] — descriptive statistics and Little's-law helpers.
//! * [`dist_fn`] — the underlying special functions (Φ, Φ⁻¹, erf, ln Γ,
//!   regularized incomplete beta, Student-t CDF/quantile).
//!
//! # Example: the paper's CI recipe
//!
//! ```
//! use tpv_stats::ci::nonparametric_median_ci;
//!
//! // 50 per-run average latencies (µs), as in §IV-B.
//! let samples: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
//! let ci = nonparametric_median_ci(&samples, 0.95).unwrap();
//! assert!(ci.low <= ci.mid && ci.mid <= ci.high);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod ci;
pub mod desc;
pub mod dist_fn;
pub mod iid;
pub mod mannwhitney;
pub mod normality;
pub mod repetitions;

pub use bootstrap::bootstrap_ci;
pub use ci::ConfidenceInterval;
pub use mannwhitney::{mann_whitney_u, MannWhitney};
pub use normality::{shapiro_wilk, ShapiroWilk};
pub use repetitions::{confirm, jain_sample_size, ConfirmOutcome};
