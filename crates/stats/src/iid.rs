//! Diagnostics for the iid assumption (§III "IID samples").
//!
//! Confidence intervals require independent, identically distributed
//! samples. The paper gets independence by resetting the environment
//! between runs, and lists the standard checks for doubtful cases:
//! autocorrelation, lag plots and the turning-point test. Lancet's
//! Spearman-based independence check is included as well.

use crate::desc::mean;
use crate::dist_fn::{norm_sf, t_cdf};

/// Lag-`k` sample autocorrelation.
///
/// Returns a value in `[-1, 1]`; near 0 indicates no correlation between a
/// series and its lagged self. Returns `None` if `k >= n` or the series has
/// zero variance.
pub fn autocorrelation(xs: &[f64], k: usize) -> Option<f64> {
    let n = xs.len();
    if k >= n || n < 2 {
        return None;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 0.0 {
        return None;
    }
    let num: f64 = (0..n - k).map(|i| (xs[i] - m) * (xs[i + k] - m)).sum();
    Some(num / denom)
}

/// The autocorrelation function for lags `1..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag).filter_map(|k| autocorrelation(xs, k)).collect()
}

/// Whether the series looks uncorrelated: every |acf(k)| for
/// k ≤ `max_lag` falls inside the ±1.96/√n white-noise band.
pub fn is_uncorrelated(xs: &[f64], max_lag: usize) -> bool {
    let bound = 1.96 / (xs.len() as f64).sqrt();
    acf(xs, max_lag).iter().all(|r| r.abs() <= bound)
}

/// Result of the turning-point test for randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurningPointTest {
    /// Observed number of turning points.
    pub turning_points: usize,
    /// Expected count under randomness: `2(n−2)/3`.
    pub expected: f64,
    /// The standardized statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// The turning-point test: counts local extrema in the series and compares
/// against the `2(n−2)/3` expectation of an iid sequence.
///
/// Returns `None` for n < 3.
pub fn turning_point_test(xs: &[f64]) -> Option<TurningPointTest> {
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let mut t = 0usize;
    for w in xs.windows(3) {
        if (w[1] > w[0] && w[1] > w[2]) || (w[1] < w[0] && w[1] < w[2]) {
            t += 1;
        }
    }
    let nf = n as f64;
    let expected = 2.0 * (nf - 2.0) / 3.0;
    let variance = (16.0 * nf - 29.0) / 90.0;
    let z = (t as f64 - expected) / variance.sqrt();
    let p_value = (2.0 * norm_sf(z.abs())).min(1.0);
    Some(TurningPointTest { turning_points: t, expected, z, p_value })
}

/// Pairs `(x_t, x_{t+k})` for a lag plot — the visual iid check the paper
/// mentions alongside autocorrelation.
pub fn lag_plot_pairs(xs: &[f64], k: usize) -> Vec<(f64, f64)> {
    if k >= xs.len() {
        return Vec::new();
    }
    (0..xs.len() - k).map(|i| (xs[i], xs[i + k])).collect()
}

/// Result of a Spearman rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanTest {
    /// The rank correlation coefficient ρ in `[-1, 1]`.
    pub rho: f64,
    /// Two-sided p-value from the t approximation.
    pub p_value: f64,
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN sample"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &slot in &idx[i..=j] {
            out[slot] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between two equal-length series — Lancet uses
/// this between consecutive samples to check independence.
///
/// Returns `None` if the series differ in length, have fewer than 3
/// elements, or either has zero rank variance.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<SpearmanTest> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let mx = mean(&rx);
    let my = mean(&ry);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..rx.len() {
        let a = rx[i] - mx;
        let b = ry[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx <= 0.0 || dy <= 0.0 {
        return None;
    }
    let rho = (num / (dx * dy).sqrt()).clamp(-1.0, 1.0);
    let n = xs.len() as f64;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * ((n - 2.0) / (1.0 - rho * rho)).sqrt();
        (2.0 * (1.0 - t_cdf(t.abs(), n - 2.0))).min(1.0)
    };
    Some(SpearmanTest { rho, p_value })
}

/// Lag-1 Spearman independence check on a single series.
pub fn spearman_lag1(xs: &[f64]) -> Option<SpearmanTest> {
    if xs.len() < 4 {
        return None;
    }
    spearman(&xs[..xs.len() - 1], &xs[1..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::SimRng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64()).collect()
    }

    #[test]
    fn autocorrelation_of_white_noise_is_small() {
        let xs = white_noise(2_000, 1);
        for k in 1..=5 {
            let r = autocorrelation(&xs, k).unwrap();
            assert!(r.abs() < 0.06, "lag {k}: {r}");
        }
        assert!(is_uncorrelated(&xs, 5));
    }

    #[test]
    fn autocorrelation_detects_trend() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = autocorrelation(&xs, 1).unwrap();
        assert!(r > 0.9, "r = {r}");
        assert!(!is_uncorrelated(&xs, 3));
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = autocorrelation(&xs, 1).unwrap();
        assert!(r < -0.9, "r = {r}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert!(autocorrelation(&[1.0, 2.0], 2).is_none());
        assert!(autocorrelation(&[3.0; 10], 1).is_none());
        assert_eq!(acf(&white_noise(100, 2), 3).len(), 3);
    }

    #[test]
    fn turning_points_of_random_series_match_expectation() {
        let xs = white_noise(1_000, 3);
        let t = turning_point_test(&xs).unwrap();
        assert!((t.turning_points as f64 - t.expected).abs() < 40.0);
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
    }

    #[test]
    fn turning_points_of_monotone_series_reject() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let t = turning_point_test(&xs).unwrap();
        assert_eq!(t.turning_points, 0);
        assert!(t.p_value < 1e-6);
        assert!(turning_point_test(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn lag_plot_pairs_shape() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(lag_plot_pairs(&xs, 1), vec![(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]);
        assert!(lag_plot_pairs(&xs, 4).is_empty());
    }

    #[test]
    fn spearman_perfect_monotone() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 9.0, 16.0, 100.0]; // monotone, nonlinear
        let s = spearman(&xs, &ys).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
        assert!(s.p_value < 0.01);
        let inv: Vec<f64> = ys.iter().map(|y| -y).collect();
        let s2 = spearman(&xs, &inv).unwrap();
        assert!((s2.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 5.0, 6.0];
        let s = spearman(&xs, &ys).unwrap();
        assert!(s.rho > 0.9);
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(spearman(&[1.0, 2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn spearman_lag1_on_independent_runs_is_weak() {
        let xs = white_noise(300, 5);
        let s = spearman_lag1(&xs).unwrap();
        assert!(s.rho.abs() < 0.15, "rho = {}", s.rho);
        assert!(s.p_value > 0.01);
        assert!(spearman_lag1(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn ranks_average_over_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
