//! Mann–Whitney U test: a non-parametric two-sample comparison.
//!
//! The paper's decision rule is CI overlap; Mann–Whitney is the classical
//! alternative for the same question ("do these two configurations
//! differ?") without normality assumptions. Provided for methodology
//! ablations: `tpv-core`'s verdicts can be cross-checked against it (see
//! the `ext_verdict_methods` experiment).

use crate::dist_fn::norm_sf;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Two-sided p-value (normal approximation with tie correction).
    pub p_value: f64,
    /// Rank-biserial effect size in `[-1, 1]`; negative means the first
    /// sample tends smaller.
    pub effect_size: f64,
}

impl MannWhitney {
    /// Whether the two samples differ at significance level `alpha`.
    pub fn differs(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Mann–Whitney U test between samples `xs` and `ys`.
///
/// Uses the normal approximation with tie correction, which is accurate
/// for n ≥ ~8 per group (the paper's 20–50 runs are comfortably inside).
///
/// Returns `None` if either sample has fewer than 2 values or all values
/// are identical.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Option<MannWhitney> {
    let n1 = xs.len();
    let n2 = ys.len();
    if n1 < 2 || n2 < 2 {
        return None;
    }
    // Joint ranking with average ranks for ties.
    let mut all: Vec<(f64, usize)> =
        xs.iter().map(|&v| (v, 0usize)).chain(ys.iter().map(|&v| (v, 1usize))).collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN sample"));

    let n = all.len();
    let mut rank_sum_x = 0.0f64;
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        for item in &all[i..=j] {
            if item.1 == 0 {
                rank_sum_x += avg_rank;
            }
        }
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let nf = n as f64;
    let var_u = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return None; // all values tied
    }
    // Continuity correction.
    let z = (u1 - mean_u - 0.5 * (u1 - mean_u).signum()) / var_u.sqrt();
    let p_value = (2.0 * norm_sf(z.abs())).min(1.0);
    let effect_size = 2.0 * u1 / (n1f * n2f) - 1.0;
    Some(MannWhitney { u: u1, p_value, effect_size })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::dist::{Normal, Sampler};
    use tpv_sim::SimRng;

    #[test]
    fn separated_samples_differ() {
        let xs: Vec<f64> = (0..30).map(|i| 100.0 + (i % 5) as f64).collect();
        let ys: Vec<f64> = (0..30).map(|i| 200.0 + (i % 5) as f64).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.differs(0.01), "p = {}", r.p_value);
        assert!(r.effect_size < -0.95, "effect {}", r.effect_size);
        // Symmetric in the other direction.
        let r2 = mann_whitney_u(&ys, &xs).unwrap();
        assert!(r2.effect_size > 0.95);
        assert!((r.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn identical_distributions_do_not_differ() {
        let d = Normal::new(50.0, 5.0);
        let mut rng = SimRng::seed_from_u64(1);
        let trials = 200;
        let mut rejections = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..25).map(|_| d.sample(&mut rng)).collect();
            let ys: Vec<f64> = (0..25).map(|_| d.sample(&mut rng)).collect();
            if mann_whitney_u(&xs, &ys).unwrap().differs(0.05) {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate < 0.12, "false positive rate {rate}");
    }

    #[test]
    fn detects_small_shifts_with_enough_samples() {
        let a = Normal::new(100.0, 2.0);
        let b = Normal::new(102.0, 2.0);
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50).map(|_| a.sample(&mut rng)).collect();
        let ys: Vec<f64> = (0..50).map(|_| b.sample(&mut rng)).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.differs(0.05), "p = {}", r.p_value);
        assert!(r.effect_size < 0.0, "xs should rank lower");
    }

    #[test]
    fn handles_ties_and_degenerate_input() {
        let xs = [1.0, 1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0, 3.0];
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(!r.differs(0.05));
        assert!(mann_whitney_u(&[1.0], &[2.0, 3.0]).is_none());
        assert!(mann_whitney_u(&[5.0, 5.0], &[5.0, 5.0]).is_none());
    }
}
