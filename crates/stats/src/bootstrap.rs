//! Percentile-bootstrap confidence intervals.
//!
//! A third CI method alongside the paper's parametric (Eq. 3 family) and
//! order-statistic non-parametric (Eq. 1/2) intervals. Bootstrap CIs work
//! for *any* statistic — e.g. the per-run p99s the paper plots but never
//! puts intervals on — and give the experiment framework a way to attach
//! uncertainty to medians-of-tails without distributional assumptions.

use crate::ci::ConfidenceInterval;
use tpv_sim::SimRng;

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// Resamples `xs` with replacement `resamples` times, evaluates
/// `statistic` on each resample, and returns the empirical
/// `(1±level)/2` quantiles of the resulting distribution.
///
/// Returns `None` for fewer than 2 samples.
///
/// # Panics
///
/// Panics unless `level ∈ (0,1)` and `resamples ≥ 100`.
///
/// # Example
///
/// ```
/// use tpv_stats::bootstrap::bootstrap_ci;
/// use tpv_stats::desc;
/// use tpv_sim::SimRng;
///
/// let xs: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
/// let mut rng = SimRng::seed_from_u64(1);
/// let ci = bootstrap_ci(&xs, desc::median, 0.95, 1000, &mut rng).unwrap();
/// assert!(ci.contains(desc::median(&xs)));
/// ```
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    level: f64,
    resamples: usize,
    rng: &mut SimRng,
) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1), got {level}");
    assert!(resamples >= 100, "bootstrap needs at least 100 resamples, got {resamples}");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mid = statistic(xs);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = xs[rng.next_index(n)];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    Some(ConfidenceInterval { low: stats[lo_idx].min(mid), mid, high: stats[hi_idx].max(mid), level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc;
    use tpv_sim::dist::{Normal, Sampler};

    #[test]
    fn median_ci_brackets_the_median_and_shrinks_with_n() {
        let d = Normal::new(100.0, 5.0);
        let mut rng = SimRng::seed_from_u64(1);
        let small: Vec<f64> = (0..20).map(|_| d.sample(&mut rng)).collect();
        let large: Vec<f64> = (0..500).map(|_| d.sample(&mut rng)).collect();
        let ci_small = bootstrap_ci(&small, desc::median, 0.95, 1000, &mut rng).unwrap();
        let ci_large = bootstrap_ci(&large, desc::median, 0.95, 1000, &mut rng).unwrap();
        assert!(ci_small.contains(desc::median(&small)));
        assert!(ci_large.contains(desc::median(&large)));
        assert!(
            ci_large.high - ci_large.low < ci_small.high - ci_small.low,
            "CI must shrink with sample size"
        );
    }

    #[test]
    fn works_for_tail_statistics() {
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..200).map(|_| rng.next_f64() * 100.0).collect();
        let p90 = |v: &[f64]| desc::percentile(v, 90.0);
        let ci = bootstrap_ci(&xs, p90, 0.95, 800, &mut rng).unwrap();
        assert!(ci.contains(p90(&xs)));
        assert!(ci.low > 70.0 && ci.high < 100.0, "{ci:?}");
    }

    #[test]
    fn coverage_is_approximately_nominal() {
        // True median of Uniform(0,1) is 0.5; check ~95% coverage.
        let mut rng = SimRng::seed_from_u64(3);
        let trials = 150;
        let mut covered = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..60).map(|_| rng.next_f64()).collect();
            let ci = bootstrap_ci(&xs, desc::median, 0.95, 400, &mut rng).unwrap();
            if ci.contains(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.85, "coverage {rate}");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(bootstrap_ci(&[1.0], desc::median, 0.95, 200, &mut rng).is_none());
        // Constant data: zero-width interval.
        let ci = bootstrap_ci(&[5.0; 30], desc::median, 0.95, 200, &mut rng).unwrap();
        assert_eq!(ci.low, 5.0);
        assert_eq!(ci.high, 5.0);
    }

    #[test]
    #[should_panic(expected = "at least 100 resamples")]
    fn too_few_resamples_panics() {
        let mut rng = SimRng::seed_from_u64(5);
        bootstrap_ci(&[1.0, 2.0], desc::median, 0.95, 10, &mut rng);
    }
}
