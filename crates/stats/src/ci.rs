//! Confidence intervals — the heart of the paper's methodology (§III).
//!
//! The paper uses **non-parametric CIs on the median** (Eq. 1/2) because
//! roughly half the measured configurations fail normality testing (§V-C).
//! The parametric mean CI is provided for the comparison Table IV makes.

use crate::desc::{mean, sorted, std_dev};
use crate::dist_fn::{norm_quantile, t_quantile};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64,
    /// Point estimate the interval is centred on (median or mean).
    pub mid: f64,
    /// Upper bound.
    pub high: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width relative to the point estimate, in percent.
    ///
    /// This is the "error" the paper's evaluation-time analysis drives to
    /// ≤ 1 % (§V-C).
    pub fn relative_error_pct(&self) -> f64 {
        if self.mid == 0.0 {
            return f64::INFINITY;
        }
        let half = (self.high - self.low) / 2.0;
        (half / self.mid.abs()) * 100.0
    }

    /// True if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.low <= x && x <= self.high
    }

    /// True if two intervals overlap.
    ///
    /// The paper's decision rule: two configurations are only declared
    /// different when their CIs do **not** overlap.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low <= other.high && other.low <= self.high
    }
}

/// The sorted-order indices used by the paper's non-parametric CI.
///
/// Implements Eq. (1) and Eq. (2) exactly:
///
/// ```text
/// lower = ⌊(n − z·√n)/2⌋        upper = ⌈1 + (n + z·√n)/2⌉
/// ```
///
/// Indices are 1-based ranks into the sorted sample. Returns `None` when
/// the formulas fall outside `[1, n]` — i.e. when there are too few samples
/// to support the requested confidence level.
pub fn nonparametric_ci_ranks(n: usize, level: f64) -> Option<(usize, usize)> {
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1), got {level}");
    if n == 0 {
        return None;
    }
    let z = norm_quantile(0.5 + level / 2.0);
    let nf = n as f64;
    let lower = ((nf - z * nf.sqrt()) / 2.0).floor();
    let upper = (1.0 + (nf + z * nf.sqrt()) / 2.0).ceil();
    if lower < 1.0 || upper > nf {
        return None;
    }
    Some((lower as usize, upper as usize))
}

/// Non-parametric confidence interval for the **median** (paper Eq. 1/2).
///
/// Returns `None` when the sample is too small for the requested level
/// (e.g. fewer than ~6 samples at 95 %).
///
/// # Example
///
/// ```
/// use tpv_stats::ci::nonparametric_median_ci;
/// let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
/// let ci = nonparametric_median_ci(&xs, 0.95).unwrap();
/// assert!(ci.contains(ci.mid));
/// assert!(ci.low >= 18.0 && ci.high <= 33.0);
/// ```
pub fn nonparametric_median_ci(xs: &[f64], level: f64) -> Option<ConfidenceInterval> {
    let (lo_rank, hi_rank) = nonparametric_ci_ranks(xs.len(), level)?;
    let v = sorted(xs);
    let mid = crate::desc::median(xs);
    let ci = ConfidenceInterval { low: v[lo_rank - 1], mid, high: v[hi_rank - 1], level };
    debug_assert!(ci.low <= ci.mid && ci.mid <= ci.high, "median escaped its CI");
    Some(ci)
}

/// Parametric confidence interval for the **mean**, Student-t based.
///
/// Assumes (approximate) normality of the samples — the assumption the
/// paper checks with Shapiro–Wilk before trusting parametric methods.
///
/// Returns `None` for fewer than 2 samples.
pub fn parametric_mean_ci(xs: &[f64], level: f64) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1), got {level}");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    let t = t_quantile(0.5 + level / 2.0, (n - 1) as f64);
    let half = t * s / (n as f64).sqrt();
    Some(ConfidenceInterval { low: m - half, mid: m, high: m + half, level })
}

/// Parametric confidence interval for the mean using the normal (z)
/// critical value — the large-sample form used in Jain's formula.
///
/// Returns `None` for fewer than 2 samples.
pub fn parametric_mean_ci_z(xs: &[f64], level: f64) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0,1), got {level}");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    let z = norm_quantile(0.5 + level / 2.0);
    let half = z * s / (n as f64).sqrt();
    Some(ConfidenceInterval { low: m - half, mid: m, high: m + half, level })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_formula_matches_hand_computation_n50() {
        // n=50, z=1.96: lower = floor((50 - 13.859)/2) = floor(18.07) = 18,
        // upper = ceil(1 + (50+13.859)/2) = ceil(32.93) = 33.
        let (lo, hi) = nonparametric_ci_ranks(50, 0.95).unwrap();
        assert_eq!((lo, hi), (18, 33));
    }

    #[test]
    fn rank_formula_matches_hand_computation_n10() {
        // n=10, z=1.96: lower = floor((10-6.198)/2) = 1, upper = ceil(1+8.099) = 10.
        let (lo, hi) = nonparametric_ci_ranks(10, 0.95).unwrap();
        assert_eq!((lo, hi), (1, 10));
    }

    #[test]
    fn too_few_samples_yields_none() {
        // CONFIRM's premise: below ~6 samples the 95 % CI is undefined.
        assert!(nonparametric_ci_ranks(5, 0.95).is_none());
        assert!(nonparametric_ci_ranks(0, 0.95).is_none());
        assert!(nonparametric_median_ci(&[1.0, 2.0, 3.0], 0.95).is_none());
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let ci90 = nonparametric_median_ci(&xs, 0.90).unwrap();
        let ci99 = nonparametric_median_ci(&xs, 0.99).unwrap();
        assert!(ci99.high - ci99.low >= ci90.high - ci90.low);
        assert!(ci90.contains(ci90.mid));
    }

    #[test]
    fn median_lies_within_nonparametric_ci() {
        // Property required by the paper: "The sample's median should be
        // within the CI bounds."
        let mut rng = tpv_sim::SimRng::seed_from_u64(1);
        for trial in 0..50 {
            let n = 6 + (trial % 60);
            let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
            if let Some(ci) = nonparametric_median_ci(&xs, 0.95) {
                assert!(ci.contains(ci.mid), "median outside CI for n={n}");
            }
        }
    }

    #[test]
    fn parametric_ci_shrinks_with_sqrt_n() {
        let xs30: Vec<f64> = (0..30).map(|i| 100.0 + (i % 5) as f64).collect();
        let xs120: Vec<f64> = (0..120).map(|i| 100.0 + (i % 5) as f64).collect();
        let w30 = {
            let ci = parametric_mean_ci(&xs30, 0.95).unwrap();
            ci.high - ci.low
        };
        let w120 = {
            let ci = parametric_mean_ci(&xs120, 0.95).unwrap();
            ci.high - ci.low
        };
        assert!(w120 < w30 / 1.8, "CI did not shrink ~sqrt(4): {w30} -> {w120}");
    }

    #[test]
    fn parametric_t_is_wider_than_z_for_small_n() {
        let xs = [10.0, 11.0, 12.0, 9.0, 10.5, 11.5];
        let t = parametric_mean_ci(&xs, 0.95).unwrap();
        let z = parametric_mean_ci_z(&xs, 0.95).unwrap();
        assert!(t.high - t.low > z.high - z.low);
        assert!(parametric_mean_ci(&[1.0], 0.95).is_none());
    }

    #[test]
    fn overlap_and_relative_error() {
        let a = ConfidenceInterval { low: 1.0, mid: 2.0, high: 3.0, level: 0.95 };
        let b = ConfidenceInterval { low: 2.5, mid: 3.0, high: 4.0, level: 0.95 };
        let c = ConfidenceInterval { low: 3.5, mid: 4.0, high: 5.0, level: 0.95 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!((a.relative_error_pct() - 50.0).abs() < 1e-12);
        let zero = ConfidenceInterval { low: -1.0, mid: 0.0, high: 1.0, level: 0.95 };
        assert!(zero.relative_error_pct().is_infinite());
    }

    #[test]
    fn coverage_of_nonparametric_ci_is_approximately_nominal() {
        // Draw many datasets from a known distribution (median = 0) and
        // check the CI covers the true median ≈95 % of the time.
        let mut rng = tpv_sim::SimRng::seed_from_u64(7);
        let trials = 400;
        let mut covered = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..40).map(|_| rng.next_f64() - 0.5).collect();
            let ci = nonparametric_median_ci(&xs, 0.95).unwrap();
            if ci.contains(0.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.90 && rate <= 1.0, "coverage {rate}");
    }
}
