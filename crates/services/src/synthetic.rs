//! The synthetic workload of §IV-B: tunable service time.
//!
//! "It can accept an input parameter, the value of which specifies by how
//! long the processing time of a request should be extended. The
//! processing time is implemented using a busy wait loop … as the
//! additional wait time should be accounted as service time rather than
//! sleep time." — i.e. the added delay occupies the worker core, so it
//! contributes to utilisation and queueing exactly like real work.

use tpv_hw::{MachineConfig, RunEnvironment};
use tpv_net::StackCosts;
use tpv_sim::dist::{Normal, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::interference::InterferenceProfile;
use crate::request::{RequestDescriptor, ServiceCompletion};
use crate::worker_pool::WorkerPool;

/// Configuration of the synthetic service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Worker threads (the paper: 10, pinned on a single socket).
    pub workers: usize,
    /// Base processing time before the added delay.
    pub base_service: SimDuration,
    /// The tunable busy-wait extension (the sweep parameter of Fig. 7:
    /// 0–400 µs).
    pub added_delay: SimDuration,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig { workers: 10, base_service: SimDuration::from_us(8), added_delay: SimDuration::ZERO }
    }
}

impl SyntheticConfig {
    /// The paper's sweep: the same service with a given added delay.
    pub fn with_delay(delay: SimDuration) -> Self {
        SyntheticConfig { added_delay: delay, ..SyntheticConfig::default() }
    }
}

/// The synthetic service instance for one run.
#[derive(Debug)]
pub struct SyntheticService {
    pool: WorkerPool,
    config: SyntheticConfig,
    stack: StackCosts,
    jitter: Normal,
}

impl SyntheticService {
    /// Builds the service on `server` for a run of length `horizon`.
    pub fn new(
        config: SyntheticConfig,
        server: &MachineConfig,
        env: &RunEnvironment,
        interference: &InterferenceProfile,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let mut pool = WorkerPool::new(server, env, config.workers, interference, horizon, rng);
        // The busy-wait loop is cache-resident: its duration is exact by
        // construction (that is the paper's point), so no contention.
        pool.set_contention_coef(0.0);
        SyntheticService { pool, config, stack: StackCosts::tcp_small_rpc(), jitter: Normal::new(1.0, 0.05) }
    }

    /// Draws the next request descriptor (all synthetic requests are
    /// identical by design).
    pub fn next_descriptor(&self, _rng: &mut SimRng) -> RequestDescriptor {
        RequestDescriptor::Synthetic
    }

    /// Handles one request arriving at the server NIC at `arrival`.
    pub fn handle(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> ServiceCompletion {
        assert!(
            matches!(desc, RequestDescriptor::Synthetic),
            "SyntheticService got a non-synthetic request: {desc:?}"
        );
        // Base work jitters; the busy-wait delay is exact by construction
        // (that is its whole point).
        let base = self.config.base_service.scale(self.jitter.sample(rng).max(0.5));
        let service = base + self.config.added_delay;
        let worker = self.pool.worker_for_connection(conn);
        let grant = self.pool.execute(worker, arrival, service, self.stack.server_softirq, rng);
        ServiceCompletion { response_wire: grant.end, server_time: grant.busy }
    }

    /// The configured added delay.
    pub fn added_delay(&self) -> SimDuration {
        self.config.added_delay
    }

    /// The worker pool (inspection / tests).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(delay_us: u64, seed: u64) -> (SyntheticService, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = RunEnvironment::neutral();
        let svc = SyntheticService::new(
            SyntheticConfig::with_delay(SimDuration::from_us(delay_us)),
            &MachineConfig::server_baseline(),
            &env,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
        (svc, rng)
    }

    #[test]
    fn added_delay_extends_service_linearly() {
        // "At low QPS … the response time increases linearly with the
        // increase of the added delay which validates the implementation."
        let mut spans = Vec::new();
        for delay in [0u64, 100, 200, 400] {
            let (mut svc, mut rng) = service(delay, 1);
            let mut total = SimDuration::ZERO;
            let n = 40u64;
            for i in 0..n {
                let arrival = SimTime::from_ms(5 * (i + 1));
                let done = svc.handle(0, &RequestDescriptor::Synthetic, arrival, &mut rng);
                total += done.response_wire.since(arrival);
            }
            spans.push(total.as_us() / n as f64);
        }
        // Differences between consecutive delays ≈ the delay increments.
        assert!((spans[1] - spans[0] - 100.0).abs() < 15.0, "{spans:?}");
        assert!((spans[2] - spans[1] - 100.0).abs() < 15.0, "{spans:?}");
        assert!((spans[3] - spans[2] - 200.0).abs() < 25.0, "{spans:?}");
    }

    #[test]
    fn delay_counts_as_utilisation() {
        // The busy-wait loop occupies the worker: with 10 workers and
        // 400 µs delay, 20K QPS saturates (Little's law bound).
        let (mut svc, mut rng) = service(400, 2);
        let mut t = SimTime::ZERO;
        for i in 0..2_000u64 {
            // 20K QPS across 16 connections.
            t = SimTime::from_ns(i * 50_000);
            let conn = (i % 16) as usize;
            svc.handle(conn, &RequestDescriptor::Synthetic, t, &mut rng);
        }
        let util = svc.pool().utilization(t);
        assert!(util > 0.5, "utilization {util}");
        assert_eq!(svc.added_delay(), SimDuration::from_us(400));
    }

    #[test]
    #[should_panic(expected = "non-synthetic request")]
    fn wrong_descriptor_panics() {
        let (mut svc, mut rng) = service(0, 3);
        svc.handle(0, &RequestDescriptor::Synthetic {}, SimTime::ZERO, &mut rng);
        svc.handle(0, &RequestDescriptor::Timeline { user: 0 }, SimTime::ZERO, &mut rng);
    }
}
