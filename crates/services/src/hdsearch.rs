//! HDSearch: image-similarity search via locality-sensitive hashing.
//!
//! §IV-B: *"HDSearch is an image similarity search service … It returns
//! images from a large dataset whose feature vectors are near to the
//! query's feature vector. It uses Locality-Sensitive Hash (LSH) tables to
//! traverse the search space … structured as a three-tier service"*
//! (client → midtier → bucket servers).
//!
//! The index here is real: random-hyperplane LSH over a synthetic
//! clustered feature-vector dataset, with actual buckets, candidate
//! retrieval and distance ranking ([`LshIndex`]). Per-request *timing* is
//! driven by the index's true per-query candidate counts, sampled from a
//! profile measured against the index at startup — so the service-time
//! distribution is grounded in the real data structure while the
//! simulation stays cheap per request.

use tpv_hw::{MachineConfig, RunEnvironment};
use tpv_net::StackCosts;
use tpv_sim::dist::{Normal, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::interference::InterferenceProfile;
use crate::request::{RequestDescriptor, ServiceCompletion, StageCtx, StageOutcome};
use crate::worker_pool::WorkerPool;

/// A feature vector.
pub type Vector = Vec<f32>;

/// One LSH table: random hyperplanes + hash buckets.
#[derive(Debug)]
struct LshTable {
    hyperplanes: Vec<Vector>,
    buckets: crate::fasthash::FxHashMap<u64, Vec<u32>>,
}

impl LshTable {
    fn hash(&self, v: &[f32]) -> u64 {
        let mut sig = 0u64;
        for (i, plane) in self.hyperplanes.iter().enumerate() {
            let dot: f32 = plane.iter().zip(v).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                sig |= 1 << i;
            }
        }
        sig
    }
}

/// A multi-table random-hyperplane LSH index over a vector dataset.
#[derive(Debug)]
pub struct LshIndex {
    dim: usize,
    tables: Vec<LshTable>,
    data: Vec<Vector>,
    shards: usize,
}

fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn random_unit_vector(dim: usize, rng: &mut SimRng) -> Vector {
    let mut v: Vector = (0..dim).map(|_| Normal::standard_sample(rng) as f32).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

/// Generates a clustered synthetic dataset (images of similar scenes have
/// nearby feature vectors; clusters model that structure).
pub fn clustered_dataset(n: usize, dim: usize, clusters: usize, rng: &mut SimRng) -> Vec<Vector> {
    assert!(clusters > 0, "need at least one cluster");
    let centers: Vec<Vector> = (0..clusters)
        .map(|_| (0..dim).map(|_| Normal::standard_sample(rng) as f32 * 4.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            c.iter().map(|&x| x + Normal::standard_sample(rng) as f32 * 0.6).collect()
        })
        .collect()
}

impl LshIndex {
    /// Builds an index over `data` with `tables` tables of `planes`
    /// hyperplanes each, logically sharded across `shards` bucket servers.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset, zero tables/planes/shards, or planes > 63.
    pub fn build(data: Vec<Vector>, tables: usize, planes: usize, shards: usize, rng: &mut SimRng) -> Self {
        assert!(!data.is_empty(), "LSH needs data");
        assert!(tables > 0 && planes > 0 && planes <= 63, "bad LSH shape");
        assert!(shards > 0, "need at least one shard");
        let dim = data[0].len();
        let mut built = Vec::with_capacity(tables);
        for _ in 0..tables {
            let hyperplanes = (0..planes).map(|_| random_unit_vector(dim, rng)).collect();
            let mut table = LshTable { hyperplanes, buckets: crate::fasthash::FxHashMap::default() };
            for (id, v) in data.iter().enumerate() {
                assert_eq!(v.len(), dim, "inconsistent vector dimensionality");
                let h = table.hash(v);
                table.buckets.entry(h).or_default().push(id as u32);
            }
            built.push(table);
        }
        LshIndex { dim, tables: built, data, shards }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shard an indexed vector lives on.
    pub fn shard_of(&self, id: u32) -> usize {
        id as usize % self.shards
    }

    /// Retrieves the deduplicated candidate set for a query.
    pub fn candidates(&self, query: &[f32]) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        for table in &self.tables {
            let h = table.hash(query);
            if let Some(bucket) = table.buckets.get(&h) {
                for &id in bucket {
                    seen.insert(id);
                }
            }
        }
        let mut v: Vec<u32> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Full LSH query: candidates, exact distances, top-`k` nearest.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        let mut scored: Vec<(u32, f32)> = self
            .candidates(query)
            .into_iter()
            .map(|id| (id, squared_distance(&self.data[id as usize], query)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.truncate(k);
        scored
    }

    /// Exact brute-force top-`k` (ground truth for recall tests).
    pub fn brute_force(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        let mut scored: Vec<(u32, f32)> =
            self.data.iter().enumerate().map(|(id, v)| (id as u32, squared_distance(v, query))).collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.truncate(k);
        scored
    }

    /// Per-shard candidate counts for a query (drives bucket-leg timing).
    pub fn shard_candidate_counts(&self, query: &[f32]) -> Vec<u32> {
        let mut counts = vec![0u32; self.shards];
        for id in self.candidates(query) {
            counts[self.shard_of(id)] += 1;
        }
        counts
    }
}

/// Configuration of the HDSearch service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdSearchConfig {
    /// Indexed vectors.
    pub dataset_size: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// LSH tables.
    pub tables: usize,
    /// Hyperplanes per table.
    pub planes: usize,
    /// Bucket servers (dataset shards).
    pub shards: usize,
    /// Midtier worker threads.
    pub midtier_workers: usize,
    /// Bucket worker threads (total across shards).
    pub bucket_workers: usize,
    /// Pre-sampled query profiles.
    pub profile_queries: usize,
    /// Internal midtier↔bucket RPC one-way delay.
    pub tier_hop: SimDuration,
}

impl Default for HdSearchConfig {
    fn default() -> Self {
        HdSearchConfig {
            dataset_size: 4096,
            dim: 64,
            tables: 4,
            planes: 8,
            shards: 4,
            midtier_workers: 2,
            bucket_workers: 8,
            profile_queries: 256,
            tier_hop: SimDuration::from_us(12),
        }
    }
}

/// A pre-measured query cost profile.
#[derive(Debug, Clone)]
struct QueryProfile {
    shard_candidates: Vec<u32>,
}

/// The HDSearch service instance for one run.
#[derive(Debug)]
pub struct HdSearchService {
    index: LshIndex,
    profiles: Vec<QueryProfile>,
    midtier: WorkerPool,
    buckets: WorkerPool,
    config: HdSearchConfig,
    stack: StackCosts,
    jitter: Normal,
}

impl HdSearchService {
    /// Builds the dataset, the LSH index, the query profiles and the
    /// worker pools for one run.
    pub fn new(
        config: HdSearchConfig,
        server: &MachineConfig,
        env: &RunEnvironment,
        interference: &InterferenceProfile,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let mut data_rng = rng.fork(0x4453); // stable dataset across runs
        let data = clustered_dataset(config.dataset_size, config.dim, 8, &mut data_rng);
        let index = LshIndex::build(data, config.tables, config.planes, config.shards, &mut data_rng);
        // Measure real per-query candidate counts once.
        let profiles = (0..config.profile_queries.max(1))
            .map(|i| {
                let base = &clustered_dataset(1, config.dim, 1, &mut data_rng)[0];
                // Mix a real dataset point in so queries hit populated buckets.
                let anchor = (i * 17) % index.len();
                let q: Vector = index.data[anchor].iter().zip(base).map(|(a, b)| a + 0.15 * b).collect();
                QueryProfile { shard_candidates: index.shard_candidate_counts(&q) }
            })
            .collect();
        let midtier = WorkerPool::new(server, env, config.midtier_workers, interference, horizon, rng);
        let buckets = WorkerPool::new(server, env, config.bucket_workers, interference, horizon, rng);
        HdSearchService {
            index,
            profiles,
            midtier,
            buckets,
            config,
            stack: StackCosts::tcp_small_rpc(),
            jitter: Normal::new(1.0, 0.05),
        }
    }

    /// Draws the next request descriptor (a query id into the profile set).
    pub fn next_descriptor(&self, rng: &mut SimRng) -> RequestDescriptor {
        RequestDescriptor::Search { query_id: rng.next_index(self.profiles.len()) as u32 }
    }

    /// Admits a query arriving at the midtier NIC at `arrival` (stage 0:
    /// parse + LSH hashing).
    ///
    /// Path: midtier parse+hash → fan-out to every shard's bucket worker →
    /// join on the slowest leg → midtier merge → response on the wire.
    /// Stages are returned as [`StageOutcome::Continue`] so the simulation
    /// feeds each tier's queues in chronological order.
    pub fn admit(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        debug_assert!(
            matches!(desc, RequestDescriptor::Search { .. }),
            "HdSearchService got a non-search request: {desc:?}"
        );
        // Midtier: parse + LSH hashing (tables × planes × dim mults).
        let hash_cost = SimDuration::from_us_f64(
            30.0 + (self.config.tables * self.config.planes * self.config.dim) as f64 * 0.004,
        );
        let mw = self.midtier.worker_for_connection(conn);
        let jitter = self.jitter.sample(rng).max(0.5);
        let mid = self.midtier.execute(mw, arrival, hash_cost.scale(jitter), self.stack.server_softirq, rng);
        StageOutcome::Continue {
            at: mid.end + self.config.tier_hop,
            stage: 1,
            ctx: StageCtx { busy_ns: mid.busy.as_ns(), aux: 0, aux2: 0 },
        }
    }

    /// Resumes a query at a later stage (1 = bucket fan-out, 2 = merge).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stage index or a non-search descriptor.
    pub fn resume(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        stage: u8,
        ctx: StageCtx,
        now: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        let query_id = match desc {
            RequestDescriptor::Search { query_id } => *query_id as usize % self.profiles.len(),
            other => panic!("HdSearchService got a non-search request: {other:?}"),
        };
        match stage {
            1 => {
                // Fan-out: one leg per shard, in parallel on the bucket pool.
                let profile = self.profiles[query_id].shard_candidates.clone();
                let mut busy = SimDuration::from_ns(ctx.busy_ns);
                let mut join = now;
                for (shard, &cands) in profile.iter().enumerate() {
                    // Distance computations dominate: ~1.1 µs per candidate
                    // (64-dim float distance + ranking).
                    let leg_work = SimDuration::from_us_f64(35.0 + cands as f64 * 1.1)
                        .scale(self.jitter.sample(rng).max(0.5));
                    // Shard legs spread over the bucket workers, offset per
                    // connection so different requests' legs interleave.
                    let bw = (shard + conn) % self.buckets.len();
                    let leg = self.buckets.execute(bw, now, leg_work, self.stack.server_softirq, rng);
                    busy += leg.busy;
                    join = join.max(leg.end);
                }
                StageOutcome::Continue {
                    at: join + self.config.tier_hop,
                    stage: 2,
                    ctx: StageCtx { busy_ns: busy.as_ns(), aux: 0, aux2: 0 },
                }
            }
            2 => {
                // Midtier merge of per-shard top-k lists.
                let mw = self.midtier.worker_for_connection(conn);
                let merge_cost = SimDuration::from_us_f64(25.0).scale(self.jitter.sample(rng).max(0.5));
                let merge = self.midtier.execute(mw, now, merge_cost, self.stack.server_softirq, rng);
                StageOutcome::Done(ServiceCompletion {
                    response_wire: merge.end,
                    server_time: SimDuration::from_ns(ctx.busy_ns) + merge.busy,
                })
            }
            other => panic!("HdSearchService has no stage {other}"),
        }
    }

    /// The underlying LSH index (inspection / tests).
    pub fn index(&self) -> &LshIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index(seed: u64) -> (LshIndex, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let data = clustered_dataset(1024, 32, 8, &mut rng);
        let index = LshIndex::build(data, 4, 8, 4, &mut rng);
        (index, rng)
    }

    #[test]
    fn index_build_and_shape() {
        let (index, _) = small_index(1);
        assert_eq!(index.len(), 1024);
        assert_eq!(index.dim(), 32);
        assert!(!index.is_empty());
        assert!(index.shard_of(7) < 4);
    }

    #[test]
    fn identical_vector_is_always_its_own_candidate() {
        let (index, _) = small_index(2);
        for id in [0usize, 100, 500, 1023] {
            let q = index.data[id].clone();
            let cands = index.candidates(&q);
            assert!(cands.contains(&(id as u32)), "vector {id} not in its own bucket");
            // And it is the top-ranked result with distance 0.
            let top = index.query(&q, 1);
            assert_eq!(top[0].0, id as u32);
            assert!(top[0].1 < 1e-9);
        }
    }

    #[test]
    fn lsh_recall_beats_random_selection() {
        let (index, mut rng) = small_index(3);
        let mut recall_sum = 0.0;
        let trials = 30;
        for t in 0..trials {
            // Perturb a dataset point slightly: a realistic near-duplicate query.
            let anchor = (t * 31) % index.len();
            let q: Vector = index.data[anchor]
                .iter()
                .map(|&x| x + Normal::standard_sample(&mut rng) as f32 * 0.1)
                .collect();
            let truth: std::collections::HashSet<u32> =
                index.brute_force(&q, 10).into_iter().map(|(id, _)| id).collect();
            let got: std::collections::HashSet<u32> =
                index.query(&q, 10).into_iter().map(|(id, _)| id).collect();
            recall_sum += truth.intersection(&got).count() as f64 / truth.len() as f64;
        }
        let recall = recall_sum / trials as f64;
        assert!(recall > 0.5, "recall@10 = {recall}");
    }

    #[test]
    fn candidates_are_a_small_fraction_of_the_dataset() {
        let (index, mut rng) = small_index(4);
        let mut total = 0usize;
        for t in 0..20 {
            let anchor = (t * 53) % index.len();
            let q: Vector = index.data[anchor]
                .iter()
                .map(|&x| x + Normal::standard_sample(&mut rng) as f32 * 0.1)
                .collect();
            total += index.candidates(&q).len();
        }
        let avg = total as f64 / 20.0;
        assert!(avg < 800.0, "LSH is not pruning: avg candidates {avg}");
        assert!(avg > 10.0, "LSH buckets suspiciously empty: {avg}");
    }

    #[test]
    fn shard_counts_sum_to_candidate_count() {
        let (index, _) = small_index(5);
        let q = index.data[10].clone();
        let counts = index.shard_candidate_counts(&q);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, index.candidates(&q).len());
        assert_eq!(counts.len(), 4);
    }

    fn drive(
        svc: &mut HdSearchService,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> ServiceCompletion {
        let mut out = svc.admit(conn, desc, arrival, rng);
        loop {
            match out {
                StageOutcome::Done(done) => return done,
                StageOutcome::Continue { at, stage, ctx } => {
                    out = svc.resume(conn, desc, stage, ctx, at, rng)
                }
            }
        }
    }

    fn service(seed: u64) -> (HdSearchService, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = RunEnvironment::neutral();
        let cfg = HdSearchConfig { dataset_size: 1024, profile_queries: 64, ..HdSearchConfig::default() };
        let svc = HdSearchService::new(
            cfg,
            &MachineConfig::server_baseline(),
            &env,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
        (svc, rng)
    }

    #[test]
    fn service_latency_is_submillisecond_scale() {
        // The paper's framing: HDSearch has ~10× memcached's latency
        // (hundreds of µs server-side).
        let (mut svc, mut rng) = service(6);
        let mut total = SimDuration::ZERO;
        let n = 50u64;
        for i in 0..n {
            let desc = svc.next_descriptor(&mut rng);
            let arrival = SimTime::from_ms(10 * (i + 1));
            let done = drive(&mut svc, 0, &desc, arrival, &mut rng);
            total += done.response_wire.since(arrival);
        }
        let avg_us = total.as_us() / n as f64;
        assert!((150.0..1500.0).contains(&avg_us), "avg service span {avg_us} µs");
    }

    #[test]
    fn queries_with_more_candidates_take_longer() {
        let (mut svc, mut rng) = service(7);
        // Find the cheapest and dearest profiles.
        let sums: Vec<u32> = svc.profiles.iter().map(|p| p.shard_candidates.iter().sum()).collect();
        let (min_id, _) = sums.iter().enumerate().min_by_key(|(_, &s)| s).unwrap();
        let (max_id, max_sum) = sums.iter().enumerate().max_by_key(|(_, &s)| s).unwrap();
        if *max_sum == 0 {
            return; // degenerate draw; nothing to compare
        }
        let cheap = RequestDescriptor::Search { query_id: min_id as u32 };
        let dear = RequestDescriptor::Search { query_id: max_id as u32 };
        let mut cheap_total = SimDuration::ZERO;
        let mut dear_total = SimDuration::ZERO;
        for i in 0..20u64 {
            let t1 = SimTime::from_ms(20 * i + 10);
            cheap_total += drive(&mut svc, 0, &cheap, t1, &mut rng).server_time;
            let t2 = SimTime::from_ms(20 * i + 20);
            dear_total += drive(&mut svc, 0, &dear, t2, &mut rng).server_time;
        }
        assert!(dear_total >= cheap_total, "{dear_total} < {cheap_total}");
    }

    #[test]
    fn fan_out_joins_on_slowest_leg() {
        let (mut svc, mut rng) = service(8);
        let desc = svc.next_descriptor(&mut rng);
        let arrival = SimTime::from_ms(5);
        let done = drive(&mut svc, 0, &desc, arrival, &mut rng);
        // Completion must include at least midtier + hop + leg + hop + merge.
        let floor = SimDuration::from_us(30 + 12 + 35 + 12 + 25);
        assert!(done.response_wire.since(arrival) >= floor);
        // server_time accumulates every leg, so it exceeds the span of a
        // single leg.
        assert!(done.server_time >= SimDuration::from_us(100));
    }

    #[test]
    #[should_panic(expected = "non-search request")]
    fn wrong_descriptor_panics() {
        let (mut svc, mut rng) = service(9);
        svc.resume(0, &RequestDescriptor::Synthetic, 1, StageCtx::default(), SimTime::ZERO, &mut rng);
    }
}
