//! # tpv-services — the benchmark services of §IV-B
//!
//! Four services, mirroring the paper's benchmark set. Each is built as a
//! *real, functional* system (actual hash tables, an actual LSH index, an
//! actual social graph) whose request handling runs on simulated
//! [`tpv_hw::CoreResource`]s so that every Table II server knob — SMT,
//! C-states, turbo — shapes its latency exactly as in the paper:
//!
//! * [`kv`] — a memcached-like key-value store with 10 pinned worker
//!   threads and the Facebook **ETC** workload (§IV-B "Memcached").
//! * [`hdsearch`] — an image-similarity search service using
//!   locality-sensitive hashing, structured midtier → buckets
//!   (§IV-B "HDSearch").
//! * [`socialnet`] — a multi-service social-network application; we drive
//!   the `read-user-timeline` path over a Reed98-sized social graph
//!   (§IV-B "Social Network").
//! * [`synthetic`] — the tunable-service-time synthetic workload
//!   (§IV-B "Synthetic Workload").
//!
//! [`ServiceInstance`] is the uniform entry point the experiment runtime
//! drives: `descriptor()` draws the next request's resource demands and
//! `handle()` executes it against the service, returning when the response
//! hits the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fasthash;
pub mod hdsearch;
pub mod interference;
pub mod kv;
pub mod request;
pub mod service;
pub mod socialnet;
pub mod synthetic;
pub mod worker_pool;

pub use interference::InterferenceProfile;
pub use request::{NodeConn, RequestDescriptor, ServiceCompletion};
pub use service::{ServiceConfig, ServiceInstance, ServiceKind};
pub use worker_pool::WorkerPool;
