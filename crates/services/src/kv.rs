//! A memcached-like key-value store with the Facebook ETC workload.
//!
//! §IV-B: *"we run a memcached instance with 10 worker threads pinned on a
//! single socket … We configure the workload generator to recreate the ETC
//! workload from Facebook"*.
//!
//! Two layers, deliberately separated:
//!
//! * [`KvStore`] — a real, functional sharded hash table. Requests
//!   actually `get`/`set` against it (hit/miss semantics, value sizes,
//!   versioning), so the service's behaviour is grounded in real data
//!   structures rather than a bare latency constant.
//! * [`KvService`] — the timing layer: each request runs on a worker of a
//!   [`WorkerPool`] built from the server's [`MachineConfig`], with a
//!   service-time model derived from the operation and payload sizes.
//!
//! The [`EtcWorkload`] reproduces the published ETC characteristics
//! (Atikoglu et al., SIGMETRICS '12): GEV key sizes, generalized-Pareto
//! value sizes, ~30:1 GET:SET ratio, Zipf-like key popularity.

use tpv_hw::{MachineConfig, RunEnvironment};
use tpv_net::StackCosts;
use tpv_sim::dist::{GeneralizedPareto, Gev, Normal, Sampler, Zipf};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::fasthash::FxHashMap;
use crate::interference::InterferenceProfile;
use crate::request::{KvOp, RequestDescriptor, ServiceCompletion};
use crate::worker_pool::WorkerPool;

/// A stored value: size + version (payload bytes are represented, not
/// materialized, to keep memory bounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredValue {
    /// Value size in bytes.
    pub size: u32,
    /// Monotonically increasing version (bumped by each SET).
    pub version: u32,
}

/// A sharded hash-table store — the functional core of the service.
///
/// # Example
///
/// ```
/// use tpv_services::kv::KvStore;
/// let mut store = KvStore::new(16);
/// store.set(42, 100);
/// assert_eq!(store.get(42).unwrap().size, 100);
/// assert!(store.get(7).is_none());
/// ```
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<FxHashMap<u64, StoredValue>>,
    hits: u64,
    misses: u64,
}

impl KvStore {
    /// An empty store with `shards` hash-table shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        Self::with_key_capacity(shards, 0)
    }

    /// An empty store pre-sized for about `keys` resident keys spread
    /// over `shards` shards — skips the rehash chain a large preload
    /// (e.g. the ETC cache fill) would otherwise walk. Capacity is an
    /// allocation hint only; contents and lookup results are identical
    /// to [`KvStore::new`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_key_capacity(shards: usize, keys: usize) -> Self {
        assert!(shards > 0, "store needs at least one shard");
        // Headroom over the even split: Fibonacci sharding is not
        // perfectly uniform, and hash maps resize at ~7/8 load.
        let per_shard = keys / shards + keys / (4 * shards).max(1) + 8;
        KvStore {
            shards: (0..shards)
                .map(|_| FxHashMap::with_capacity_and_hasher(per_shard, Default::default()))
                .collect(),
            hits: 0,
            misses: 0,
        }
    }

    fn shard_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % self.shards.len()
    }

    /// Reads a key, recording hit/miss statistics.
    pub fn get(&mut self, key: u64) -> Option<StoredValue> {
        let shard = self.shard_of(key);
        match self.shards[shard].get(&key) {
            Some(v) => {
                self.hits += 1;
                Some(*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Writes a key, returning the previous value if any.
    pub fn set(&mut self, key: u64, size: u32) -> Option<StoredValue> {
        let shard = self.shard_of(key);
        let next_version = self.shards[shard].get(&key).map(|v| v.version + 1).unwrap_or(0);
        self.shards[shard].insert(key, StoredValue { size, version: next_version })
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit ratio so far (1.0 before any GET).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The Facebook ETC workload model (Atikoglu et al., SIGMETRICS '12).
#[derive(Debug, Clone)]
pub struct EtcWorkload {
    key_size: Gev,
    value_size: GeneralizedPareto,
    popularity: Zipf,
    keys: u64,
    get_ratio: f64,
}

impl EtcWorkload {
    /// The published ETC parameters over a keyspace of `keys` keys:
    /// key sizes GEV(30.7984, 8.20449, 0.078688), value sizes
    /// GP(0, 214.476, 0.348238), GET:SET ≈ 30:1, Zipf(0.99) popularity.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`.
    pub fn new(keys: u64) -> Self {
        assert!(keys > 0, "ETC needs a non-empty keyspace");
        EtcWorkload {
            key_size: Gev::new(30.7984, 8.20449, 0.078688),
            value_size: GeneralizedPareto::new(0.0, 214.476, 0.348238),
            popularity: Zipf::new(keys.min(1_000_000) as usize, 0.99),
            keys,
            get_ratio: 30.0 / 31.0,
        }
    }

    /// Draws the next request's descriptor.
    pub fn next_descriptor(&self, rng: &mut SimRng) -> RequestDescriptor {
        let op = if rng.next_bool(self.get_ratio) { KvOp::Get } else { KvOp::Set };
        let key = self.popularity.sample_rank(rng) as u64 % self.keys;
        let key_size = self.key_size.sample(rng).clamp(1.0, 250.0) as u32;
        let value_size = self.value_size.sample(rng).clamp(1.0, 1_000_000.0) as u32;
        RequestDescriptor::Kv { op, key, key_size, value_size }
    }
}

/// Configuration of the KV service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvConfig {
    /// Worker threads (the paper pins 10 on one socket).
    pub workers: usize,
    /// Keys preloaded into the store.
    pub preload_keys: u64,
    /// Mean pure service time of a GET at nominal frequency (~10 µs
    /// server-side processing for memcached, §I).
    pub mean_get_service: SimDuration,
    /// Execute the functional store operation for one in `fidelity`
    /// requests (1 = every request; higher = sampled, cheaper).
    pub fidelity: u32,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            workers: 10,
            preload_keys: 100_000,
            mean_get_service: SimDuration::from_us(8),
            fidelity: 16,
        }
    }
}

/// The memcached-like service instance for one run.
#[derive(Debug)]
pub struct KvService {
    store: KvStore,
    workload: EtcWorkload,
    pool: WorkerPool,
    config: KvConfig,
    stack: StackCosts,
    service_jitter: Normal,
    requests: u64,
}

impl KvService {
    /// Builds the service on `server` for a run of length `horizon`,
    /// preloading the store.
    pub fn new(
        config: KvConfig,
        server: &MachineConfig,
        env: &RunEnvironment,
        interference: &InterferenceProfile,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let mut store = KvStore::with_key_capacity(config.workers.max(1) * 4, config.preload_keys as usize);
        let workload = EtcWorkload::new(config.preload_keys);
        // Preload so GETs mostly hit (ETC is a cache-fill-then-read
        // pattern; the paper fills before measuring).
        let mut preload_rng = rng.split();
        for key in 0..config.preload_keys {
            let size = workload.value_size.sample(&mut preload_rng).clamp(1.0, 1_000_000.0) as u32;
            store.set(key, size);
        }
        let mut pool = WorkerPool::new(server, env, config.workers, interference, horizon, rng);
        pool.set_contention_coef(0.35); // hash-table walks are memory-bound
        KvService {
            store,
            workload,
            pool,
            config,
            stack: StackCosts::tcp_small_rpc(),
            service_jitter: Normal::new(1.0, 0.22),
            requests: 0,
        }
    }

    /// Draws the next request descriptor from the ETC workload.
    pub fn next_descriptor(&self, rng: &mut SimRng) -> RequestDescriptor {
        self.workload.next_descriptor(rng)
    }

    /// Handles one request arriving at the server NIC at `arrival`.
    pub fn handle(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> ServiceCompletion {
        let (op, key, value_size) = match desc {
            RequestDescriptor::Kv { op, key, value_size, .. } => (*op, *key, *value_size),
            other => panic!("KvService got a non-KV request: {other:?}"),
        };

        self.requests += 1;
        // Functional layer (sampled): really touch the hash table. The
        // default fidelity (16) takes the mask path instead of a div.
        let fidelity = self.config.fidelity as u64;
        let sampled = if fidelity.is_power_of_two() {
            self.requests & (fidelity - 1) == 0
        } else {
            self.requests.is_multiple_of(fidelity)
        };
        let stored_size = if sampled {
            match op {
                KvOp::Get => self.store.get(key).map(|v| v.size).unwrap_or(0),
                KvOp::Set => {
                    self.store.set(key, value_size);
                    value_size
                }
            }
        } else {
            value_size
        };

        // Timing layer: base cost + size-dependent serialization
        // (~0.5 µs per KiB moved) + multiplicative jitter.
        let moved = match op {
            KvOp::Get => stored_size.max(1),
            KvOp::Set => value_size,
        };
        let size_cost = SimDuration::from_us_f64(moved as f64 / 1024.0 * 0.5);
        let op_factor = match op {
            KvOp::Get => 1.0,
            KvOp::Set => 1.25, // writes invalidate + copy
        };
        let jitter = self.service_jitter.sample(rng).max(0.5);
        let service = (self.config.mean_get_service + size_cost).scale(op_factor * jitter);

        let worker = self.pool.worker_for_connection(conn);
        let grant = self.pool.execute(worker, arrival, service, self.stack.server_softirq, rng);
        ServiceCompletion { response_wire: grant.end, server_time: grant.busy }
    }

    /// The functional store (inspection / tests).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The worker pool (inspection / tests).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(server: &MachineConfig, seed: u64) -> (KvService, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = RunEnvironment::neutral();
        let cfg = KvConfig { preload_keys: 1_000, fidelity: 1, ..KvConfig::default() };
        let svc = KvService::new(
            cfg,
            server,
            &env,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
        (svc, rng)
    }

    #[test]
    fn store_get_set_roundtrip() {
        let mut s = KvStore::new(4);
        assert!(s.is_empty());
        assert!(s.set(1, 10).is_none());
        let prev = s.set(1, 20).unwrap();
        assert_eq!(prev.size, 10);
        assert_eq!(prev.version, 0);
        let cur = s.get(1).unwrap();
        assert_eq!(cur.size, 20);
        assert_eq!(cur.version, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn store_tracks_hit_ratio() {
        let mut s = KvStore::new(2);
        s.set(1, 10);
        s.get(1);
        s.get(2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(KvStore::new(1).hit_ratio(), 1.0);
    }

    #[test]
    fn etc_descriptors_have_published_shape() {
        let w = EtcWorkload::new(10_000);
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mut gets = 0u32;
        let mut key_sizes = Vec::new();
        let mut value_sizes = Vec::new();
        for _ in 0..n {
            match w.next_descriptor(&mut rng) {
                RequestDescriptor::Kv { op, key, key_size, value_size } => {
                    assert!(key < 10_000);
                    assert!((1..=250).contains(&key_size));
                    assert!(value_size >= 1);
                    if op == KvOp::Get {
                        gets += 1;
                    }
                    key_sizes.push(key_size as f64);
                    value_sizes.push(value_size as f64);
                }
                other => panic!("unexpected descriptor {other:?}"),
            }
        }
        // GET ratio ≈ 30/31 ≈ 0.968.
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.968).abs() < 0.01, "GET ratio {ratio}");
        // ETC medians: keys in the 20-40 B range, values a few hundred B.
        let km = tpv_stats_median(&key_sizes);
        assert!((25.0..40.0).contains(&km), "median key size {km}");
        let vm = tpv_stats_median(&value_sizes);
        assert!((100.0..400.0).contains(&vm), "median value size {vm}");
    }

    // Minimal local median to avoid a dev-dependency on tpv-stats.
    fn tpv_stats_median(xs: &[f64]) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn zipf_popularity_concentrates_traffic() {
        let w = EtcWorkload::new(1_000);
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            if let RequestDescriptor::Kv { key, .. } = w.next_descriptor(&mut rng) {
                counts[key as usize] += 1;
            }
        }
        let top10: u32 = {
            let mut c = counts.clone();
            c.sort_unstable_by(|a, b| b.cmp(a));
            c[..10].iter().sum()
        };
        // Zipf(0.99) over 1000 keys: top-10 keys carry >20 % of traffic.
        assert!(top10 as f64 / 50_000.0 > 0.20, "top10 share {}", top10 as f64 / 50_000.0);
    }

    #[test]
    fn handle_returns_plausible_service_time() {
        let (mut svc, mut rng) = service(&MachineConfig::server_baseline(), 3);
        let desc = svc.next_descriptor(&mut rng);
        let arrival = SimTime::from_ms(1);
        let done = svc.handle(7, &desc, arrival, &mut rng);
        let span = done.response_wire.since(arrival);
        // One request on an idle server: wake + ~10 µs service.
        assert!(span >= SimDuration::from_us(5), "span {span}");
        assert!(span <= SimDuration::from_us(120), "span {span}");
        assert!(done.server_time > SimDuration::ZERO);
    }

    #[test]
    fn sets_cost_more_than_gets() {
        let (mut svc, mut rng) = service(&MachineConfig::server_baseline(), 4);
        let mk = |op| RequestDescriptor::Kv { op, key: 5, key_size: 30, value_size: 300 };
        // Use well-separated arrivals on the same conn so no queueing.
        let mut get_total = SimDuration::ZERO;
        let mut set_total = SimDuration::ZERO;
        for i in 0..50u64 {
            let t_get = SimTime::from_ms(10 + 2 * i);
            get_total += svc.handle(1, &mk(KvOp::Get), t_get, &mut rng).server_time;
            let t_set = SimTime::from_ms(11 + 2 * i);
            set_total += svc.handle(1, &mk(KvOp::Set), t_set, &mut rng).server_time;
        }
        assert!(set_total > get_total);
    }

    #[test]
    fn queueing_emerges_under_load() {
        let (mut svc, mut rng) = service(&MachineConfig::server_baseline(), 5);
        // Same connection → same worker; arrivals every 2 µs with ~10 µs
        // service must queue.
        let mut last = SimTime::ZERO;
        for i in 0..100u64 {
            let desc = svc.next_descriptor(&mut rng);
            let done = svc.handle(3, &desc, SimTime::from_us(2 * i), &mut rng);
            assert!(done.response_wire >= last);
            last = done.response_wire;
        }
        assert!(last > SimTime::from_us(500), "no queueing visible: {last}");
    }

    #[test]
    fn preload_makes_gets_hit() {
        let (mut svc, mut rng) = service(&MachineConfig::server_baseline(), 6);
        for i in 0..2_000u64 {
            let desc = svc.next_descriptor(&mut rng);
            svc.handle((i % 16) as usize, &desc, SimTime::from_us(100 * i), &mut rng);
        }
        assert!(svc.store().hit_ratio() > 0.95, "hit ratio {}", svc.store().hit_ratio());
        assert!(svc.pool().items() > 0);
    }

    #[test]
    #[should_panic(expected = "non-KV request")]
    fn wrong_descriptor_panics() {
        let (mut svc, mut rng) = service(&MachineConfig::server_baseline(), 7);
        svc.handle(0, &RequestDescriptor::Synthetic, SimTime::ZERO, &mut rng);
    }
}
