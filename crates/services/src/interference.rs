//! Background interference on server machines.
//!
//! Even a "quiet" dedicated server runs daemons, kernel housekeeping and
//! occasional page-cache flushes. The paper's §V-C finds the *tuned*
//! configurations fail normality at high load — the signature of rare,
//! right-tailed disturbances amplified by queueing. This module models
//! them: per run, a Poisson process of CPU *spikes* lands on worker cores.
//!
//! A spike only collides with a worker when the socket is busy enough that
//! the scheduler cannot migrate it to an idle CPU, so its effective cost
//! scales with utilisation squared — negligible at the paper's 5 %
//! low-load points, queue-amplifying at 50 %+.

use serde::{Deserialize, Serialize};
use tpv_sim::dist::{Exponential, LogNormal, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

/// Interference magnitudes for a server machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceProfile {
    /// Mean spike arrival rate (per second); the per-run rate is drawn
    /// exponentially around this, so some runs are clean and some noisy.
    pub mean_spikes_per_sec: f64,
    /// Mean CPU time of one spike.
    pub mean_spike_len: SimDuration,
    /// Log-space sigma of spike lengths.
    pub spike_len_sigma: f64,
}

impl InterferenceProfile {
    /// A dedicated, well-run server: a few millisecond-scale spikes per
    /// second across the whole socket.
    pub fn quiet_server() -> Self {
        InterferenceProfile {
            mean_spikes_per_sec: 3.0,
            mean_spike_len: SimDuration::from_ms(4),
            spike_len_sigma: 0.7,
        }
    }

    /// No interference at all (unit tests, ablations).
    pub fn none() -> Self {
        InterferenceProfile {
            mean_spikes_per_sec: 0.0,
            mean_spike_len: SimDuration::ZERO,
            spike_len_sigma: 0.0,
        }
    }
}

impl Default for InterferenceProfile {
    fn default() -> Self {
        InterferenceProfile::quiet_server()
    }
}

/// The spikes drawn for one run, assigned to workers.
#[derive(Debug, Clone)]
pub struct RunInterference {
    /// Per-worker queues of `(time, cpu_len)`, each sorted by time.
    per_worker: Vec<Vec<(SimTime, SimDuration)>>,
    /// Per-worker cursor of the next undelivered spike.
    cursor: Vec<usize>,
}

impl RunInterference {
    /// Draws the run's spike schedule.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn draw(
        profile: &InterferenceProfile,
        workers: usize,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let mut per_worker = vec![Vec::new(); workers];
        if profile.mean_spikes_per_sec > 0.0 && !profile.mean_spike_len.is_zero() {
            // Per-run rate: exponential around the profile mean (heavy
            // run-to-run variation is the point).
            let run_rate = Exponential::with_mean(profile.mean_spikes_per_sec).sample(rng);
            if run_rate > 1e-9 {
                let gap = Exponential::with_mean(1.0 / run_rate);
                let len = LogNormal::with_mean(profile.mean_spike_len.as_us(), profile.spike_len_sigma);
                let mut t_s = gap.sample(rng); // seconds since run start
                while t_s < horizon.as_secs() {
                    let t = SimTime::from_ns((t_s * 1e9) as u64);
                    let worker = rng.next_index(workers);
                    per_worker[worker].push((t, len.sample_us(rng)));
                    t_s += gap.sample(rng);
                }
            }
        }
        let cursor = vec![0; workers];
        RunInterference { per_worker, cursor }
    }

    /// Empty schedule (no interference).
    pub fn empty(workers: usize) -> Self {
        RunInterference { per_worker: vec![Vec::new(); workers], cursor: vec![0; workers] }
    }

    /// Pops every spike on `worker` due at or before `now`, returning the
    /// raw `(time, cpu)` pairs. Most requests find nothing due, so the
    /// caller can defer computing its collision factor until this
    /// returns non-empty (see `WorkerPool::execute`).
    pub fn due_spikes_raw(&mut self, worker: usize, now: SimTime) -> Vec<(SimTime, SimDuration)> {
        let spikes = &self.per_worker[worker];
        let cur = &mut self.cursor[worker];
        let start = *cur;
        while *cur < spikes.len() && spikes[*cur].0 <= now {
            *cur += 1;
        }
        spikes[start..*cur].to_vec()
    }

    /// Pops every spike on `worker` due at or before `now`, returning the
    /// `(time, effective_cpu)` pairs. `collision_factor` in `[0,1]` scales
    /// the spike's effective cost (utilisation-dependent migration).
    pub fn due_spikes(
        &mut self,
        worker: usize,
        now: SimTime,
        collision_factor: f64,
    ) -> Vec<(SimTime, SimDuration)> {
        let f = collision_factor.clamp(0.0, 1.0);
        self.due_spikes_raw(worker, now)
            .into_iter()
            .filter_map(|(t, len)| {
                let eff = len.scale(f);
                (!eff.is_zero()).then_some((t, eff))
            })
            .collect()
    }

    /// Total number of spikes drawn for the run.
    pub fn total_spikes(&self) -> usize {
        self.per_worker.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_draws_nothing() {
        let mut rng = SimRng::seed_from_u64(1);
        let ri =
            RunInterference::draw(&InterferenceProfile::none(), 10, SimDuration::from_secs(10), &mut rng);
        assert_eq!(ri.total_spikes(), 0);
    }

    #[test]
    fn rate_controls_spike_count_on_average() {
        let mut rng = SimRng::seed_from_u64(2);
        let profile = InterferenceProfile::quiet_server();
        let runs = 200;
        let total: usize = (0..runs)
            .map(|_| RunInterference::draw(&profile, 10, SimDuration::from_secs(1), &mut rng).total_spikes())
            .sum();
        let mean = total as f64 / runs as f64;
        // Mean of Exp(3) rate over 1 s ⇒ ~3 spikes, very dispersed.
        assert!((1.0..6.0).contains(&mean), "mean spikes {mean}");
    }

    #[test]
    fn spike_counts_vary_heavily_between_runs() {
        let mut rng = SimRng::seed_from_u64(3);
        let profile = InterferenceProfile::quiet_server();
        let counts: Vec<usize> = (0..50)
            .map(|_| RunInterference::draw(&profile, 10, SimDuration::from_secs(1), &mut rng).total_spikes())
            .collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(distinct.len() >= 5, "counts {counts:?}");
        assert!(counts.contains(&0), "some runs should be clean");
    }

    #[test]
    fn due_spikes_delivers_in_order_and_once() {
        let mut ri = RunInterference::empty(2);
        ri.per_worker[0] = vec![
            (SimTime::from_us(10), SimDuration::from_us(100)),
            (SimTime::from_us(50), SimDuration::from_us(200)),
            (SimTime::from_us(90), SimDuration::from_us(300)),
        ];
        let due = ri.due_spikes(0, SimTime::from_us(60), 1.0);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].0, SimTime::from_us(10));
        // Already-delivered spikes do not repeat.
        let again = ri.due_spikes(0, SimTime::from_us(60), 1.0);
        assert!(again.is_empty());
        // Worker 1 has none.
        assert!(ri.due_spikes(1, SimTime::from_us(60), 1.0).is_empty());
    }

    #[test]
    fn collision_factor_scales_cost() {
        let mut ri = RunInterference::empty(1);
        ri.per_worker[0] = vec![(SimTime::from_us(1), SimDuration::from_us(1000))];
        let due = ri.due_spikes(0, SimTime::from_us(5), 0.25);
        assert_eq!(due[0].1, SimDuration::from_us(250));
        // Zero collision factor drops the spike entirely.
        let mut ri2 = RunInterference::empty(1);
        ri2.per_worker[0] = vec![(SimTime::from_us(1), SimDuration::from_us(1000))];
        assert!(ri2.due_spikes(0, SimTime::from_us(5), 0.0).is_empty());
    }
}
