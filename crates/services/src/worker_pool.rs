//! A pool of pinned service workers on a server machine.
//!
//! Mirrors the paper's deployment style: "we run a memcached instance with
//! 10 worker threads pinned on a single socket". Each worker is a
//! [`CoreResource`] of the server's [`MachineConfig`], so server-side
//! C-states (the C1E study) and SMT (the SMT study) act here:
//!
//! * **Connection affinity** — requests of a connection always hit the
//!   same worker (memcached's dispatch), so bursty clients concentrate
//!   load.
//! * **SMT** — with SMT *off*, kernel softirq work executes on the worker
//!   cores and is serialized into the request path *and* the worker's
//!   budget; with SMT *on*, softirq runs on sibling hardware threads:
//!   still serial in the latency path, but the worker core is free sooner,
//!   at the price of sibling-contention inflation under load.
//! * **Interference** — the per-run background spikes land on workers,
//!   scaled by the utilisation-dependent collision factor.

use tpv_hw::{CoreGrant, CoreResource, MachineConfig, RunEnvironment};
use tpv_sim::dist::{Exponential, Sampler};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::interference::{InterferenceProfile, RunInterference};

/// A FIFO pool of workers with connection affinity.
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<CoreResource>,
    /// The core NIC interrupts land on; its wake path (IRQ + softirq
    /// dispatch) precedes every request and is subject to the same
    /// package-idle gating as the workers.
    irq_core: CoreResource,
    machine: MachineConfig,
    interference: RunInterference,
    started: SimTime,
    contention_coef: f64,
    /// Running Σ of worker busy time in ns — identical to summing
    /// `busy_time()` over `workers`, maintained incrementally so the
    /// per-request utilisation check does not walk every core.
    workers_busy_sum_ns: u64,
    /// Running max of worker and IRQ-core `busy_until` — busy horizons
    /// only move forward, so the max is maintainable in O(1).
    socket_busy_max: SimTime,
}

/// Package-coupled states (C1E and deeper) only engage when the whole
/// socket has been quiet relative to the state's residency; this divisor
/// turns observed socket-wide idleness into the governor's effective
/// prediction cap. The value calibrates the C1E effect to appear at the
/// paper's 10K QPS point and vanish by 50K (Fig. 3).
const SOCKET_IDLE_DIVISOR: u64 = 3;

/// CPU cost of the IRQ + softirq dispatch leg preceding worker handling.
const IRQ_DISPATCH_COST: SimDuration = SimDuration::from_ns(500);

/// Outcome of executing one request leg on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGrant {
    /// When the leg finished.
    pub end: SimTime,
    /// Busy time consumed (work only, excluding queueing).
    pub busy: SimDuration,
    /// Wake-path latency paid by the worker (the server-side C-state
    /// effect).
    pub wake_latency: SimDuration,
    /// Queueing delay behind earlier requests on the same worker.
    pub queue_wait: SimDuration,
}

impl WorkerPool {
    /// Creates `n` workers of `machine` in run environment `env`, with a
    /// per-run interference schedule over `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        machine: &MachineConfig,
        env: &RunEnvironment,
        n: usize,
        interference: &InterferenceProfile,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        assert!(n > 0, "worker pool needs at least one worker");
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let mut core = CoreResource::new(machine, env);
            core.set_active_cores_estimate(n as u32);
            workers.push(core);
        }
        let mut irq_core = CoreResource::new(machine, env);
        irq_core.set_active_cores_estimate(n as u32);
        WorkerPool {
            workers,
            irq_core,
            machine: *machine,
            interference: RunInterference::draw(interference, n, horizon, rng),
            started: SimTime::ZERO,
            contention_coef: 0.2,
            workers_busy_sum_ns: 0,
            socket_busy_max: SimTime::ZERO,
        }
    }

    /// Sets the memory/LLC-contention coefficient: per-request work
    /// inflates by `1 + coef × utilisation`. Memory-bound services (a KV
    /// store walking hash chains) set this high; cache-resident busy
    /// loops (the synthetic service) set it to zero.
    pub fn set_contention_coef(&mut self, coef: f64) {
        self.contention_coef = coef.max(0.0);
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker a connection's requests are dispatched to.
    pub fn worker_for_connection(&self, conn: usize) -> usize {
        // Fibonacci hashing spreads sequential connection ids evenly.
        let mixed = (conn as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 31;
        (mixed % self.workers.len() as u64) as usize
    }

    /// Pool-wide utilisation so far at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        debug_assert_eq!(
            self.workers_busy_sum_ns,
            self.workers.iter().map(|w| w.busy_time().as_ns()).sum::<u64>(),
            "incremental busy sum drifted from the per-worker truth"
        );
        let span = now.since(self.started).as_ns().max(1) as f64;
        (self.workers_busy_sum_ns as f64 / (span * self.workers.len() as f64)).min(1.0)
    }

    /// Executes one request leg on `worker`: injects any due interference,
    /// applies the SMT softirq placement policy, and runs `service_work`.
    ///
    /// `softirq` is the kernel network work for this request; where it
    /// runs depends on the machine's SMT setting (see module docs).
    pub fn execute(
        &mut self,
        worker: usize,
        arrival: SimTime,
        service_work: SimDuration,
        softirq: SimDuration,
        rng: &mut SimRng,
    ) -> PoolGrant {
        let smt_on = self.machine.smt.enabled;

        // The running aggregates stand in for walking every core: total
        // busy time (utilisation) and the latest busy-until (package
        // idleness), both maintained after each acquire below.
        let util = self.utilization(arrival);

        // Background spikes collide with workers only when the socket is
        // busy enough that the scheduler cannot migrate them to an idle
        // logical CPU. With SMT on, twice the logical CPUs exist for the
        // same worker count, so collisions are rarer and a colliding
        // spike only costs sibling contention, not a full blockage.
        // Spikes are sparse, so the collision `powf` is only paid when
        // one is actually due.
        let due = self.interference.due_spikes_raw(worker, arrival);
        if !due.is_empty() {
            let logical_share = if smt_on { 0.75 } else { 1.0 };
            // x^1.5 as x·√x: both operations are IEEE-exact, so this is
            // pinned like the polynomial kernels but correctly rounded
            // (≤ ~1.5 ulp) and an order of magnitude cheaper than the
            // exp(1.5·ln x) composition.
            let x = util * logical_share;
            let collision = (x * x.sqrt()).clamp(0.0, 1.0);
            for (t, len) in due {
                let effective = len.scale(collision);
                let effective = if smt_on { effective.scale(0.85) } else { effective };
                if !effective.is_zero() {
                    let before = self.workers[worker].busy_time().as_ns();
                    let grant = self.workers[worker].acquire(t, effective, rng);
                    self.workers_busy_sum_ns += self.workers[worker].busy_time().as_ns() - before;
                    self.socket_busy_max = self.socket_busy_max.max(grant.end);
                }
            }
        }
        let socket_busy_until = self.socket_busy_max;

        // Softirq placement (the SMT mechanism of §V-A):
        //  - SMT off: softirq serialized on the worker core - it is part
        //    of both the latency path and the worker's busy budget.
        //  - SMT on: softirq on the sibling - the request still waits for
        //    it (serial RX path) but the worker core stays free; the
        //    worker's own work inflates with sibling contention.
        let (work_on_worker, path_delay, inflation) = if smt_on {
            (service_work, softirq, self.machine.smt.service_inflation(util))
        } else {
            (service_work + softirq, SimDuration::ZERO, 1.0)
        };

        // Package-coupled idle states (C1E+) need the whole socket quiet;
        // cap the governor's prediction with socket-wide idleness.
        let socket_idle =
            if arrival >= socket_busy_until { arrival.since(socket_busy_until) } else { SimDuration::ZERO };
        let hint = Some(SimDuration::from_ns(socket_idle.as_ns() / SOCKET_IDLE_DIVISOR));

        // The IRQ/softirq dispatch core wakes first (it pays the same
        // package-gated wake path), then the worker.
        let irq = self.irq_core.acquire_with_hint(arrival, IRQ_DISPATCH_COST, rng, hint);
        self.socket_busy_max = self.socket_busy_max.max(irq.end);

        // Memory/LLC contention: per-request work inflates as the socket
        // fills (shared cache and memory bandwidth pressure), which is
        // what makes measured latency climb with load well before
        // saturation (the paper's Fig. 2a/2b slopes).
        let contention = 1.0 + self.contention_coef * util;
        let mut work = work_on_worker.scale(inflation * contention);

        // Kernel scheduling hiccups: even a tuned server occasionally
        // preempts a worker for tens of microseconds (timers, RCU, IRQ
        // rebalancing). This is the baseline tail that makes a healthy
        // p99 sit ~2x the average at low load (Fig. 2b).
        if rng.next_bool(0.012) {
            work += Exponential::with_mean(35.0).sample_us(rng);
        }
        let before = self.workers[worker].busy_time().as_ns();
        let grant: CoreGrant = self.workers[worker].acquire_with_hint(irq.end + path_delay, work, rng, hint);
        self.workers_busy_sum_ns += self.workers[worker].busy_time().as_ns() - before;
        self.socket_busy_max = self.socket_busy_max.max(grant.end);
        PoolGrant {
            end: grant.end,
            busy: work + IRQ_DISPATCH_COST,
            wake_latency: irq.wake_latency + grant.wake_latency,
            queue_wait: grant.queue_wait,
        }
    }

    /// Total wake-ups taken from each C-state across all workers.
    pub fn wakes_by_state(&self) -> [u64; 4] {
        let mut acc = [0u64; 4];
        for w in &self.workers {
            let ws = w.wakes_by_state();
            for i in 0..4 {
                acc[i] += ws[i];
            }
        }
        acc
    }

    /// Total requests executed.
    pub fn items(&self) -> u64 {
        self.workers.iter().map(|w| w.items()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_hw::CStatePolicy;

    fn quiet_pool(machine: &MachineConfig, n: usize, seed: u64) -> (WorkerPool, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = RunEnvironment::neutral();
        let pool = WorkerPool::new(
            machine,
            &env,
            n,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
        (pool, rng)
    }

    #[test]
    fn affinity_is_stable_and_in_range() {
        let (pool, _) = quiet_pool(&MachineConfig::server_baseline(), 10, 1);
        for conn in 0..160 {
            let w = pool.worker_for_connection(conn);
            assert!(w < 10);
            assert_eq!(w, pool.worker_for_connection(conn), "affinity must be stable");
        }
        // All workers get some connection out of 160.
        let used: std::collections::HashSet<_> = (0..160).map(|c| pool.worker_for_connection(c)).collect();
        assert!(used.len() >= 8, "affinity too skewed: {used:?}");
    }

    #[test]
    fn smt_off_serializes_softirq_on_worker() {
        let mut srv = MachineConfig::server_baseline();
        srv.variability = tpv_hw::env::VariabilityProfile::none();
        let (mut pool, mut rng) = quiet_pool(&srv, 1, 2);
        let g = pool.execute(
            0,
            SimTime::from_us(100),
            SimDuration::from_us(10),
            SimDuration::from_us(2),
            &mut rng,
        );
        // End = arrival + wake + 12 µs of work (no queue).
        let total = g.end.since(SimTime::from_us(100));
        assert!(total >= SimDuration::from_us(12), "total {total}");
        assert_eq!(g.queue_wait, SimDuration::ZERO);
    }

    #[test]
    fn smt_on_keeps_worker_budget_smaller() {
        let mut on = MachineConfig::server_baseline().with_smt(true);
        on.variability = tpv_hw::env::VariabilityProfile::none();
        let mut off = MachineConfig::server_baseline();
        off.variability = tpv_hw::env::VariabilityProfile::none();
        let (mut pool_on, mut r1) = quiet_pool(&on, 1, 3);
        let (mut pool_off, mut r2) = quiet_pool(&off, 1, 3);
        // Saturate with back-to-back requests; SMT-on worker accrues less
        // busy time per request, so it finishes the batch sooner.
        let mut end_on = SimTime::ZERO;
        let mut end_off = SimTime::ZERO;
        for i in 0..200 {
            let at = SimTime::from_us(i); // arrivals faster than service
            end_on = pool_on.execute(0, at, SimDuration::from_us(10), SimDuration::from_us(2), &mut r1).end;
            end_off = pool_off.execute(0, at, SimDuration::from_us(10), SimDuration::from_us(2), &mut r2).end;
        }
        assert!(end_on < end_off, "SMT on {end_on} !< SMT off {end_off}");
    }

    #[test]
    fn c1e_server_pays_wake_on_idle_arrivals() {
        let mut c1e = MachineConfig::server_baseline().with_cstates(CStatePolicy::UpToC1E);
        c1e.variability = tpv_hw::env::VariabilityProfile::none();
        let mut c1 = MachineConfig::server_baseline();
        c1.variability = tpv_hw::env::VariabilityProfile::none();
        let (mut pool_c1e, mut r1) = quiet_pool(&c1e, 1, 4);
        let (mut pool_c1, mut r2) = quiet_pool(&c1, 1, 4);
        // Arrivals 500 µs apart: the worker idles in between.
        let mut wake_c1e = SimDuration::ZERO;
        let mut wake_c1 = SimDuration::ZERO;
        for i in 1..=20u64 {
            let at = SimTime::from_us(500 * i);
            wake_c1e +=
                pool_c1e.execute(0, at, SimDuration::from_us(10), SimDuration::ZERO, &mut r1).wake_latency;
            wake_c1 +=
                pool_c1.execute(0, at, SimDuration::from_us(10), SimDuration::ZERO, &mut r2).wake_latency;
        }
        assert!(wake_c1e > wake_c1, "C1E wakes {wake_c1e} !> C1 wakes {wake_c1}");
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let (mut pool, mut rng) = quiet_pool(&MachineConfig::server_baseline(), 2, 5);
        assert_eq!(pool.utilization(SimTime::from_us(1)), 0.0);
        pool.execute(0, SimTime::ZERO, SimDuration::from_us(50), SimDuration::ZERO, &mut rng);
        let u = pool.utilization(SimTime::from_us(100));
        assert!(u > 0.2 && u <= 0.5, "utilization {u}");
        assert_eq!(pool.items(), 1);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn interference_spikes_delay_busy_pools() {
        let mut srv = MachineConfig::server_baseline();
        srv.variability = tpv_hw::env::VariabilityProfile::none();
        let env = RunEnvironment::neutral();
        let profile = InterferenceProfile {
            mean_spikes_per_sec: 2000.0,
            mean_spike_len: SimDuration::from_ms(1),
            spike_len_sigma: 0.1,
        };
        let mut rng = SimRng::seed_from_u64(11);
        let mut noisy = WorkerPool::new(&srv, &env, 1, &profile, SimDuration::from_secs(1), &mut rng);
        let mut rng2 = SimRng::seed_from_u64(11);
        let mut clean = WorkerPool::new(
            &srv,
            &env,
            1,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng2,
        );
        // Drive the pools to high utilisation so spikes collide.
        let mut end_noisy = SimTime::ZERO;
        let mut end_clean = SimTime::ZERO;
        for i in 0..50_000u64 {
            let at = SimTime::from_us(i * 12);
            end_noisy = noisy.execute(0, at, SimDuration::from_us(10), SimDuration::ZERO, &mut rng).end;
            end_clean = clean.execute(0, at, SimDuration::from_us(10), SimDuration::ZERO, &mut rng2).end;
        }
        assert!(end_noisy > end_clean, "spikes had no effect");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        WorkerPool::new(
            &MachineConfig::server_baseline(),
            &RunEnvironment::neutral(),
            0,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
    }
}
