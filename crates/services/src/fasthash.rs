//! A deterministic multiply-xor hasher for the services' integer-keyed
//! tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~10x more than a
//! multiply-xor mix, and every simulated request walks at least one
//! hash table (the KV store, the LSH buckets). Simulation tables hash
//! *simulated* keys — there is no adversary — so the cheap mix is the
//! right trade.
//!
//! Safety for determinism: the services only ever `get`/`insert` on
//! these maps, never iterate, so the hasher cannot influence simulated
//! results — swapping it is bit-identical by construction. (Iterating a
//! `HashMap` in a way that feeds the RNG or the event order would make
//! the hasher semantically visible; keep it that way.)

use std::hash::{BuildHasher, Hasher};

/// `BuildHasher` for [`FxHasher`] (stateless, deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// Firefox-style multiply-xor hasher: one rotate, one xor, one multiply
/// per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

/// Odd multiplier with good bit dispersion (from Firefox's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_disperses() {
        let h = |n: u64| {
            let mut hasher = FxBuildHasher.build_hasher();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42), "same input, same hash");
        // Sequential keys land in distinct, well-spread values.
        let hashes: Vec<u64> = (0..1_000).map(h).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 1_000, "collisions on sequential keys");
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..500u64 {
            map.insert(k, (k * 3) as u32);
        }
        for k in 0..500u64 {
            assert_eq!(map.get(&k), Some(&((k * 3) as u32)));
        }
        assert_eq!(map.get(&999), None);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths zero-pad differently only through chunking;
        // just assert both produce stable non-zero output.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }
}
