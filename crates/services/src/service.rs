//! The uniform service interface the experiment runtime drives.

use tpv_hw::{MachineConfig, RunEnvironment};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::hdsearch::{HdSearchConfig, HdSearchService};
use crate::interference::InterferenceProfile;
use crate::kv::{KvConfig, KvService};
use crate::request::{RequestDescriptor, ServiceCompletion, StageCtx, StageOutcome};
use crate::socialnet::{SocialConfig, SocialNetworkService};
use crate::synthetic::{SyntheticConfig, SyntheticService};

/// Which benchmark service to run, with its parameters (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceKind {
    /// Memcached-like KV store with the ETC workload.
    Memcached(KvConfig),
    /// HDSearch LSH similarity search.
    HdSearch(HdSearchConfig),
    /// DeathStarBench-like Social Network (read-user-timeline).
    SocialNetwork(SocialConfig),
    /// Tunable synthetic service.
    Synthetic(SyntheticConfig),
}

impl ServiceKind {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceKind::Memcached(_) => "memcached",
            ServiceKind::HdSearch(_) => "hdsearch",
            ServiceKind::SocialNetwork(_) => "socialnet",
            ServiceKind::Synthetic(_) => "synthetic",
        }
    }
}

/// Service + environment parameters for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The benchmark.
    pub kind: ServiceKind,
    /// Background interference on the server machine.
    pub interference: InterferenceProfile,
}

impl ServiceConfig {
    /// A service with the default quiet-server interference.
    pub fn new(kind: ServiceKind) -> Self {
        ServiceConfig { kind, interference: InterferenceProfile::quiet_server() }
    }

    /// A service with no interference (deterministic tests/ablations).
    pub fn without_interference(kind: ServiceKind) -> Self {
        ServiceConfig { kind, interference: InterferenceProfile::none() }
    }
}

/// A live service instance for one run.
///
/// Variant sizes differ widely (the KV store holds its hash shards
/// inline); instances are created once per run and never moved on the
/// hot path, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServiceInstance {
    /// Memcached-like KV.
    Memcached(KvService),
    /// HDSearch.
    HdSearch(HdSearchService),
    /// Social Network.
    SocialNetwork(SocialNetworkService),
    /// Synthetic.
    Synthetic(SyntheticService),
}

impl ServiceInstance {
    /// Instantiates the configured service on `server` for one run.
    pub fn new(
        config: &ServiceConfig,
        server: &MachineConfig,
        env: &RunEnvironment,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        match config.kind {
            ServiceKind::Memcached(c) => {
                ServiceInstance::Memcached(KvService::new(c, server, env, &config.interference, horizon, rng))
            }
            ServiceKind::HdSearch(c) => ServiceInstance::HdSearch(HdSearchService::new(
                c,
                server,
                env,
                &config.interference,
                horizon,
                rng,
            )),
            ServiceKind::SocialNetwork(c) => ServiceInstance::SocialNetwork(SocialNetworkService::new(
                c,
                server,
                env,
                &config.interference,
                horizon,
                rng,
            )),
            ServiceKind::Synthetic(c) => ServiceInstance::Synthetic(SyntheticService::new(
                c,
                server,
                env,
                &config.interference,
                horizon,
                rng,
            )),
        }
    }

    /// Draws the next request's resource demands.
    pub fn next_descriptor(&self, rng: &mut SimRng) -> RequestDescriptor {
        match self {
            ServiceInstance::Memcached(s) => s.next_descriptor(rng),
            ServiceInstance::HdSearch(s) => s.next_descriptor(rng),
            ServiceInstance::SocialNetwork(s) => s.next_descriptor(rng),
            ServiceInstance::Synthetic(s) => s.next_descriptor(rng),
        }
    }

    /// Admits a request arriving at the server NIC (stage 0).
    ///
    /// `conn` is the connection-affinity key workers dispatch on. A
    /// single-client runtime passes the bare connection id; multi-node
    /// topologies pass [`crate::request::NodeConn::affinity_key`] so two
    /// nodes' connection spaces stay disjoint.
    ///
    /// Single-stage services (Memcached, Synthetic) complete immediately;
    /// multi-tier services return [`StageOutcome::Continue`] and must be
    /// driven through [`resume`](Self::resume) by the simulation's event
    /// loop so all worker queues are fed in chronological order.
    pub fn admit(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        match self {
            ServiceInstance::Memcached(s) => StageOutcome::Done(s.handle(conn, desc, arrival, rng)),
            ServiceInstance::HdSearch(s) => s.admit(conn, desc, arrival, rng),
            ServiceInstance::SocialNetwork(s) => s.admit(conn, desc, arrival, rng),
            ServiceInstance::Synthetic(s) => StageOutcome::Done(s.handle(conn, desc, arrival, rng)),
        }
    }

    /// Resumes a multi-stage request at `stage`.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-stage service or an unknown stage.
    pub fn resume(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        stage: u8,
        ctx: StageCtx,
        now: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        match self {
            ServiceInstance::HdSearch(s) => s.resume(conn, desc, stage, ctx, now, rng),
            ServiceInstance::SocialNetwork(s) => s.resume(conn, desc, stage, ctx, now, rng),
            other => panic!("{:?} has no stages to resume", std::mem::discriminant(other)),
        }
    }

    /// Convenience for tests and probes: drives one request through all
    /// its stages immediately (no interleaving with other requests —
    /// realistic only at low request rates).
    pub fn handle_to_completion(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> ServiceCompletion {
        let mut outcome = self.admit(conn, desc, arrival, rng);
        loop {
            match outcome {
                StageOutcome::Done(done) => return done,
                StageOutcome::Continue { at, stage, ctx } => {
                    outcome = self.resume(conn, desc, stage, ctx, at, rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_report_keys() {
        assert_eq!(ServiceKind::Memcached(KvConfig::default()).name(), "memcached");
        assert_eq!(ServiceKind::HdSearch(HdSearchConfig::default()).name(), "hdsearch");
        assert_eq!(ServiceKind::SocialNetwork(SocialConfig::default()).name(), "socialnet");
        assert_eq!(ServiceKind::Synthetic(SyntheticConfig::default()).name(), "synthetic");
    }

    #[test]
    fn every_service_round_trips_one_request() {
        let kinds = [
            ServiceKind::Memcached(KvConfig { preload_keys: 500, ..KvConfig::default() }),
            ServiceKind::HdSearch(HdSearchConfig {
                dataset_size: 512,
                profile_queries: 16,
                ..HdSearchConfig::default()
            }),
            ServiceKind::SocialNetwork(SocialConfig { users: 100, ..SocialConfig::default() }),
            ServiceKind::Synthetic(SyntheticConfig::default()),
        ];
        let server = MachineConfig::server_baseline();
        for kind in kinds {
            let mut rng = SimRng::seed_from_u64(1);
            let env = RunEnvironment::neutral();
            let cfg = ServiceConfig::without_interference(kind);
            let mut svc = ServiceInstance::new(&cfg, &server, &env, SimDuration::from_secs(1), &mut rng);
            let desc = svc.next_descriptor(&mut rng);
            let arrival = SimTime::from_ms(1);
            let done = svc.handle_to_completion(0, &desc, arrival, &mut rng);
            assert!(done.response_wire > arrival, "{}: response before arrival", kind.name());
            assert!(done.server_time > SimDuration::ZERO, "{}: no server time", kind.name());
        }
    }

    #[test]
    fn interference_presets_differ() {
        let kind = ServiceKind::Synthetic(SyntheticConfig::default());
        let with = ServiceConfig::new(kind);
        let without = ServiceConfig::without_interference(kind);
        assert!(with.interference.mean_spikes_per_sec > 0.0);
        assert_eq!(without.interference.mean_spikes_per_sec, 0.0);
    }
}
