//! Request descriptors and completions — the contract between workload,
//! generator and service.
//!
//! The *workload generator* decides **when** a request is issued and with
//! what resource demands (§II: "load intensity … and resource demands");
//! the *service* decides how long it takes. `RequestDescriptor` carries
//! the resource demands; [`ServiceCompletion`] carries the server-side
//! outcome.

use tpv_sim::{SimDuration, SimTime};

/// A key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get,
    /// Write a key.
    Set,
}

/// Resource demands of one request, drawn by the service's workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestDescriptor {
    /// A memcached-style request (ETC workload).
    Kv {
        /// Operation type.
        op: KvOp,
        /// Key identity (popularity-ranked).
        key: u64,
        /// Key size in bytes (ETC: GEV-distributed).
        key_size: u32,
        /// Value size in bytes (ETC: generalized-Pareto-distributed).
        value_size: u32,
    },
    /// An HDSearch image-similarity query.
    Search {
        /// Which of the pre-generated query vectors to run.
        query_id: u32,
    },
    /// A Social Network `read-user-timeline` request.
    Timeline {
        /// The user whose timeline is read.
        user: u32,
    },
    /// A synthetic-service request.
    Synthetic,
}

impl RequestDescriptor {
    /// Approximate request payload size on the wire, for stack-cost
    /// scaling.
    pub fn request_bytes(&self) -> usize {
        match self {
            RequestDescriptor::Kv { op, key_size, value_size, .. } => match op {
                KvOp::Get => *key_size as usize + 24,
                KvOp::Set => *key_size as usize + *value_size as usize + 32,
            },
            RequestDescriptor::Search { .. } => 64 * 4 + 32, // a feature vector
            RequestDescriptor::Timeline { .. } => 64,
            RequestDescriptor::Synthetic => 32,
        }
    }
}

/// Identity of a request's origin in a multi-node topology: which client
/// node sent it, on which of that node's connections.
///
/// Services dispatch work by connection affinity
/// (`WorkerPool::worker_for_connection` and friends take a `usize` key).
/// In a fleet, two nodes' connection 0 must not collapse onto the same
/// affinity key, and the key must not depend on a node's *declaration
/// order* — per-node results are pinned by content-addressed seeds, so
/// permuting the fleet declaration must not move any node's requests to
/// different workers. `affinity_key` therefore mixes a caller-supplied
/// content-derived node identity with the node-local connection id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeConn {
    /// Content-derived identity of the sending node. The reserved value 0
    /// means "single-node topology" and keys admission by the bare
    /// connection id, exactly as the historical single-client runtime did.
    pub node_key: u64,
    /// Node-local connection id.
    pub conn: u32,
}

impl NodeConn {
    /// The key for a connection of a single-node topology.
    pub fn single(conn: u32) -> Self {
        NodeConn { node_key: 0, conn }
    }

    /// The `usize` affinity key services dispatch on.
    ///
    /// With `node_key == 0` this is exactly `conn`; otherwise the node
    /// identity is Fibonacci-mixed so distinct nodes' connection spaces
    /// land on well-separated keys.
    pub fn affinity_key(self) -> usize {
        if self.node_key == 0 {
            self.conn as usize
        } else {
            self.node_key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(self.conn as u64) as usize
        }
    }
}

/// What the server did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCompletion {
    /// When the response left the server (onto the wire).
    pub response_wire: SimTime,
    /// Pure server-side busy time attributable to the request (excludes
    /// queueing), for utilisation accounting.
    pub server_time: SimDuration,
}

/// Context carried between stages of a multi-stage request.
///
/// Kept small and `Copy` so it can ride inside simulation events. The
/// meaning of `aux`/`aux2` is service-specific (e.g. the assembled post
/// count, or a cache-hit flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCtx {
    /// Server busy time accumulated by earlier stages (ns).
    pub busy_ns: u64,
    /// Service-specific payload.
    pub aux: u32,
    /// Service-specific payload.
    pub aux2: u32,
}

/// Outcome of admitting or resuming a request on a service.
///
/// Multi-tier services (HDSearch, Social Network) process a request as a
/// chain of stages; each stage ends either with the response on the wire
/// or with a continuation the simulation schedules as an event. This is
/// what keeps every worker's queue fed in chronological order — the
/// defining property of a FIFO system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageOutcome {
    /// The response left the server.
    Done(ServiceCompletion),
    /// The request continues at `at` with the given stage index.
    Continue {
        /// When the next stage's input arrives (after internal RPC hops).
        at: SimTime,
        /// Next stage index (service-specific).
        stage: u8,
        /// Carried context.
        ctx: StageCtx,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_affinity_key_is_the_bare_connection() {
        for conn in [0u32, 7, 159] {
            assert_eq!(NodeConn::single(conn).affinity_key(), conn as usize);
        }
    }

    #[test]
    fn fleet_affinity_keys_do_not_collide_across_nodes() {
        let mut keys = std::collections::HashSet::new();
        for node_key in [0x1111_2222_3333_4444u64, 0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef] {
            for conn in 0..160 {
                assert!(
                    keys.insert(NodeConn { node_key, conn }.affinity_key()),
                    "collision at node {node_key:x} conn {conn}"
                );
            }
        }
        // Keys are stable: same identity, same key.
        let k = NodeConn { node_key: 42, conn: 3 };
        assert_eq!(k.affinity_key(), k.affinity_key());
    }

    #[test]
    fn request_sizes_reflect_payloads() {
        let get = RequestDescriptor::Kv { op: KvOp::Get, key: 1, key_size: 30, value_size: 300 };
        let set = RequestDescriptor::Kv { op: KvOp::Set, key: 1, key_size: 30, value_size: 300 };
        assert!(set.request_bytes() > get.request_bytes());
        assert_eq!(get.request_bytes(), 54);
        let q = RequestDescriptor::Search { query_id: 0 };
        assert!(q.request_bytes() > 200);
        assert!(RequestDescriptor::Synthetic.request_bytes() < 64);
        assert_eq!(RequestDescriptor::Timeline { user: 3 }.request_bytes(), 64);
    }
}
