//! Request descriptors and completions — the contract between workload,
//! generator and service.
//!
//! The *workload generator* decides **when** a request is issued and with
//! what resource demands (§II: "load intensity … and resource demands");
//! the *service* decides how long it takes. `RequestDescriptor` carries
//! the resource demands; [`ServiceCompletion`] carries the server-side
//! outcome.

use tpv_sim::{SimDuration, SimTime};

/// A key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get,
    /// Write a key.
    Set,
}

/// Resource demands of one request, drawn by the service's workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestDescriptor {
    /// A memcached-style request (ETC workload).
    Kv {
        /// Operation type.
        op: KvOp,
        /// Key identity (popularity-ranked).
        key: u64,
        /// Key size in bytes (ETC: GEV-distributed).
        key_size: u32,
        /// Value size in bytes (ETC: generalized-Pareto-distributed).
        value_size: u32,
    },
    /// An HDSearch image-similarity query.
    Search {
        /// Which of the pre-generated query vectors to run.
        query_id: u32,
    },
    /// A Social Network `read-user-timeline` request.
    Timeline {
        /// The user whose timeline is read.
        user: u32,
    },
    /// A synthetic-service request.
    Synthetic,
}

impl RequestDescriptor {
    /// Approximate request payload size on the wire, for stack-cost
    /// scaling.
    pub fn request_bytes(&self) -> usize {
        match self {
            RequestDescriptor::Kv { op, key_size, value_size, .. } => match op {
                KvOp::Get => *key_size as usize + 24,
                KvOp::Set => *key_size as usize + *value_size as usize + 32,
            },
            RequestDescriptor::Search { .. } => 64 * 4 + 32, // a feature vector
            RequestDescriptor::Timeline { .. } => 64,
            RequestDescriptor::Synthetic => 32,
        }
    }
}

/// What the server did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCompletion {
    /// When the response left the server (onto the wire).
    pub response_wire: SimTime,
    /// Pure server-side busy time attributable to the request (excludes
    /// queueing), for utilisation accounting.
    pub server_time: SimDuration,
}

/// Context carried between stages of a multi-stage request.
///
/// Kept small and `Copy` so it can ride inside simulation events. The
/// meaning of `aux`/`aux2` is service-specific (e.g. the assembled post
/// count, or a cache-hit flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCtx {
    /// Server busy time accumulated by earlier stages (ns).
    pub busy_ns: u64,
    /// Service-specific payload.
    pub aux: u32,
    /// Service-specific payload.
    pub aux2: u32,
}

/// Outcome of admitting or resuming a request on a service.
///
/// Multi-tier services (HDSearch, Social Network) process a request as a
/// chain of stages; each stage ends either with the response on the wire
/// or with a continuation the simulation schedules as an event. This is
/// what keeps every worker's queue fed in chronological order — the
/// defining property of a FIFO system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageOutcome {
    /// The response left the server.
    Done(ServiceCompletion),
    /// The request continues at `at` with the given stage index.
    Continue {
        /// When the next stage's input arrives (after internal RPC hops).
        at: SimTime,
        /// Next stage index (service-specific).
        stage: u8,
        /// Carried context.
        ctx: StageCtx,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_reflect_payloads() {
        let get = RequestDescriptor::Kv { op: KvOp::Get, key: 1, key_size: 30, value_size: 300 };
        let set = RequestDescriptor::Kv { op: KvOp::Set, key: 1, key_size: 30, value_size: 300 };
        assert!(set.request_bytes() > get.request_bytes());
        assert_eq!(get.request_bytes(), 54);
        let q = RequestDescriptor::Search { query_id: 0 };
        assert!(q.request_bytes() > 200);
        assert!(RequestDescriptor::Synthetic.request_bytes() < 64);
        assert_eq!(RequestDescriptor::Timeline { user: 3 }.request_bytes(), 64);
    }
}
