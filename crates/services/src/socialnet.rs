//! Social Network: the multi-service application of §IV-B.
//!
//! Mirrors the DeathStarBench deployment the paper uses: the social graph
//! is initialized from a Reed98-sized dataset (962 users, ~18.8 K edges),
//! the database is filled with posts before each run (`compose-post`), and
//! the measured workload is **read-user-timeline** only.
//!
//! The application is a DAG of services, each with its own worker pool on
//! the server machine: `nginx` frontend → `user-timeline` service →
//! `cache` (memcached-backed timeline cache) with `storage` (MongoDB-like)
//! on a miss, plus per-post assembly work. End-to-end latency lands in the
//! 2–3 ms range of the paper's Fig. 6, with a storage-tail-driven p99.

use tpv_hw::{MachineConfig, RunEnvironment};
use tpv_net::StackCosts;
use tpv_sim::dist::{LogNormal, Normal, Sampler, Zipf};
use tpv_sim::{SimDuration, SimRng, SimTime};

use crate::interference::InterferenceProfile;
use crate::request::{RequestDescriptor, ServiceCompletion, StageCtx, StageOutcome};
use crate::worker_pool::WorkerPool;

/// A directed social graph (follower → followee edges).
#[derive(Debug)]
pub struct SocialGraph {
    followees: Vec<Vec<u32>>,
}

impl SocialGraph {
    /// Generates a Reed98-like graph: `users` nodes and roughly
    /// `mean_degree` followees each, with Zipf-distributed popularity
    /// (a few celebrities, many leaves).
    ///
    /// # Panics
    ///
    /// Panics if `users == 0`.
    pub fn generate(users: u32, mean_degree: f64, rng: &mut SimRng) -> Self {
        assert!(users > 0, "graph needs users");
        let popularity = Zipf::new(users as usize, 1.0);
        let mut followees = vec![Vec::new(); users as usize];
        let edges = (users as f64 * mean_degree) as usize;
        for _ in 0..edges {
            let follower = rng.next_index(users as usize);
            let followee = popularity.sample_rank(rng);
            if follower != followee && !followees[follower].contains(&(followee as u32)) {
                followees[follower].push(followee as u32);
            }
        }
        SocialGraph { followees }
    }

    /// Number of users.
    pub fn users(&self) -> u32 {
        self.followees.len() as u32
    }

    /// Total number of edges.
    pub fn edges(&self) -> usize {
        self.followees.iter().map(Vec::len).sum()
    }

    /// The accounts `user` follows.
    pub fn followees(&self, user: u32) -> &[u32] {
        &self.followees[user as usize]
    }
}

/// A stored post.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Post {
    /// Author.
    pub user: u32,
    /// Body length in bytes.
    pub len: u32,
    /// Sequence number (acts as the timestamp).
    pub seq: u64,
}

/// The post database, filled with `compose-post` before each run
/// (the paper: "before each run we fill the database of the application
/// with posts using compose-post queries").
#[derive(Debug, Default)]
pub struct PostStore {
    by_user: Vec<Vec<Post>>,
    total: u64,
}

impl PostStore {
    /// An empty store for `users` users.
    pub fn new(users: u32) -> Self {
        PostStore { by_user: vec![Vec::new(); users as usize], total: 0 }
    }

    /// Composes (stores) a post.
    pub fn compose(&mut self, user: u32, len: u32) {
        let seq = self.total;
        self.total += 1;
        self.by_user[user as usize].push(Post { user, len, seq });
    }

    /// The latest `k` posts of a user, newest first.
    pub fn latest(&self, user: u32, k: usize) -> Vec<Post> {
        let posts = &self.by_user[user as usize];
        posts.iter().rev().take(k).copied().collect()
    }

    /// Total stored posts.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no posts are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Configuration of the Social Network service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialConfig {
    /// Users in the social graph (Reed98: 962).
    pub users: u32,
    /// Mean followees per user (Reed98: ~19.6 each way; the generator
    /// uses followees only).
    pub mean_degree: f64,
    /// Posts composed per user before the run.
    pub posts_per_user: u32,
    /// Timeline length assembled per request.
    pub timeline_len: usize,
    /// Timeline-cache hit probability.
    pub cache_hit: f64,
    /// Execute the functional graph/store reads for one in `fidelity`
    /// requests.
    pub fidelity: u32,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            users: 962,
            mean_degree: 19.6,
            posts_per_user: 8,
            timeline_len: 10,
            cache_hit: 0.62,
            fidelity: 8,
        }
    }
}

/// The Social Network application instance for one run.
#[derive(Debug)]
pub struct SocialNetworkService {
    graph: SocialGraph,
    posts: PostStore,
    frontend: WorkerPool,
    timeline: WorkerPool,
    cache: WorkerPool,
    storage: WorkerPool,
    config: SocialConfig,
    stack: StackCosts,
    user_pick: Zipf,
    jitter: Normal,
    storage_latency: LogNormal,
    requests: u64,
}

impl SocialNetworkService {
    /// Builds the graph, fills the post store, and creates the per-service
    /// worker pools.
    pub fn new(
        config: SocialConfig,
        server: &MachineConfig,
        env: &RunEnvironment,
        interference: &InterferenceProfile,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let mut data_rng = rng.fork(0x534e); // stable graph across runs
        let graph = SocialGraph::generate(config.users, config.mean_degree, &mut data_rng);
        let mut posts = PostStore::new(config.users);
        for user in 0..config.users {
            for _ in 0..config.posts_per_user {
                let len = 40 + data_rng.next_below(200) as u32;
                posts.compose(user, len);
            }
        }
        SocialNetworkService {
            graph,
            posts,
            frontend: WorkerPool::new(server, env, 2, interference, horizon, rng),
            timeline: WorkerPool::new(server, env, 4, interference, horizon, rng),
            cache: WorkerPool::new(server, env, 2, interference, horizon, rng),
            storage: WorkerPool::new(server, env, 2, interference, horizon, rng),
            config,
            stack: StackCosts::tcp_small_rpc(),
            user_pick: Zipf::new(config.users as usize, 0.8),
            jitter: Normal::new(1.0, 0.08),
            storage_latency: LogNormal::with_mean(2600.0, 0.85), // µs
            requests: 0,
        }
    }

    /// Draws the next request: a read-user-timeline for a Zipf-popular user.
    pub fn next_descriptor(&self, rng: &mut SimRng) -> RequestDescriptor {
        RequestDescriptor::Timeline { user: self.user_pick.sample_rank(rng) as u32 }
    }

    /// Intra-node RPC hop between services (Docker bridge).
    fn hop() -> SimDuration {
        SimDuration::from_us(10)
    }

    fn jitter_factor(&self, rng: &mut SimRng) -> f64 {
        self.jitter.sample(rng).max(0.5)
    }

    /// Admits a read-user-timeline request (stage 0: the nginx frontend).
    ///
    /// The DAG continues through [`resume`](Self::resume): user-timeline →
    /// cache/storage → timeline assembly → response via nginx. Each stage
    /// is a [`StageOutcome::Continue`] so the simulation feeds every
    /// service's queue in chronological order.
    pub fn admit(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        debug_assert!(
            matches!(desc, RequestDescriptor::Timeline { .. }),
            "SocialNetworkService got a non-timeline request: {desc:?}"
        );
        self.requests += 1;
        let fw = self.frontend.worker_for_connection(conn);
        let f = self.jitter_factor(rng);
        let fe_work = SimDuration::from_us_f64(220.0).scale(f);
        let fe = self.frontend.execute(fw, arrival, fe_work, self.stack.server_softirq, rng);
        StageOutcome::Continue {
            at: fe.end + Self::hop(),
            stage: 1,
            ctx: StageCtx { busy_ns: fe.busy.as_ns(), aux: 0, aux2: 0 },
        }
    }

    /// Resumes a request at a later DAG stage (1 = user-timeline,
    /// 2 = cache/storage, 3 = assembly, 4 = response via nginx).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stage index or a non-timeline descriptor.
    pub fn resume(
        &mut self,
        conn: usize,
        desc: &RequestDescriptor,
        stage: u8,
        ctx: StageCtx,
        now: SimTime,
        rng: &mut SimRng,
    ) -> StageOutcome {
        let user = match desc {
            RequestDescriptor::Timeline { user } => *user % self.config.users,
            other => panic!("SocialNetworkService got a non-timeline request: {other:?}"),
        };
        let mut busy = SimDuration::from_ns(ctx.busy_ns);
        match stage {
            1 => {
                // user-timeline service.
                let tw = self.timeline.worker_for_connection(conn);
                let f = self.jitter_factor(rng);
                let tl_work = SimDuration::from_us_f64(380.0).scale(f);
                let tl = self.timeline.execute(tw, now, tl_work, self.stack.server_softirq, rng);
                busy += tl.busy;
                StageOutcome::Continue {
                    at: tl.end + Self::hop(),
                    stage: 2,
                    ctx: StageCtx { busy_ns: busy.as_ns(), aux: 0, aux2: 0 },
                }
            }
            2 => {
                // Timeline cache, storage on a miss.
                let hit = rng.next_bool(self.config.cache_hit);
                let end = if hit {
                    let cw = self.cache.worker_for_connection(conn);
                    let f = self.jitter_factor(rng);
                    let c_work = SimDuration::from_us_f64(130.0).scale(f);
                    let c = self.cache.execute(cw, now, c_work, self.stack.server_softirq, rng);
                    busy += c.busy;
                    c.end
                } else {
                    let sw = self.storage.worker_for_connection(conn);
                    let s_work = self.storage_latency.sample_us(rng);
                    let s = self.storage.execute(sw, now, s_work, self.stack.server_softirq, rng);
                    busy += s.busy;
                    s.end
                };
                // Functional layer (sampled): walk the real graph and post
                // store to assemble the timeline that stage 3 serializes.
                let mut timeline_posts = self.config.timeline_len as u32;
                if self.requests.is_multiple_of(self.config.fidelity as u64) {
                    let mut collected: Vec<Post> = Vec::new();
                    for &fo in self.graph.followees(user).iter().take(32) {
                        collected.extend(self.posts.latest(fo, 3));
                    }
                    collected.sort_by_key(|p| std::cmp::Reverse(p.seq));
                    collected.truncate(self.config.timeline_len);
                    timeline_posts = collected.len() as u32;
                }
                StageOutcome::Continue {
                    at: end + Self::hop(),
                    stage: 3,
                    ctx: StageCtx { busy_ns: busy.as_ns(), aux: timeline_posts, aux2: 0 },
                }
            }
            3 => {
                // Assemble the timeline (per-post serialization on the
                // timeline service).
                let tw = self.timeline.worker_for_connection(conn);
                let f = self.jitter_factor(rng);
                let asm_work = SimDuration::from_us_f64(12.0 * ctx.aux.max(1) as f64).scale(f);
                let asm = self.timeline.execute(tw, now, asm_work, self.stack.server_softirq, rng);
                busy += asm.busy;
                StageOutcome::Continue {
                    at: asm.end + Self::hop(),
                    stage: 4,
                    ctx: StageCtx { busy_ns: busy.as_ns(), aux: 0, aux2: 0 },
                }
            }
            4 => {
                // Response back through nginx.
                let fw = self.frontend.worker_for_connection(conn);
                let f = self.jitter_factor(rng);
                let out_work = SimDuration::from_us_f64(90.0).scale(f);
                let out = self.frontend.execute(fw, now, out_work, self.stack.server_softirq, rng);
                busy += out.busy;
                StageOutcome::Done(ServiceCompletion { response_wire: out.end, server_time: busy })
            }
            other => panic!("SocialNetworkService has no stage {other}"),
        }
    }

    /// The social graph (inspection / tests).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The post store (inspection / tests).
    pub fn posts(&self) -> &PostStore {
        &self.posts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_reed98_scale() {
        let mut rng = SimRng::seed_from_u64(1);
        let g = SocialGraph::generate(962, 19.6, &mut rng);
        assert_eq!(g.users(), 962);
        // Dedup/self-loop removal loses a few edges; expect the right
        // order of magnitude (Reed98: ~18.8K directed followee edges).
        let e = g.edges();
        assert!((10_000..19_000).contains(&e), "edges {e}");
    }

    #[test]
    fn graph_popularity_is_skewed() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = SocialGraph::generate(500, 20.0, &mut rng);
        // Count in-degree (how often each user is followed).
        let mut indeg = vec![0u32; 500];
        for u in 0..500 {
            for &f in g.followees(u) {
                indeg[f as usize] += 1;
            }
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top = indeg[..10].iter().sum::<u32>() as f64;
        let total = indeg.iter().sum::<u32>() as f64;
        assert!(top / total > 0.10, "celebrity share {}", top / total);
    }

    #[test]
    fn post_store_orders_newest_first() {
        let mut s = PostStore::new(3);
        assert!(s.is_empty());
        s.compose(1, 100);
        s.compose(1, 200);
        s.compose(2, 300);
        let latest = s.latest(1, 5);
        assert_eq!(latest.len(), 2);
        assert!(latest[0].seq > latest[1].seq);
        assert_eq!(latest[0].len, 200);
        assert_eq!(s.len(), 3);
        assert!(s.latest(0, 5).is_empty());
    }

    fn drive(
        svc: &mut SocialNetworkService,
        conn: usize,
        desc: &RequestDescriptor,
        arrival: SimTime,
        rng: &mut SimRng,
    ) -> ServiceCompletion {
        let mut out = svc.admit(conn, desc, arrival, rng);
        loop {
            match out {
                StageOutcome::Done(done) => return done,
                StageOutcome::Continue { at, stage, ctx } => {
                    out = svc.resume(conn, desc, stage, ctx, at, rng)
                }
            }
        }
    }

    fn service(seed: u64) -> (SocialNetworkService, SimRng) {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = RunEnvironment::neutral();
        let cfg = SocialConfig { users: 200, fidelity: 1, ..SocialConfig::default() };
        let svc = SocialNetworkService::new(
            cfg,
            &MachineConfig::server_baseline(),
            &env,
            &InterferenceProfile::none(),
            SimDuration::from_secs(1),
            &mut rng,
        );
        (svc, rng)
    }

    #[test]
    fn timeline_latency_is_millisecond_scale() {
        let (mut svc, mut rng) = service(3);
        let n = 100u64;
        let mut total = SimDuration::ZERO;
        for i in 0..n {
            let desc = svc.next_descriptor(&mut rng);
            let arrival = SimTime::from_ms(20 * (i + 1));
            let done = drive(&mut svc, (i % 20) as usize, &desc, arrival, &mut rng);
            total += done.response_wire.since(arrival);
        }
        let avg_ms = total.as_ms() / n as f64;
        // The paper's Fig. 6: ~2-3 ms average end-to-end.
        assert!((1.0..4.5).contains(&avg_ms), "avg {avg_ms} ms");
    }

    #[test]
    fn cache_misses_are_slower_than_hits() {
        let (mut svc, mut rng) = service(4);
        // Force hit/miss by setting the probability.
        svc.config.cache_hit = 1.0;
        let desc = RequestDescriptor::Timeline { user: 1 };
        let t1 = SimTime::from_ms(100);
        let hit_span = drive(&mut svc, 0, &desc, t1, &mut rng).response_wire.since(t1);
        svc.config.cache_hit = 0.0;
        let t2 = SimTime::from_ms(300);
        let miss_span = drive(&mut svc, 0, &desc, t2, &mut rng).response_wire.since(t2);
        assert!(miss_span > hit_span, "miss {miss_span} !> hit {hit_span}");
    }

    #[test]
    fn functional_path_reads_real_posts() {
        let (mut svc, mut rng) = service(5);
        // fidelity=1 ⇒ every request walks the graph; just ensure the
        // store was populated and requests complete.
        assert!(!svc.posts().is_empty());
        let desc = svc.next_descriptor(&mut rng);
        let done = drive(&mut svc, 0, &desc, SimTime::from_ms(1), &mut rng);
        assert!(done.server_time > SimDuration::from_us(500));
    }

    #[test]
    #[should_panic(expected = "non-timeline request")]
    fn wrong_descriptor_panics() {
        let (mut svc, mut rng) = service(6);
        svc.resume(0, &RequestDescriptor::Synthetic, 1, StageCtx::default(), SimTime::ZERO, &mut rng);
    }
}
