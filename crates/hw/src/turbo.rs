//! Turbo mode (MSR `0x1a0` in the paper's methodology).
//!
//! Turbo lets cores exceed nominal frequency "under certain conditions
//! (i.e., thermal capacity, number of active cores)". Both conditions are
//! modelled: the achievable frequency falls with the number of active
//! cores (the published bin ladder shape) and wanders run to run with the
//! thermal budget — one of the reasons repeated runs of a *tuned* system
//! still differ (§V-C).

use serde::{Deserialize, Serialize};

use crate::spec::CpuSpec;

/// Turbo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurboConfig {
    /// Whether turbo is enabled (Table II: on for both clients, off for
    /// the server baseline).
    pub enabled: bool,
}

impl TurboConfig {
    /// Turbo on.
    pub fn on() -> Self {
        TurboConfig { enabled: true }
    }

    /// Turbo off.
    pub fn off() -> Self {
        TurboConfig { enabled: false }
    }

    /// Achievable frequency (GHz) with `active_cores` busy cores out of
    /// `total_cores`, before thermal drift.
    ///
    /// Models the standard bin ladder: full turbo for ≤2 active cores,
    /// linearly decaying to roughly the all-core turbo midpoint when every
    /// core is busy.
    pub fn frequency_ghz(&self, spec: &CpuSpec, active_cores: u32, total_cores: u32) -> f64 {
        if !self.enabled {
            return spec.nominal_ghz;
        }
        let total = total_cores.max(1);
        let active = active_cores.min(total);
        if active <= 2 {
            return spec.turbo_ghz;
        }
        // All-core turbo sits between nominal and max turbo; interpolate.
        let all_core = spec.nominal_ghz + 0.5 * (spec.turbo_ghz - spec.nominal_ghz);
        let frac = (active - 2) as f64 / (total - 2).max(1) as f64;
        spec.turbo_ghz - frac * (spec.turbo_ghz - all_core)
    }

    /// Speedup factor (≤ 1 means faster than nominal) of work executed at
    /// the turbo frequency with the given occupancy and per-run thermal
    /// factor (1.0 = nominal thermal headroom).
    pub fn work_scale(&self, spec: &CpuSpec, active_cores: u32, total_cores: u32, thermal: f64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let f = self.frequency_ghz(spec, active_cores, total_cores) * thermal.clamp(0.5, 1.5);
        (spec.nominal_ghz / f).clamp(0.2, 4.0)
    }
}

impl Default for TurboConfig {
    fn default() -> Self {
        TurboConfig::on()
    }
}

impl std::fmt::Display for TurboConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.enabled { "on" } else { "off" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::xeon_silver_4114()
    }

    #[test]
    fn disabled_turbo_is_nominal() {
        let t = TurboConfig::off();
        assert_eq!(t.frequency_ghz(&spec(), 1, 10), 2.2);
        assert_eq!(t.work_scale(&spec(), 1, 10, 1.0), 1.0);
    }

    #[test]
    fn few_active_cores_reach_max_turbo() {
        let t = TurboConfig::on();
        assert_eq!(t.frequency_ghz(&spec(), 1, 10), 3.0);
        assert_eq!(t.frequency_ghz(&spec(), 2, 10), 3.0);
    }

    #[test]
    fn frequency_decays_with_occupancy() {
        let t = TurboConfig::on();
        let mut last = f64::INFINITY;
        for active in 1..=10 {
            let f = t.frequency_ghz(&spec(), active, 10);
            assert!(f <= last);
            assert!(f >= spec().nominal_ghz, "turbo never goes below nominal");
            last = f;
        }
        // All-core turbo is the interpolation midpoint: 2.6 GHz.
        assert!((t.frequency_ghz(&spec(), 10, 10) - 2.6).abs() < 1e-9);
    }

    #[test]
    fn turbo_work_is_faster_than_nominal() {
        let t = TurboConfig::on();
        let scale = t.work_scale(&spec(), 1, 10, 1.0);
        assert!((scale - 2.2 / 3.0).abs() < 1e-9);
        // A thermally-throttled run is slower than a cool one.
        assert!(t.work_scale(&spec(), 4, 10, 0.9) > t.work_scale(&spec(), 4, 10, 1.0));
    }

    #[test]
    fn display() {
        assert_eq!(TurboConfig::on().to_string(), "on");
        assert_eq!(TurboConfig::off().to_string(), "off");
    }
}
