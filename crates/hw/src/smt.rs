//! Simultaneous multithreading (Table II "SMT", §V-A's server case study).
//!
//! SMT's two competing effects, both visible in the paper's Fig. 2:
//!
//! * **more logical CPUs** — with SMT on, kernel network processing
//!   (softirqs) can run on sibling threads instead of preempting the
//!   pinned service workers, which is why the paper's HP client measures a
//!   ~13 % p99 *improvement* from enabling SMT under load;
//! * **resource sharing** — two busy siblings share the core's pipelines,
//!   inflating each thread's service time.

use serde::{Deserialize, Serialize};

/// SMT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtConfig {
    /// Whether SMT is enabled (sysfs knob in the paper).
    pub enabled: bool,
    /// Slowdown of a thread when its sibling is simultaneously busy
    /// (≥ 1.0; typical for short cache-resident service loops).
    pub sibling_inflation: f64,
}

impl SmtConfig {
    /// SMT on with the default sibling inflation (1.12×).
    pub fn on() -> Self {
        SmtConfig { enabled: true, sibling_inflation: 1.12 }
    }

    /// SMT off.
    pub fn off() -> Self {
        SmtConfig { enabled: false, sibling_inflation: 1.0 }
    }

    /// Expected service-time inflation for a worker given the probability
    /// that its sibling is busy (≈ per-core utilisation).
    ///
    /// With SMT off there is no sibling, so no inflation.
    pub fn service_inflation(&self, sibling_busy_probability: f64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let p = sibling_busy_probability.clamp(0.0, 1.0);
        1.0 + p * (self.sibling_inflation - 1.0)
    }

    /// Whether kernel network work (softirq) can be offloaded to sibling
    /// hardware threads instead of stealing time from pinned workers.
    pub fn offloads_softirq(&self) -> bool {
        self.enabled
    }
}

impl Default for SmtConfig {
    fn default() -> Self {
        SmtConfig::on()
    }
}

impl std::fmt::Display for SmtConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.enabled { "on" } else { "off" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smt_off_never_inflates() {
        let s = SmtConfig::off();
        assert_eq!(s.service_inflation(1.0), 1.0);
        assert!(!s.offloads_softirq());
    }

    #[test]
    fn inflation_grows_with_sibling_occupancy() {
        let s = SmtConfig::on();
        assert_eq!(s.service_inflation(0.0), 1.0);
        let half = s.service_inflation(0.5);
        let full = s.service_inflation(1.0);
        assert!(half > 1.0 && half < full);
        assert!((full - 1.12).abs() < 1e-12);
        assert!(s.offloads_softirq());
    }

    #[test]
    fn occupancy_is_clamped() {
        let s = SmtConfig::on();
        assert_eq!(s.service_inflation(-1.0), 1.0);
        assert_eq!(s.service_inflation(2.0), s.service_inflation(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(SmtConfig::on().to_string(), "on");
        assert_eq!(SmtConfig::off().to_string(), "off");
    }
}
