//! Uncore frequency (MSR `0x620` in the paper's methodology).
//!
//! The uncore — LLC, memory controllers, I/O — has its own frequency
//! domain. In `dynamic` mode it ramps down while the package is quiet, so
//! the first memory/I/O-bound work after an idle spell runs against a slow
//! fabric. Table II: the LP client leaves it dynamic; the HP client and
//! the server pin it (`fixed`).

use serde::{Deserialize, Serialize};
use tpv_sim::SimDuration;

/// Uncore frequency scaling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UncoreMode {
    /// Uncore frequency follows package activity (the power-saving
    /// default).
    Dynamic,
    /// Uncore frequency pinned at maximum.
    Fixed,
}

impl UncoreMode {
    /// Extra latency added to the first work item after an idle span of
    /// `idle`, while the fabric ramps back up.
    ///
    /// The penalty saturates at ~8 µs for long idleness — the uncore ramp
    /// is faster than core C6 exit but not free.
    pub fn wake_penalty(self, idle: SimDuration) -> SimDuration {
        match self {
            UncoreMode::Fixed => SimDuration::ZERO,
            UncoreMode::Dynamic => {
                if idle < SimDuration::from_us(50) {
                    SimDuration::ZERO
                } else {
                    let depth = (idle.as_ns() as f64 / SimDuration::from_ms(1).as_ns() as f64).min(1.0);
                    SimDuration::from_us(8).scale(depth)
                }
            }
        }
    }
}

impl std::fmt::Display for UncoreMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UncoreMode::Dynamic => write!(f, "dynamic"),
            UncoreMode::Fixed => write!(f, "fixed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_is_free() {
        assert_eq!(UncoreMode::Fixed.wake_penalty(SimDuration::from_ms(100)), SimDuration::ZERO);
    }

    #[test]
    fn dynamic_mode_penalty_grows_then_saturates() {
        let short = UncoreMode::Dynamic.wake_penalty(SimDuration::from_us(10));
        assert_eq!(short, SimDuration::ZERO);
        let mid = UncoreMode::Dynamic.wake_penalty(SimDuration::from_us(500));
        let long = UncoreMode::Dynamic.wake_penalty(SimDuration::from_ms(5));
        let longer = UncoreMode::Dynamic.wake_penalty(SimDuration::from_ms(50));
        assert!(mid > SimDuration::ZERO);
        assert!(long > mid);
        assert_eq!(long, longer, "penalty saturates");
        assert_eq!(long, SimDuration::from_us(8));
    }

    #[test]
    fn display() {
        assert_eq!(UncoreMode::Dynamic.to_string(), "dynamic");
        assert_eq!(UncoreMode::Fixed.to_string(), "fixed");
    }
}
