//! # tpv-hw — the hardware knobs of Table II
//!
//! The paper's central claim is that *client-side hardware configuration*
//! — settings a benchmarking paper rarely reports — changes measured
//! latency enough to flip conclusions. This crate models every knob in the
//! paper's Table II as an explicit timing model:
//!
//! | Knob | Module | Mechanism modelled |
//! |---|---|---|
//! | C-states | [`cstate`] | exit latency + target residency (Skylake table), menu-style governor |
//! | Frequency driver | [`dvfs`] | `intel_pstate` vs `acpi-cpufreq` transition latency |
//! | Frequency governor | [`dvfs`] | `powersave` lets frequency fall while idle; `performance` pins it |
//! | Turbo | [`turbo`] | active-core frequency bins + per-run thermal drift |
//! | SMT | [`smt`] | logical CPUs + sibling-contention inflation |
//! | Uncore frequency | [`uncore`] | dynamic-uncore ramp penalty after idle |
//! | Tickless | [`tick`] | periodic scheduler-tick steal when `nohz` is off |
//!
//! They compose in [`MachineConfig`] (with the paper's LP / HP / server
//! presets) and act through [`CoreResource`] — the single primitive every
//! simulated thread or worker executes on. Per-run variation enters through
//! [`RunEnvironment`], redrawn when the experiment harness resets the
//! environment between runs (the paper's iid methodology, §III).
//!
//! # Example: what one wake-up costs
//!
//! ```
//! use tpv_hw::{CoreResource, MachineConfig};
//! use tpv_sim::{SimDuration, SimRng, SimTime};
//!
//! let lp = MachineConfig::low_power();
//! let mut rng = SimRng::seed_from_u64(1);
//! let env = lp.draw_environment(&mut rng);
//! let mut core = CoreResource::new(&lp, &env);
//!
//! // After 5 ms of idleness a low-power core sits in C6: the next piece of
//! // work pays a triple-digit-microsecond wake-up before it runs.
//! let g = core.acquire(SimTime::from_ms(5), SimDuration::from_us(2), &mut rng);
//! assert!(g.wake_latency >= SimDuration::from_us(50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod cstate;
pub mod dvfs;
pub mod dynamic;
pub mod env;
pub mod machine;
pub mod smt;
pub mod spec;
pub mod tick;
pub mod turbo;
pub mod uncore;

pub use crate::core::{CoreGrant, CoreResource};
pub use cstate::{CState, CStatePolicy, CStateTable};
pub use dvfs::{FreqDriver, FreqGovernor};
pub use dynamic::DynamicMachine;
pub use env::RunEnvironment;
pub use machine::MachineConfig;
pub use smt::SmtConfig;
pub use spec::CpuSpec;
pub use tick::TickConfig;
pub use turbo::TurboConfig;
pub use uncore::UncoreMode;
