//! The physical CPU the testbed models.

use serde::{Deserialize, Serialize};

/// Static description of a processor package (§IV-A's baseline system).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core when SMT is enabled.
    pub smt_ways: u32,
    /// Minimum frequency in GHz.
    pub min_ghz: f64,
    /// Nominal (base) frequency in GHz.
    pub nominal_ghz: f64,
    /// Maximum single-core turbo frequency in GHz.
    pub turbo_ghz: f64,
}

impl CpuSpec {
    /// The paper's baseline: CloudLab c220g5, 2× Intel Xeon Silver 4114
    /// (Skylake), 10 cores/socket, 2-way SMT, 0.8 / 2.2 / 3.0 GHz.
    pub fn xeon_silver_4114() -> Self {
        CpuSpec {
            sockets: 2,
            cores_per_socket: 10,
            smt_ways: 2,
            min_ghz: 0.8,
            nominal_ghz: 2.2,
            turbo_ghz: 3.0,
        }
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total logical CPUs given an SMT setting.
    pub fn logical_cpus(&self, smt_enabled: bool) -> u32 {
        if smt_enabled {
            self.physical_cores() * self.smt_ways
        } else {
            self.physical_cores()
        }
    }

    /// Logical CPUs on a single socket (services in the paper pin their
    /// workers to one socket).
    pub fn logical_cpus_per_socket(&self, smt_enabled: bool) -> u32 {
        self.logical_cpus(smt_enabled) / self.sockets
    }

    /// Slowdown of running at `ghz` relative to nominal (≥ 1 for lower
    /// frequencies).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive.
    pub fn slowdown_at(&self, ghz: f64) -> f64 {
        assert!(ghz > 0.0, "frequency must be positive, got {ghz}");
        self.nominal_ghz / ghz
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::xeon_silver_4114()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_baseline() {
        let s = CpuSpec::xeon_silver_4114();
        // "20 physical cores and 40 hardware threads".
        assert_eq!(s.physical_cores(), 20);
        assert_eq!(s.logical_cpus(true), 40);
        assert_eq!(s.logical_cpus(false), 20);
        // "nominal frequency is 2.2GHz ... minimum 0.8 GHz ... Turbo 3 GHz".
        assert_eq!(s.nominal_ghz, 2.2);
        assert_eq!(s.min_ghz, 0.8);
        assert_eq!(s.turbo_ghz, 3.0);
        assert_eq!(s.logical_cpus_per_socket(true), 20);
        assert_eq!(s.logical_cpus_per_socket(false), 10);
    }

    #[test]
    fn slowdown_is_relative_to_nominal() {
        let s = CpuSpec::default();
        assert!((s.slowdown_at(2.2) - 1.0).abs() < 1e-12);
        assert!((s.slowdown_at(0.8) - 2.75).abs() < 1e-12);
        assert!(s.slowdown_at(3.0) < 1.0);
    }
}
