//! The scheduler tick (Table II "Tickless", the `nohz` kernel knob).
//!
//! A non-tickless kernel interrupts every core periodically (CONFIG_HZ,
//! typically 250 Hz → 4 ms, or 1000 Hz → 1 ms) even when busy, stealing a
//! few microseconds each time. Table II runs both clients with tickless
//! *off* (ticks present) and the server with tickless *on*.

use serde::{Deserialize, Serialize};
use tpv_sim::SimDuration;

/// Scheduler-tick configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickConfig {
    /// Whether the kernel omits ticks on busy/idle cores (`nohz_full`).
    pub tickless: bool,
    /// Tick period when ticks are present (1 ms for CONFIG_HZ=1000).
    pub period: SimDuration,
    /// CPU time stolen by one tick.
    pub cost: SimDuration,
}

impl TickConfig {
    /// Ticks present (clients in Table II): 1 kHz, 3 µs per tick.
    pub fn ticking() -> Self {
        TickConfig { tickless: false, period: SimDuration::from_ms(1), cost: SimDuration::from_us(3) }
    }

    /// Tickless (the server in Table II).
    pub fn tickless() -> Self {
        TickConfig { tickless: true, period: SimDuration::from_ms(1), cost: SimDuration::ZERO }
    }

    /// Multiplicative stretch applied to CPU work to account for tick
    /// steals (1.0 when tickless).
    pub fn work_stretch(&self) -> f64 {
        if self.tickless || self.period.is_zero() {
            1.0
        } else {
            1.0 + self.cost.as_ns() as f64 / self.period.as_ns() as f64
        }
    }
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig::ticking()
    }
}

impl std::fmt::Display for TickConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.tickless { "on" } else { "off" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickless_is_free() {
        assert_eq!(TickConfig::tickless().work_stretch(), 1.0);
    }

    #[test]
    fn ticking_steals_a_fraction() {
        let s = TickConfig::ticking().work_stretch();
        assert!((s - 1.003).abs() < 1e-9, "stretch {s}");
    }

    #[test]
    fn display_matches_table_ii_convention() {
        // Table II prints the *tickless* row as on/off.
        assert_eq!(TickConfig::tickless().to_string(), "on");
        assert_eq!(TickConfig::ticking().to_string(), "off");
    }
}
