//! The core timing resource — where all the Table II knobs meet.
//!
//! Every simulated execution context (a mutilate worker thread, a pinned
//! memcached worker, an HDSearch bucket server) is a [`CoreResource`]: a
//! FIFO processor that, on each piece of work, may first pay the machine's
//! *wake path* — C-state exit, DVFS ramp, uncore ramp, scheduler wake —
//! depending on how long it idled and how the machine is configured.
//!
//! This is the paper's mechanism in one place: on an LP machine the wake
//! path costs tens-to-hundreds of microseconds and varies with governor
//! predictions; on an HP machine it is nearly free and nearly constant.

use tpv_sim::dist::{LogNormal, Sampler};
use tpv_sim::{FifoResource, SimDuration, SimRng, SimTime};

use crate::cstate::CState;
use crate::env::RunEnvironment;
use crate::machine::MachineConfig;

/// How a core behaves when it has nothing to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleBehavior {
    /// The thread blocks (epoll/timer); idleness enters C-states and drops
    /// frequency per the machine config. This is the normal mode.
    Sleep,
    /// The thread spins (busy-wait): the core never leaves C0 and the
    /// governor sees 100 % utilisation — no wake path at all. Used by
    /// time-insensitive busy-wait generators (§II) on their arrival loop.
    Spin,
}

/// Outcome of placing one piece of work on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreGrant {
    /// When execution began (arrival + queueing + wake).
    pub start: SimTime,
    /// When the work completed.
    pub end: SimTime,
    /// Wake-path cost paid before execution (zero if the core was busy or
    /// spinning).
    pub wake_latency: SimDuration,
    /// The C-state the core was found in.
    pub cstate: CState,
    /// Time spent waiting behind earlier work.
    pub queue_wait: SimDuration,
}

/// A simulated core/thread execution context.
///
/// # Example
///
/// ```
/// use tpv_hw::{CoreResource, MachineConfig};
/// use tpv_sim::{SimDuration, SimRng, SimTime};
///
/// let hp = MachineConfig::high_performance();
/// let mut rng = SimRng::seed_from_u64(0);
/// let env = hp.draw_environment(&mut rng);
/// let mut core = CoreResource::new(&hp, &env);
/// // HP machines poll: waking after long idleness is still cheap.
/// let g = core.acquire(SimTime::from_ms(10), SimDuration::from_us(2), &mut rng);
/// assert!(g.wake_latency <= SimDuration::from_us(5));
/// ```
#[derive(Debug, Clone)]
pub struct CoreResource {
    fifo: FifoResource,
    config: MachineConfig,
    env: RunEnvironment,
    idle_behavior: IdleBehavior,
    /// Estimated number of concurrently active cores on the socket, used
    /// for the turbo bin; callers may update it as load changes.
    active_cores_estimate: u32,
    /// EWMA of recent idle-period lengths — the menu governor's
    /// "typical interval" history, which it uses to predict the next
    /// idle period when it has no better timer hint.
    idle_ewma: Option<SimDuration>,
    wakes_by_state: [u64; 4],
    idle_by_state: [SimDuration; 4],
    total_wake_time: SimDuration,
    /// Hot-path caches, recomputed whenever the inputs they close over
    /// change (config/env swap, occupancy estimate). Pure memoization:
    /// the cached values are bit-identical to recomputing per acquire.
    cache: AcquireCache,
}

/// Per-acquire constants of a `(config, env, active_cores)` triple,
/// hoisted out of the hot loop. `acquire_with_hint` runs on every
/// simulated request leg (client send, IRQ, worker, client receive), so
/// the `ln`/divisions behind these values are worth paying exactly once.
#[derive(Debug, Clone)]
struct AcquireCache {
    /// `config.work_scale(active_cores, env)`.
    base_stretch: f64,
    /// Governor prediction noise (`None` when `prediction_sigma == 0`).
    prediction_noise: Option<LogNormal>,
    /// C-state exit jitter (`None` when `wake_jitter_sigma == 0`).
    wake_jitter: Option<LogNormal>,
}

impl AcquireCache {
    fn new(config: &MachineConfig, env: &RunEnvironment, active_cores: u32) -> Self {
        let vp = &config.variability;
        AcquireCache {
            base_stretch: config.work_scale(active_cores, env),
            prediction_noise: (vp.prediction_sigma > 0.0)
                .then(|| LogNormal::with_mean(1.0, vp.prediction_sigma)),
            wake_jitter: (vp.wake_jitter_sigma > 0.0)
                .then(|| LogNormal::with_mean(1.0, vp.wake_jitter_sigma)),
        }
    }
}

/// The menu governor's safety factor: a state is only entered when the
/// predicted idle period exceeds its target residency by this margin.
const RESIDENCY_MARGIN: f64 = 2.0;

/// EWMA smoothing factor for the idle-interval history.
const IDLE_EWMA_ALPHA: f64 = 0.3;

impl CoreResource {
    /// A sleeping-idle core of the given machine in the given run
    /// environment.
    pub fn new(config: &MachineConfig, env: &RunEnvironment) -> Self {
        CoreResource {
            fifo: FifoResource::new(),
            config: *config,
            env: *env,
            idle_behavior: IdleBehavior::Sleep,
            active_cores_estimate: 4,
            idle_ewma: None,
            wakes_by_state: [0; 4],
            idle_by_state: [SimDuration::ZERO; 4],
            total_wake_time: SimDuration::ZERO,
            cache: AcquireCache::new(config, env, 4),
        }
    }

    /// A spinning (busy-wait) core: never sleeps, never pays a wake path.
    pub fn new_spinning(config: &MachineConfig, env: &RunEnvironment) -> Self {
        let mut c = CoreResource::new(config, env);
        c.idle_behavior = IdleBehavior::Spin;
        c
    }

    /// Sets the occupancy estimate used for the turbo frequency bin.
    pub fn set_active_cores_estimate(&mut self, active: u32) {
        self.active_cores_estimate = active.max(1);
        self.cache = AcquireCache::new(&self.config, &self.env, self.active_cores_estimate);
    }

    /// Swaps this core's machine configuration and run environment
    /// mid-run — what a [`crate::DynamicMachine`] phase boundary does to
    /// every core of a node.
    ///
    /// Queue state and all accumulated statistics (busy time, wakes,
    /// idle residency, energy) survive: the machine changed, the work
    /// history did not. The governor's idle-interval history also
    /// survives — the OS keeps it across policy switches. Idle residency
    /// accrued before the switch is priced by the *new* C-state table in
    /// [`CoreResource::energy_core_secs`], an approximation that is exact
    /// whenever the phases share a processor (they model one physical
    /// machine, so they should).
    pub fn reconfigure(&mut self, config: &MachineConfig, env: &RunEnvironment) {
        self.config = *config;
        self.env = *env;
        self.cache = AcquireCache::new(config, env, self.active_cores_estimate);
    }

    /// Places `work` (expressed at nominal frequency) on this core at
    /// `now`, paying any wake path first.
    pub fn acquire(&mut self, now: SimTime, work: SimDuration, rng: &mut SimRng) -> CoreGrant {
        self.acquire_with_hint(now, work, rng, None)
    }

    /// Like [`acquire`](Self::acquire), but caps the governor's idle
    /// prediction with a socket-wide idleness hint.
    ///
    /// Deep C-states with a package component (C1E and below) are only
    /// entered when the whole socket has been quiet; server worker pools
    /// pass `min(own idle, socket idle)` here so that a server under
    /// steady load never reaches C1E even though each individual worker
    /// idles between requests — the effect behind the paper's Fig. 3
    /// (C1E hurts only at the lowest load for a smooth client).
    pub fn acquire_with_hint(
        &mut self,
        now: SimTime,
        work: SimDuration,
        rng: &mut SimRng,
        socket_idle: Option<SimDuration>,
    ) -> CoreGrant {
        let mut wake = SimDuration::ZERO;
        let mut state = CState::C0;
        let mut stretch = self.cache.base_stretch;

        let idle_gap =
            if self.fifo.is_idle_at(now) { now.since(self.fifo.busy_until()) } else { SimDuration::ZERO };

        if self.idle_behavior == IdleBehavior::Sleep && !idle_gap.is_zero() {
            // The governor chose a state when the core went idle; it could
            // not see the actual gap, only its history of recent idle
            // periods (the menu governor's "typical interval"), optionally
            // capped by package-level idleness, with per-run learned bias
            // and per-decision noise.
            let prediction_noise = match &self.cache.prediction_noise {
                Some(dist) => dist.sample(rng),
                None => 1.0,
            };
            let history = self.idle_ewma.unwrap_or(idle_gap);
            let basis = match socket_idle {
                Some(s) => history.min(s),
                None => history,
            };
            let predicted = basis.scale(self.env.governor_bias * prediction_noise / RESIDENCY_MARGIN);
            state = self.config.cstates.select_state(&self.config.cstate_table, predicted);
            // Update the governor's history with the idle period that
            // actually happened.
            self.idle_ewma = Some(match self.idle_ewma {
                Some(prev) => SimDuration::from_ns(
                    (IDLE_EWMA_ALPHA * idle_gap.as_ns() as f64
                        + (1.0 - IDLE_EWMA_ALPHA) * prev.as_ns() as f64) as u64,
                ),
                None => idle_gap,
            });

            // C-state exit.
            let exit_jitter = match &self.cache.wake_jitter {
                Some(dist) => dist.sample(rng),
                None => 1.0,
            };
            let exit = self.config.cstate_table.exit_latency(state).scale(exit_jitter);

            // DVFS ramp: a stall, plus slower execution of this work item.
            let dvfs = self.config.dvfs.wake_cost(&self.config.spec, idle_gap, self.env.dvfs_bias);
            stretch *= dvfs.slowdown_factor();

            // Uncore ramp.
            let uncore = self.config.uncore.wake_penalty(idle_gap);

            // OS wake path (interrupt → scheduler → context switch),
            // executed at the ramping frequency.
            let sched = self.config.thread_wake_cost.scale(dvfs.slowdown_factor().min(2.0));

            wake = (exit + dvfs.stall + uncore + sched).scale(self.env.wake_bias);
            self.wakes_by_state[state_index(state)] += 1;
            self.idle_by_state[state_index(state)] += idle_gap;
            self.total_wake_time += wake;
        }

        if self.idle_behavior == IdleBehavior::Spin && !idle_gap.is_zero() {
            // Busy-wait: the idle span was spent polling in C0.
            self.idle_by_state[0] += idle_gap;
        }

        let service = wake + work.scale(stretch);
        let grant = self.fifo.offer(now, service);
        CoreGrant {
            start: grant.start,
            end: grant.end,
            wake_latency: wake,
            cstate: state,
            queue_wait: grant.queue_wait,
        }
    }

    /// When the core next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.fifo.busy_until()
    }

    /// Whether the core is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.fifo.is_idle_at(now)
    }

    /// Total CPU-busy time so far.
    pub fn busy_time(&self) -> SimDuration {
        self.fifo.busy_time()
    }

    /// Number of items executed so far.
    pub fn items(&self) -> u64 {
        self.fifo.items()
    }

    /// How many wake-ups were taken from each C-state
    /// `[C0, C1, C1E, C6]`.
    pub fn wakes_by_state(&self) -> [u64; 4] {
        self.wakes_by_state
    }

    /// Cumulative time spent in wake paths.
    pub fn total_wake_time(&self) -> SimDuration {
        self.total_wake_time
    }

    /// Idle residency attributed to each C-state `[C0, C1, C1E, C6]`
    /// (C0 residency = busy-wait polling).
    pub fn idle_time_by_state(&self) -> [SimDuration; 4] {
        self.idle_by_state
    }

    /// Estimated core energy up to `now`, in core-seconds of C0-equivalent
    /// power (busy time at power 1.0, idle residency weighted by the
    /// C-state table's relative power).
    ///
    /// This is the flip side of the paper's tuning advice: `idle=poll`
    /// buys timing accuracy by burning full power while idle.
    pub fn energy_core_secs(&self, now: SimTime) -> f64 {
        let mut energy = self.fifo.busy_time().as_secs() + self.total_wake_time.as_secs();
        for (i, &idle) in self.idle_by_state.iter().enumerate() {
            let state = [CState::C0, CState::C1, CState::C1E, CState::C6][i];
            energy += idle.as_secs() * self.config.cstate_table.params(state).relative_power;
        }
        // Trailing idleness after the last work item: attribute it to the
        // state the core would settle into (C0 when spinning).
        if now > self.fifo.busy_until() {
            let trailing = now.since(self.fifo.busy_until()).as_secs();
            let settle = match self.idle_behavior {
                IdleBehavior::Spin => CState::C0,
                IdleBehavior::Sleep => self.config.cstates.deepest(),
            };
            energy += trailing * self.config.cstate_table.params(settle).relative_power;
        }
        energy
    }
}

fn state_index(s: CState) -> usize {
    match s {
        CState::C0 => 0,
        CState::C1 => 1,
        CState::C1E => 2,
        CState::C6 => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstate::CStatePolicy;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    #[test]
    fn lp_core_pays_big_wake_after_long_idle() {
        let lp = MachineConfig::low_power();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&lp, &env);
        // Consistently long (10 ms) idle periods: the governor's history
        // converges on "long" and most wakes come from C6. Individual
        // wakes vary with prediction noise, so assert on the aggregate.
        let mut t = SimTime::ZERO;
        let n = 200u64;
        for _ in 0..n {
            t += SimDuration::from_ms(10);
            core.acquire(t, SimDuration::from_us(2), &mut r);
        }
        let wakes = core.wakes_by_state();
        assert!(wakes[3] > n / 2, "C6 wakes only {} of {n}: {wakes:?}", wakes[3]);
        let mean_wake = core.total_wake_time() / n;
        // C6 exit (133 µs) + sched (~25 µs) dominate the average.
        assert!(mean_wake >= SimDuration::from_us(80), "mean wake = {mean_wake}");
    }

    #[test]
    fn hp_core_wake_is_microseconds() {
        let hp = MachineConfig::high_performance();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&hp, &env);
        let g = core.acquire(SimTime::from_ms(10), SimDuration::from_us(2), &mut r);
        assert!(g.wake_latency <= SimDuration::from_us(5), "wake = {}", g.wake_latency);
        assert_eq!(g.cstate, CState::C0);
    }

    #[test]
    fn busy_core_pays_no_wake() {
        let lp = MachineConfig::low_power();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&lp, &env);
        let g1 = core.acquire(SimTime::from_ms(5), SimDuration::from_us(100), &mut r);
        assert!(g1.wake_latency > SimDuration::ZERO);
        // Second item arrives while the first still runs: no new wake.
        let g2 =
            core.acquire(SimTime::from_ms(5) + SimDuration::from_us(10), SimDuration::from_us(5), &mut r);
        assert_eq!(g2.wake_latency, SimDuration::ZERO);
        assert_eq!(g2.cstate, CState::C0);
        assert!(g2.queue_wait > SimDuration::ZERO);
        assert!(g2.start >= g1.end);
    }

    #[test]
    fn spinning_core_never_pays() {
        let lp = MachineConfig::low_power();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new_spinning(&lp, &env);
        for ms in [1u64, 10, 100] {
            let g = core.acquire(SimTime::from_ms(ms), SimDuration::from_us(2), &mut r);
            assert_eq!(g.wake_latency, SimDuration::ZERO);
            assert_eq!(g.cstate, CState::C0);
        }
        assert_eq!(core.wakes_by_state(), [0, 0, 0, 0]);
    }

    #[test]
    fn short_idle_picks_shallow_state() {
        // Disable prediction noise so selection is deterministic.
        let mut lp = MachineConfig::low_power();
        lp.variability = crate::env::VariabilityProfile::none();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&lp, &env);
        // Prime the core so the next idle gap is exactly 50 µs.
        let g0 = core.acquire(SimTime::ZERO, SimDuration::from_us(10), &mut r);
        let next = g0.end + SimDuration::from_us(50);
        let g1 = core.acquire(next, SimDuration::from_us(2), &mut r);
        // 50 µs idle (margin-adjusted prediction 25 µs) ⇒ C1E (residency
        // 20 µs), not C6 (residency 600 µs).
        assert_eq!(g1.cstate, CState::C1E);
        assert!(g1.wake_latency < SimDuration::from_us(133));
    }

    #[test]
    fn server_baseline_caps_at_c1() {
        let mut srv = MachineConfig::server_baseline();
        srv.variability = crate::env::VariabilityProfile::none();
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&srv, &env);
        let g = core.acquire(SimTime::from_ms(50), SimDuration::from_us(10), &mut r);
        assert_eq!(g.cstate, CState::C1);
        // C1 exit (2 µs) + thread wake (3 µs): cheap.
        assert!(g.wake_latency <= SimDuration::from_us(8), "wake = {}", g.wake_latency);
    }

    #[test]
    fn c1e_policy_costs_more_than_c1_policy() {
        let mut base = MachineConfig::server_baseline();
        base.variability = crate::env::VariabilityProfile::none();
        let c1e = base.with_cstates(CStatePolicy::UpToC1E);
        let env = RunEnvironment::neutral();
        let mut r1 = rng();
        let mut r2 = rng();
        let mut core_c1 = CoreResource::new(&base, &env);
        let mut core_c1e = CoreResource::new(&c1e, &env);
        let at = SimTime::from_us(500);
        let w = SimDuration::from_us(10);
        let g1 = core_c1.acquire(at, w, &mut r1);
        let g2 = core_c1e.acquire(at, w, &mut r2);
        assert!(g2.wake_latency > g1.wake_latency);
        assert_eq!(g2.cstate, CState::C1E);
    }

    #[test]
    fn lp_work_is_stretched_by_dvfs_after_idle() {
        let mut lp = MachineConfig::low_power();
        lp.variability = crate::env::VariabilityProfile::none();
        lp.turbo = crate::turbo::TurboConfig::off(); // isolate DVFS
        let env = RunEnvironment::neutral();
        let mut r = rng();
        let mut core = CoreResource::new(&lp, &env);
        let g = core.acquire(SimTime::from_ms(10), SimDuration::from_us(10), &mut r);
        // Execution (end - start - wake) is longer than the nominal 10 µs
        // because the core ramps from 0.8 GHz.
        let exec = g.end.since(g.start).saturating_sub(g.wake_latency);
        assert!(exec > SimDuration::from_us(20), "exec = {exec}");
    }

    #[test]
    fn wake_statistics_accumulate() {
        let lp = MachineConfig::low_power();
        let env = RunEnvironment::neutral();
        let mut r = rng();
        let mut core = CoreResource::new(&lp, &env);
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            t += SimDuration::from_ms(2);
            core.acquire(t, SimDuration::from_us(3), &mut r);
        }
        let total: u64 = core.wakes_by_state().iter().sum();
        assert_eq!(total, 50);
        assert!(core.items() == 50);
        assert!(core.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn spinning_cores_burn_more_energy_than_sleeping_cores() {
        // The accuracy/energy trade-off: idle=poll keeps the core in C0.
        let lp = MachineConfig::low_power();
        let env = RunEnvironment::neutral();
        let mut r1 = rng();
        let mut r2 = rng();
        let mut sleeper = CoreResource::new(&lp, &env);
        let mut spinner = CoreResource::new_spinning(&lp, &env);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t += SimDuration::from_ms(1);
            sleeper.acquire(t, SimDuration::from_us(2), &mut r1);
            spinner.acquire(t, SimDuration::from_us(2), &mut r2);
        }
        let horizon = t + SimDuration::from_ms(1);
        let e_sleep = sleeper.energy_core_secs(horizon);
        let e_spin = spinner.energy_core_secs(horizon);
        assert!(e_spin > 2.0 * e_sleep, "spin {e_spin} !>> sleep {e_sleep}");
        // The spinner's idle residency is all C0.
        let idle = spinner.idle_time_by_state();
        assert!(idle[0] > SimDuration::from_ms(90));
        assert_eq!(idle[1] + idle[2] + idle[3], SimDuration::ZERO);
        // The sleeper's is spread across sleep states.
        let sleep_idle = sleeper.idle_time_by_state();
        assert!(sleep_idle[1] + sleep_idle[2] + sleep_idle[3] > SimDuration::from_ms(50));
    }

    #[test]
    fn energy_grows_with_time_and_includes_busy_work() {
        let hp = MachineConfig::high_performance();
        let env = RunEnvironment::neutral();
        let mut r = rng();
        let mut core = CoreResource::new(&hp, &env);
        core.acquire(SimTime::ZERO, SimDuration::from_ms(10), &mut r);
        let early = core.energy_core_secs(SimTime::from_ms(10));
        let late = core.energy_core_secs(SimTime::from_ms(20));
        assert!(early >= 0.009, "busy work must count: {early}");
        assert!(late > early, "trailing idle must count");
    }

    #[test]
    fn reconfigure_changes_the_wake_path_but_keeps_history() {
        let mut r = rng();
        let env = RunEnvironment::neutral();
        let mut core = CoreResource::new(&MachineConfig::high_performance(), &env);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_ms(2);
            core.acquire(t, SimDuration::from_us(2), &mut r);
        }
        let items_before = core.items();
        let busy_before = core.busy_time();
        assert_eq!(core.wakes_by_state()[3], 0, "HP never sleeps to C6");

        // Power budget exhausted: deep idle re-enabled mid-run.
        let lp = MachineConfig::low_power();
        core.reconfigure(&lp, &env);
        assert_eq!(core.items(), items_before, "history survives reconfiguration");
        assert_eq!(core.busy_time(), busy_before);
        for _ in 0..50 {
            t += SimDuration::from_ms(10);
            core.acquire(t, SimDuration::from_us(2), &mut r);
        }
        assert!(core.wakes_by_state()[3] > 0, "post-switch wakes come from deep states");
        assert_eq!(core.items(), items_before + 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let lp = MachineConfig::low_power();
        let env = RunEnvironment::neutral();
        let run = |seed| {
            let mut r = SimRng::seed_from_u64(seed);
            let mut core = CoreResource::new(&lp, &env);
            let mut t = SimTime::ZERO;
            let mut ends = Vec::new();
            for _ in 0..20 {
                t += SimDuration::from_us(700);
                ends.push(core.acquire(t, SimDuration::from_us(2), &mut r).end);
            }
            ends
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
