//! C-states: the idle power states of §IV-C.
//!
//! "Skylake-based processors support 4 C-states C0, C1, C1E and C6" — each
//! deeper state saves more power but costs more to leave. The timing
//! parameters below are the published Linux `intel_idle` table for
//! Skylake-SP servers (the paper's Xeon Silver 4114), and they bracket the
//! "2us to 200us" wake-up range the paper quotes.

use serde::{Deserialize, Serialize};
use tpv_sim::SimDuration;

/// A processor core idle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CState {
    /// Active — not an idle state; zero wake cost.
    C0,
    /// Halt: clock gating only.
    C1,
    /// Enhanced halt: clock gating plus a voltage/frequency drop.
    C1E,
    /// Deep sleep: core caches flushed, power gated.
    C6,
}

impl CState {
    /// All states, shallowest to deepest.
    pub const ALL: [CState; 4] = [CState::C0, CState::C1, CState::C1E, CState::C6];

    /// Short name as shown by cpuidle (`C0`, `C1`, `C1E`, `C6`).
    pub fn name(self) -> &'static str {
        match self {
            CState::C0 => "C0",
            CState::C1 => "C1",
            CState::C1E => "C1E",
            CState::C6 => "C6",
        }
    }
}

impl std::fmt::Display for CState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-state timing/power parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CStateParams {
    /// Time to resume execution after a wake event.
    pub exit_latency: SimDuration,
    /// Minimum profitable residency: the governor only enters the state if
    /// it predicts at least this much idleness.
    pub target_residency: SimDuration,
    /// Core power relative to C0 (1.0 = active power), for the energy
    /// accounting extension.
    pub relative_power: f64,
}

/// The per-state parameter table of a processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CStateTable {
    c1: CStateParams,
    c1e: CStateParams,
    c6: CStateParams,
}

impl CStateTable {
    /// The Linux `intel_idle` table for Skylake-SP (Xeon Silver 4114):
    /// C1 = 2 µs exit / 2 µs residency, C1E = 10 µs / 20 µs,
    /// C6 = 133 µs / 600 µs.
    pub fn skylake_server() -> Self {
        CStateTable {
            c1: CStateParams {
                exit_latency: SimDuration::from_us(2),
                target_residency: SimDuration::from_us(2),
                relative_power: 0.40,
            },
            c1e: CStateParams {
                exit_latency: SimDuration::from_us(10),
                target_residency: SimDuration::from_us(20),
                relative_power: 0.25,
            },
            c6: CStateParams {
                exit_latency: SimDuration::from_us(133),
                target_residency: SimDuration::from_us(600),
                relative_power: 0.05,
            },
        }
    }

    /// Parameters for a state.
    ///
    /// C0 has zero exit latency and residency by definition.
    pub fn params(&self, state: CState) -> CStateParams {
        match state {
            CState::C0 => CStateParams {
                exit_latency: SimDuration::ZERO,
                target_residency: SimDuration::ZERO,
                relative_power: 1.0,
            },
            CState::C1 => self.c1,
            CState::C1E => self.c1e,
            CState::C6 => self.c6,
        }
    }

    /// Exit latency of a state.
    pub fn exit_latency(&self, state: CState) -> SimDuration {
        self.params(state).exit_latency
    }

    /// Target residency of a state.
    pub fn target_residency(&self, state: CState) -> SimDuration {
        self.params(state).target_residency
    }
}

impl Default for CStateTable {
    fn default() -> Self {
        CStateTable::skylake_server()
    }
}

/// Which C-states the OS is allowed to use — the grub-level knob
/// (`intel_idle.max_cstate=…` / `idle=poll`) from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CStatePolicy {
    /// `idle=poll`: never leave C0. The HP client column of Table II
    /// ("C-states off").
    PollIdle,
    /// States up to and including C1 (the paper's server baseline:
    /// "C0, C1").
    UpToC1,
    /// States up to and including C1E (the server "C1E enabled" scenario
    /// of §V-A).
    UpToC1E,
    /// All states including C6 (the LP client default:
    /// "C0, C1, C1E, C6").
    UpToC6,
}

impl CStatePolicy {
    /// The deepest state this policy may enter.
    pub fn deepest(self) -> CState {
        match self {
            CStatePolicy::PollIdle => CState::C0,
            CStatePolicy::UpToC1 => CState::C1,
            CStatePolicy::UpToC1E => CState::C1E,
            CStatePolicy::UpToC6 => CState::C6,
        }
    }

    /// Whether a state is permitted under this policy.
    pub fn allows(self, state: CState) -> bool {
        state <= self.deepest()
    }

    /// The states this policy exposes, shallowest first.
    pub fn enabled_states(self) -> Vec<CState> {
        CState::ALL.iter().copied().filter(|&s| self.allows(s)).collect()
    }

    /// Menu-governor-style retrospective state selection: the deepest
    /// allowed state whose target residency fits inside the (bias-scaled)
    /// idle span.
    ///
    /// `predicted_idle` is the actual idle gap scaled by the per-run
    /// governor bias ([`crate::RunEnvironment::governor_bias`]) — the
    /// governor's learned prediction error.
    pub fn select_state(self, table: &CStateTable, predicted_idle: SimDuration) -> CState {
        let mut chosen = CState::C0;
        for &s in CState::ALL.iter().skip(1) {
            if self.allows(s) && table.target_residency(s) <= predicted_idle {
                chosen = s;
            }
        }
        chosen
    }
}

impl std::fmt::Display for CStatePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CStatePolicy::PollIdle => write!(f, "off"),
            CStatePolicy::UpToC1 => write!(f, "C0,C1"),
            CStatePolicy::UpToC1E => write!(f, "C0,C1,C1E"),
            CStatePolicy::UpToC6 => write!(f, "C0,C1,C1E,C6"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_table_matches_published_values() {
        let t = CStateTable::skylake_server();
        assert_eq!(t.exit_latency(CState::C1), SimDuration::from_us(2));
        assert_eq!(t.exit_latency(CState::C1E), SimDuration::from_us(10));
        assert_eq!(t.exit_latency(CState::C6), SimDuration::from_us(133));
        assert_eq!(t.target_residency(CState::C6), SimDuration::from_us(600));
        assert_eq!(t.exit_latency(CState::C0), SimDuration::ZERO);
        // The paper's quoted range: wake-up takes 2 µs – 200 µs.
        for s in [CState::C1, CState::C1E, CState::C6] {
            let e = t.exit_latency(s);
            assert!(e >= SimDuration::from_us(2) && e <= SimDuration::from_us(200));
        }
    }

    #[test]
    fn deeper_states_cost_more_and_save_more() {
        let t = CStateTable::default();
        let mut last_exit = SimDuration::ZERO;
        let mut last_power = 2.0;
        for s in CState::ALL {
            let p = t.params(s);
            assert!(p.exit_latency >= last_exit, "{s}: exit latency not monotone");
            assert!(p.relative_power < last_power, "{s}: power not monotone");
            assert!(p.target_residency >= p.exit_latency || s == CState::C0);
            last_exit = p.exit_latency;
            last_power = p.relative_power;
        }
    }

    #[test]
    fn policy_allows_matches_table_ii() {
        // LP client: C0,C1,C1E,C6 — everything allowed.
        assert!(CStatePolicy::UpToC6.allows(CState::C6));
        // HP client: off.
        let hp = CStatePolicy::PollIdle;
        assert_eq!(hp.deepest(), CState::C0);
        assert!(!hp.allows(CState::C1));
        // Server baseline: C0,C1.
        let srv = CStatePolicy::UpToC1;
        assert!(srv.allows(CState::C1));
        assert!(!srv.allows(CState::C1E));
        assert_eq!(srv.enabled_states(), vec![CState::C0, CState::C1]);
    }

    #[test]
    fn selection_respects_residency_gates() {
        let t = CStateTable::skylake_server();
        let p = CStatePolicy::UpToC6;
        assert_eq!(p.select_state(&t, SimDuration::from_us(1)), CState::C0);
        assert_eq!(p.select_state(&t, SimDuration::from_us(5)), CState::C1);
        assert_eq!(p.select_state(&t, SimDuration::from_us(100)), CState::C1E);
        assert_eq!(p.select_state(&t, SimDuration::from_us(600)), CState::C6);
        assert_eq!(p.select_state(&t, SimDuration::from_ms(10)), CState::C6);
    }

    #[test]
    fn selection_respects_policy_caps() {
        let t = CStateTable::skylake_server();
        // Server baseline never goes deeper than C1 even for long idleness.
        assert_eq!(CStatePolicy::UpToC1.select_state(&t, SimDuration::from_ms(50)), CState::C1);
        // C1E-enabled server stops at C1E.
        assert_eq!(CStatePolicy::UpToC1E.select_state(&t, SimDuration::from_ms(50)), CState::C1E);
        // Poll idle never sleeps.
        assert_eq!(CStatePolicy::PollIdle.select_state(&t, SimDuration::from_ms(50)), CState::C0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CState::C1E.to_string(), "C1E");
        assert_eq!(CStatePolicy::UpToC6.to_string(), "C0,C1,C1E,C6");
        assert_eq!(CStatePolicy::PollIdle.to_string(), "off");
    }
}
