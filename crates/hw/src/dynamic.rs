//! Time-varying machine state: a hardware configuration per phase.
//!
//! The paper's knobs are static per run, but on real machines they are
//! not static over a run's lifetime: turbo/power budgets exhaust and the
//! platform falls back to nominal frequency, governors ramp up or re-arm
//! deep idle once power capping kicks in, firmware flips policies under
//! thermal pressure. A [`DynamicMachine`] expresses that as one
//! [`MachineConfig`] per phase of a [`PhaseSchedule`]: given a timestamp,
//! it resolves the configuration in effect — the testbed's kernel swaps a
//! node's effective hardware state at every boundary.
//!
//! A `DynamicMachine` built with [`DynamicMachine::fixed`] (or whose
//! per-phase configs are all equal) is exactly a static machine.

use serde::{Deserialize, Serialize};
use tpv_sim::{PhaseSchedule, SimTime};

use crate::machine::MachineConfig;

/// A machine whose effective configuration is a function of time: one
/// [`MachineConfig`] per phase of a shared [`PhaseSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicMachine {
    schedule: PhaseSchedule,
    configs: Vec<MachineConfig>,
}

impl DynamicMachine {
    /// A machine that never changes — the degenerate single-phase plan.
    pub fn fixed(config: MachineConfig) -> Self {
        DynamicMachine { schedule: PhaseSchedule::single(), configs: vec![config] }
    }

    /// A machine following `configs[i]` during phase `i` of `schedule`.
    ///
    /// # Panics
    ///
    /// Panics unless `configs.len() == schedule.phase_count()`.
    pub fn new(schedule: PhaseSchedule, configs: Vec<MachineConfig>) -> Self {
        assert_eq!(configs.len(), schedule.phase_count(), "dynamic machine needs one config per phase");
        DynamicMachine { schedule, configs }
    }

    /// Turbo-budget exhaustion: `base` runs with its configured turbo
    /// until `exhausted_at`, then turbo is off for the rest of the run —
    /// the simplest sustained-load frequency decay.
    pub fn turbo_decay(base: MachineConfig, exhausted_at: SimTime) -> Self {
        DynamicMachine::new(PhaseSchedule::new(vec![exhausted_at]), vec![base, base.with_turbo(false)])
    }

    /// The phase schedule this plan follows.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// The configuration in effect during `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn config(&self, phase: usize) -> &MachineConfig {
        &self.configs[phase]
    }

    /// The configuration in effect at instant `t`.
    pub fn at(&self, t: SimTime) -> &MachineConfig {
        &self.configs[self.schedule.phase_at(t)]
    }

    /// The plan restricted to the window `[start, end)`, re-anchored so
    /// `start` becomes the new `t = 0` (see `PhaseSchedule::slice`).
    /// Configurations are copied from the phases the window covers, so a
    /// sliced decay plan reproduces the original timeline exactly.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> DynamicMachine {
        let schedule = self.schedule.slice(start, end);
        let configs = (0..schedule.phase_count())
            .map(|p| *self.at(start + schedule.phase_start(p).since(SimTime::ZERO)))
            .collect();
        DynamicMachine { schedule, configs }
    }

    /// True when no boundary actually changes the configuration — the
    /// machine is (perhaps redundantly described but) static.
    pub fn is_static(&self) -> bool {
        self.configs.windows(2).all(|pair| pair[0] == pair[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::SimDuration;

    #[test]
    fn fixed_machine_is_static_everywhere() {
        let m = DynamicMachine::fixed(MachineConfig::high_performance());
        assert!(m.is_static());
        assert_eq!(*m.at(SimTime::ZERO), MachineConfig::high_performance());
        assert_eq!(*m.at(SimTime::from_secs(100)), MachineConfig::high_performance());
        assert_eq!(m.schedule().phase_count(), 1);
    }

    #[test]
    fn resolution_follows_the_schedule() {
        let s = PhaseSchedule::stepped(SimDuration::from_ms(10), 2);
        let m = DynamicMachine::new(s, vec![MachineConfig::high_performance(), MachineConfig::low_power()]);
        assert!(!m.is_static());
        assert_eq!(*m.at(SimTime::from_ms(9)), MachineConfig::high_performance());
        assert_eq!(*m.at(SimTime::from_ms(10)), MachineConfig::low_power());
        assert_eq!(*m.config(0), MachineConfig::high_performance());
        assert_eq!(*m.config(1), MachineConfig::low_power());
    }

    #[test]
    fn turbo_decay_flips_exactly_turbo() {
        let base = MachineConfig::high_performance();
        let m = DynamicMachine::turbo_decay(base, SimTime::from_ms(50));
        assert!(m.at(SimTime::from_ms(49)).turbo.enabled);
        let after = m.at(SimTime::from_ms(50));
        assert!(!after.turbo.enabled);
        assert_eq!(after.cstates, base.cstates);
        assert_eq!(after.dvfs, base.dvfs);
    }

    #[test]
    fn slice_replays_the_covered_timeline() {
        let base = MachineConfig::high_performance();
        let m = DynamicMachine::turbo_decay(base, SimTime::from_ms(50));
        // A window straddling the decay keeps the boundary, re-anchored.
        let w = m.slice(SimTime::from_ms(40), SimTime::from_ms(60));
        assert_eq!(w.schedule().boundaries(), &[SimTime::from_ms(10)]);
        assert!(w.at(SimTime::from_ms(9)).turbo.enabled);
        assert!(!w.at(SimTime::from_ms(10)).turbo.enabled);
        // A window entirely after the decay is statically exhausted.
        let w = m.slice(SimTime::from_ms(50), SimTime::from_ms(70));
        assert!(w.is_static());
        assert!(!w.at(SimTime::ZERO).turbo.enabled);
    }

    #[test]
    fn equal_configs_count_as_static() {
        let s = PhaseSchedule::stepped(SimDuration::from_ms(5), 3);
        let hp = MachineConfig::high_performance();
        assert!(DynamicMachine::new(s, vec![hp, hp, hp]).is_static());
    }

    #[test]
    #[should_panic(expected = "one config per phase")]
    fn mismatched_lengths_rejected() {
        DynamicMachine::new(
            PhaseSchedule::stepped(SimDuration::from_ms(5), 3),
            vec![MachineConfig::high_performance()],
        );
    }
}
