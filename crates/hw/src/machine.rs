//! Whole-machine configurations — the rows of the paper's Table II.
//!
//! [`MachineConfig`] composes every knob in this crate. Three presets
//! reproduce Table II exactly:
//!
//! | Knob | LP client | HP client | Server baseline |
//! |---|---|---|---|
//! | C-states | C0,C1,C1E,C6 | off | C0,C1 |
//! | Frequency driver | intel_pstate | acpi-cpufreq | acpi-cpufreq |
//! | Frequency governor | powersave | performance | performance |
//! | Turbo | on | on | off |
//! | SMT | on | on | off |
//! | Uncore frequency | dynamic | fixed | fixed |
//! | Tickless | off | off | on |

use serde::{Deserialize, Serialize};
use tpv_sim::{SimDuration, SimRng};

use crate::cstate::{CStatePolicy, CStateTable};
use crate::dvfs::{DvfsConfig, FreqDriver, FreqGovernor};
use crate::env::{RunEnvironment, VariabilityProfile};
use crate::smt::SmtConfig;
use crate::spec::CpuSpec;
use crate::tick::TickConfig;
use crate::turbo::TurboConfig;
use crate::uncore::UncoreMode;

/// A complete hardware configuration for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Allowed C-states (`intel_idle.max_cstate` / `idle=poll`).
    pub cstates: CStatePolicy,
    /// C-state timing table of the processor.
    pub cstate_table: CStateTable,
    /// Frequency driver + governor.
    pub dvfs: DvfsConfig,
    /// Turbo mode.
    pub turbo: TurboConfig,
    /// SMT.
    pub smt: SmtConfig,
    /// Uncore frequency mode.
    pub uncore: UncoreMode,
    /// Scheduler tick behaviour.
    pub tick: TickConfig,
    /// The processor.
    pub spec: CpuSpec,
    /// OS cost of waking a blocked thread (interrupt + scheduler + context
    /// switch). The paper's narrative quotes ~25 µs for the untuned path;
    /// with `idle=poll` the wake path collapses to a couple of µs.
    pub thread_wake_cost: SimDuration,
    /// Magnitudes of run-to-run / wake-to-wake variation.
    pub variability: VariabilityProfile,
}

impl MachineConfig {
    /// Table II **LP** (low-power) client: "the default configuration of
    /// the system and thus the case where a user is agnostic of the
    /// client-side configuration".
    pub fn low_power() -> Self {
        MachineConfig {
            cstates: CStatePolicy::UpToC6,
            cstate_table: CStateTable::skylake_server(),
            dvfs: DvfsConfig { driver: FreqDriver::IntelPstate, governor: FreqGovernor::Powersave },
            turbo: TurboConfig::on(),
            smt: SmtConfig::on(),
            uncore: UncoreMode::Dynamic,
            tick: TickConfig::ticking(),
            spec: CpuSpec::xeon_silver_4114(),
            thread_wake_cost: SimDuration::from_us(25),
            variability: VariabilityProfile {
                governor_bias_sigma: 0.35,
                prediction_sigma: 1.8,
                wake_jitter_sigma: 0.15,
                dvfs_bias_sigma: 0.20,
                thermal_sigma: 0.012,
                wake_bias_sigma: 0.02,
            },
        }
    }

    /// Table II **HP** (high-performance) client: "tuned empirically to
    /// achieve high performance".
    pub fn high_performance() -> Self {
        MachineConfig {
            cstates: CStatePolicy::PollIdle,
            cstate_table: CStateTable::skylake_server(),
            dvfs: DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Performance },
            turbo: TurboConfig::on(),
            smt: SmtConfig::on(),
            uncore: UncoreMode::Fixed,
            tick: TickConfig::ticking(),
            spec: CpuSpec::xeon_silver_4114(),
            thread_wake_cost: SimDuration::from_us(2),
            variability: VariabilityProfile {
                governor_bias_sigma: 0.0,
                prediction_sigma: 0.0,
                wake_jitter_sigma: 0.05,
                dvfs_bias_sigma: 0.0,
                thermal_sigma: 0.006,
                wake_bias_sigma: 0.0,
            },
        }
    }

    /// Table II **server baseline**: "a configuration that does not
    /// introduce high variability and achieves good performance".
    pub fn server_baseline() -> Self {
        MachineConfig {
            cstates: CStatePolicy::UpToC1,
            cstate_table: CStateTable::skylake_server(),
            dvfs: DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Performance },
            turbo: TurboConfig::off(),
            smt: SmtConfig::off(),
            uncore: UncoreMode::Fixed,
            tick: TickConfig::tickless(),
            spec: CpuSpec::xeon_silver_4114(),
            thread_wake_cost: SimDuration::from_us(3),
            variability: VariabilityProfile {
                governor_bias_sigma: 0.0,
                prediction_sigma: 0.25,
                wake_jitter_sigma: 0.10,
                dvfs_bias_sigma: 0.0,
                thermal_sigma: 0.004,
                wake_bias_sigma: 0.0,
            },
        }
    }

    /// Returns a copy with a different C-state policy (the §V-A server
    /// C1E study flips exactly this knob).
    pub fn with_cstates(mut self, policy: CStatePolicy) -> Self {
        self.cstates = policy;
        self
    }

    /// Returns a copy with SMT enabled or disabled (the §V-A SMT study).
    pub fn with_smt(mut self, enabled: bool) -> Self {
        self.smt = if enabled { SmtConfig::on() } else { SmtConfig::off() };
        self
    }

    /// Returns a copy with turbo enabled or disabled.
    pub fn with_turbo(mut self, enabled: bool) -> Self {
        self.turbo = if enabled { TurboConfig::on() } else { TurboConfig::off() };
        self
    }

    /// Returns a copy with a different DVFS driver/governor pair.
    pub fn with_dvfs(mut self, driver: FreqDriver, governor: FreqGovernor) -> Self {
        self.dvfs = DvfsConfig { driver, governor };
        self
    }

    /// Returns a copy with a different uncore mode.
    pub fn with_uncore(mut self, mode: UncoreMode) -> Self {
        self.uncore = mode;
        self
    }

    /// Returns a copy with tickless on/off.
    pub fn with_tickless(mut self, tickless: bool) -> Self {
        self.tick = if tickless { TickConfig::tickless() } else { TickConfig::ticking() };
        self
    }

    /// Draws the per-run environment for this machine.
    pub fn draw_environment(&self, rng: &mut SimRng) -> RunEnvironment {
        RunEnvironment::draw(&self.variability, rng)
    }

    /// Work-time scale factor (relative to nominal frequency) for a core
    /// of this machine running with roughly `active_cores` busy cores.
    ///
    /// < 1.0 means faster than nominal (turbo); includes the run's thermal
    /// drift and the scheduler-tick steal.
    pub fn work_scale(&self, active_cores: u32, env: &RunEnvironment) -> f64 {
        let total = self.spec.logical_cpus_per_socket(self.smt.enabled);
        self.turbo.work_scale(&self.spec, active_cores, total, env.thermal) * self.tick.work_stretch()
    }

    /// A short human-readable label ("LP"-style presets get their Table II
    /// names; everything else is described by its C-state policy).
    pub fn label(&self) -> String {
        if *self == MachineConfig::low_power() {
            "LP".to_string()
        } else if *self == MachineConfig::high_performance() {
            "HP".to_string()
        } else if *self == MachineConfig::server_baseline() {
            "server-baseline".to_string()
        } else {
            format!("custom(cstates={})", self.cstates)
        }
    }
}

impl std::fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cstates={} dvfs={} turbo={} smt={} uncore={} tickless={}",
            self.cstates, self.dvfs, self.turbo, self.smt, self.uncore, self.tick
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstate::CState;

    #[test]
    fn lp_preset_matches_table_ii() {
        let lp = MachineConfig::low_power();
        assert_eq!(lp.cstates, CStatePolicy::UpToC6);
        assert_eq!(lp.dvfs.driver, FreqDriver::IntelPstate);
        assert_eq!(lp.dvfs.governor, FreqGovernor::Powersave);
        assert!(lp.turbo.enabled);
        assert!(lp.smt.enabled);
        assert_eq!(lp.uncore, UncoreMode::Dynamic);
        assert!(!lp.tick.tickless);
        assert_eq!(lp.label(), "LP");
    }

    #[test]
    fn hp_preset_matches_table_ii() {
        let hp = MachineConfig::high_performance();
        assert_eq!(hp.cstates, CStatePolicy::PollIdle);
        assert_eq!(hp.dvfs.driver, FreqDriver::AcpiCpufreq);
        assert_eq!(hp.dvfs.governor, FreqGovernor::Performance);
        assert!(hp.turbo.enabled);
        assert!(hp.smt.enabled);
        assert_eq!(hp.uncore, UncoreMode::Fixed);
        assert!(!hp.tick.tickless);
        assert_eq!(hp.label(), "HP");
    }

    #[test]
    fn server_preset_matches_table_ii() {
        let srv = MachineConfig::server_baseline();
        assert_eq!(srv.cstates, CStatePolicy::UpToC1);
        assert_eq!(srv.dvfs.governor, FreqGovernor::Performance);
        assert!(!srv.turbo.enabled);
        assert!(!srv.smt.enabled);
        assert_eq!(srv.uncore, UncoreMode::Fixed);
        assert!(srv.tick.tickless);
        assert_eq!(srv.label(), "server-baseline");
    }

    #[test]
    fn builders_flip_single_knobs() {
        let srv = MachineConfig::server_baseline();
        let smt_on = srv.with_smt(true);
        assert!(smt_on.smt.enabled);
        assert_eq!(smt_on.cstates, srv.cstates);

        let c1e = srv.with_cstates(CStatePolicy::UpToC1E);
        assert!(c1e.cstates.allows(CState::C1E));
        assert_eq!(c1e.smt.enabled, srv.smt.enabled);

        let nt = srv.with_turbo(true).with_tickless(false).with_uncore(UncoreMode::Dynamic);
        assert!(nt.turbo.enabled);
        assert!(!nt.tick.tickless);
        assert_eq!(nt.uncore, UncoreMode::Dynamic);
        assert!(nt.label().starts_with("custom"));

        let dv = srv.with_dvfs(FreqDriver::IntelPstate, FreqGovernor::Ondemand);
        assert_eq!(dv.dvfs.governor, FreqGovernor::Ondemand);
    }

    #[test]
    fn hp_wake_path_is_cheaper_than_lp() {
        // The crux of the paper: the tuned client's wake path is orders of
        // magnitude cheaper.
        let lp = MachineConfig::low_power();
        let hp = MachineConfig::high_performance();
        assert!(hp.thread_wake_cost < lp.thread_wake_cost);
        assert!(hp.variability.governor_bias_sigma < lp.variability.governor_bias_sigma);
    }

    #[test]
    fn work_scale_reflects_turbo_and_tick() {
        let mut rng = SimRng::seed_from_u64(1);
        let hp = MachineConfig::high_performance();
        let env = hp.draw_environment(&mut rng);
        // Turbo on, few active cores: faster than nominal even with ticks.
        assert!(hp.work_scale(1, &env) < 1.0);
        let srv = MachineConfig::server_baseline();
        let env_s = srv.draw_environment(&mut rng);
        // Turbo off + tickless: very close to exactly nominal.
        assert!((srv.work_scale(5, &env_s) - 1.0).abs() < 0.05);
    }

    #[test]
    fn display_is_informative() {
        let s = MachineConfig::low_power().to_string();
        assert!(s.contains("powersave"));
        assert!(s.contains("C6"));
    }
}
