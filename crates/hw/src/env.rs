//! Per-run environment state.
//!
//! The paper collects **one sample per run** and resets the environment
//! between runs so samples are iid (§III). What actually differs between
//! runs of the *same* configuration on real hardware: the idle governor's
//! learned prediction state, DVFS/HWP internal state, package thermals,
//! and background activity. [`RunEnvironment`] captures those as per-run
//! draws; the experiment harness redraws it for every run.

use serde::{Deserialize, Serialize};
use tpv_sim::dist::{LogNormal, Normal, Sampler};
use tpv_sim::SimRng;

/// Magnitudes of run-to-run and wake-to-wake variation for a machine
/// configuration.
///
/// All sigmas are log-space standard deviations of log-normal factors
/// centred at 1.0 (so 0.0 disables that source entirely).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariabilityProfile {
    /// Per-run bias of the idle governor's residency prediction. Large on
    /// machines that sleep a lot (the governor's learned correction factor
    /// dominates which C-state each idle period lands in). Drawn as a
    /// clamped Normal around 1 (symmetric), matching the near-normal
    /// run-sample distributions the paper observes for the LP client at
    /// low load.
    pub governor_bias_sigma: f64,
    /// Per-wake noise on the governor's idle-length prediction — this is
    /// what occasionally sends a 40 µs idle period into C6 and produces
    /// the LP client's tail inflation.
    pub prediction_sigma: f64,
    /// Per-wake jitter on C-state exit latency.
    pub wake_jitter_sigma: f64,
    /// Per-run bias on DVFS ramp behaviour.
    pub dvfs_bias_sigma: f64,
    /// Per-run thermal headroom drift affecting turbo frequency.
    pub thermal_sigma: f64,
    /// Per-run bias on the whole wake path (timer/IRQ affinity and
    /// scheduler state differ run to run); symmetric around 1.
    pub wake_bias_sigma: f64,
}

impl VariabilityProfile {
    /// No variation at all (useful for deterministic unit tests).
    pub fn none() -> Self {
        VariabilityProfile {
            governor_bias_sigma: 0.0,
            prediction_sigma: 0.0,
            wake_jitter_sigma: 0.0,
            dvfs_bias_sigma: 0.0,
            thermal_sigma: 0.0,
            wake_bias_sigma: 0.0,
        }
    }
}

/// One run's worth of environment state, drawn fresh per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEnvironment {
    /// Multiplier the idle governor applies to observed idle gaps when
    /// predicting residency (per-run learned bias).
    pub governor_bias: f64,
    /// Multiplier on DVFS wake costs this run.
    pub dvfs_bias: f64,
    /// Thermal headroom factor for turbo this run (1.0 = nominal).
    pub thermal: f64,
    /// Multiplier on the whole wake path this run.
    pub wake_bias: f64,
}

impl RunEnvironment {
    /// The neutral environment (all factors 1.0).
    pub fn neutral() -> Self {
        RunEnvironment { governor_bias: 1.0, dvfs_bias: 1.0, thermal: 1.0, wake_bias: 1.0 }
    }

    /// Draws a run environment from a variability profile.
    pub fn draw(profile: &VariabilityProfile, rng: &mut SimRng) -> Self {
        // Symmetric factors: clamped Normal around 1. These shape the LP
        // client's run-sample distribution, which the paper finds *normal*
        // at low load (Table IV) — a log-normal here would skew it.
        fn symmetric(sigma: f64, rng: &mut SimRng) -> f64 {
            if sigma <= 0.0 {
                1.0
            } else {
                Normal::new(1.0, sigma).sample(rng).clamp(0.05, 3.0)
            }
        }
        // One-sided factor: hot runs lose turbo headroom; the skew is what
        // makes tightly-measuring (HP) configurations fail normality.
        fn skewed(sigma: f64, rng: &mut SimRng) -> f64 {
            if sigma <= 0.0 {
                1.0
            } else {
                LogNormal::with_mean(1.0, sigma).sample(rng)
            }
        }
        RunEnvironment {
            governor_bias: symmetric(profile.governor_bias_sigma, rng),
            dvfs_bias: symmetric(profile.dvfs_bias_sigma, rng),
            thermal: skewed(profile.thermal_sigma, rng),
            wake_bias: symmetric(profile.wake_bias_sigma, rng),
        }
    }
}

impl Default for RunEnvironment {
    fn default() -> Self {
        RunEnvironment::neutral()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_gives_neutral_environment() {
        let mut rng = SimRng::seed_from_u64(1);
        let env = RunEnvironment::draw(&VariabilityProfile::none(), &mut rng);
        assert_eq!(env, RunEnvironment::neutral());
    }

    #[test]
    fn draws_vary_run_to_run() {
        let profile = VariabilityProfile {
            governor_bias_sigma: 0.3,
            prediction_sigma: 1.0,
            wake_jitter_sigma: 0.2,
            dvfs_bias_sigma: 0.2,
            thermal_sigma: 0.02,
            wake_bias_sigma: 0.15,
        };
        let mut rng = SimRng::seed_from_u64(2);
        let a = RunEnvironment::draw(&profile, &mut rng);
        let b = RunEnvironment::draw(&profile, &mut rng);
        assert_ne!(a, b);
        assert!(a.governor_bias > 0.0 && b.governor_bias > 0.0);
    }

    #[test]
    fn factors_are_centred_near_one() {
        let profile = VariabilityProfile {
            governor_bias_sigma: 0.3,
            prediction_sigma: 0.0,
            wake_jitter_sigma: 0.0,
            dvfs_bias_sigma: 0.3,
            thermal_sigma: 0.05,
            wake_bias_sigma: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(3);
        let n = 4000;
        let mean: f64 =
            (0..n).map(|_| RunEnvironment::draw(&profile, &mut rng).governor_bias).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean governor bias {mean}");
    }
}
