//! DVFS: the CPUFreq frequency driver and governor of §IV-C.
//!
//! Two knobs from Table II:
//!
//! * **Frequency driver** — who talks to the hardware. `acpi-cpufreq`
//!   performs legacy voltage/frequency transitions (~tens of µs, the paper
//!   cites ~30 µs via I-DVFS); `intel_pstate` uses hardware-managed
//!   P-states with much faster transitions.
//! * **Frequency governor** — who decides the target frequency.
//!   `powersave` lets the clock fall toward the minimum while a core is
//!   idle or lightly loaded; `performance` pins it at the maximum.
//!
//! The model: when a core wakes after an idle span under a frequency-
//! dropping governor, it (i) stalls for the driver's transition latency
//! and (ii) executes the first instants of work at the lower frequency
//! until the ramp completes. Under `performance` neither cost applies.

use serde::{Deserialize, Serialize};
use tpv_sim::SimDuration;

use crate::spec::CpuSpec;

/// The CPUFreq scaling driver (Table II "Frequency Driver").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FreqDriver {
    /// Hardware-managed P-states; fast (~1 µs) transitions.
    IntelPstate,
    /// Legacy ACPI interface; slow (~30 µs) voltage/frequency transitions.
    AcpiCpufreq,
}

impl FreqDriver {
    /// Latency of one frequency/voltage transition.
    ///
    /// The ~30 µs legacy figure is the one the paper quotes for DVFS
    /// transitions ("legacy DVFS takes several microseconds (i.e., 30us)").
    pub fn transition_latency(self) -> SimDuration {
        match self {
            FreqDriver::IntelPstate => SimDuration::from_us(1),
            FreqDriver::AcpiCpufreq => SimDuration::from_us(30),
        }
    }
}

impl std::fmt::Display for FreqDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqDriver::IntelPstate => write!(f, "intel_pstate"),
            FreqDriver::AcpiCpufreq => write!(f, "acpi-cpufreq"),
        }
    }
}

/// The CPUFreq scaling governor (Table II "Frequency Governor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FreqGovernor {
    /// Frequency follows load; drops toward minimum when idle.
    Powersave,
    /// Frequency pinned at maximum.
    Performance,
    /// Legacy on-demand governor: like `powersave` but with a slower
    /// sampling period (kept for ablation studies).
    Ondemand,
}

impl FreqGovernor {
    /// Whether this governor lets the frequency fall during idle periods.
    pub fn drops_frequency_when_idle(self) -> bool {
        !matches!(self, FreqGovernor::Performance)
    }

    /// How much idleness before the governor has dropped the clock to the
    /// minimum. `ondemand` reacts on its sampling period; `powersave`
    /// (intel_pstate's default algorithm) decays faster.
    pub fn idle_to_min_frequency(self) -> SimDuration {
        match self {
            FreqGovernor::Powersave => SimDuration::from_us(200),
            FreqGovernor::Ondemand => SimDuration::from_ms(10),
            FreqGovernor::Performance => SimDuration::MAX,
        }
    }
}

impl std::fmt::Display for FreqGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqGovernor::Powersave => write!(f, "powersave"),
            FreqGovernor::Performance => write!(f, "performance"),
            FreqGovernor::Ondemand => write!(f, "ondemand"),
        }
    }
}

/// What a wake-up costs in DVFS terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvfsWakeCost {
    /// Stall before any work executes (the voltage transition).
    pub stall: SimDuration,
    /// While ramping, work executes this much slower (≥ 1.0 factor on
    /// nominal-frequency work).
    pub slowdown_factor_x1000: u64,
    /// Window (of wall time after the stall) during which the slowdown
    /// applies.
    pub slow_window: SimDuration,
}

impl DvfsWakeCost {
    /// No cost at all (performance governor, or the core never idled).
    pub const NONE: DvfsWakeCost = DvfsWakeCost {
        stall: SimDuration::ZERO,
        slowdown_factor_x1000: 1000,
        slow_window: SimDuration::ZERO,
    };

    /// The slowdown as a float factor.
    pub fn slowdown_factor(&self) -> f64 {
        self.slowdown_factor_x1000 as f64 / 1000.0
    }
}

/// The composed driver+governor model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsConfig {
    /// The scaling driver.
    pub driver: FreqDriver,
    /// The scaling governor.
    pub governor: FreqGovernor,
}

impl DvfsConfig {
    /// Cost of resuming work after `idle` under this configuration.
    ///
    /// `dvfs_bias` is the per-run drift factor from
    /// [`crate::RunEnvironment`]; 1.0 means no drift.
    pub fn wake_cost(&self, spec: &CpuSpec, idle: SimDuration, dvfs_bias: f64) -> DvfsWakeCost {
        if !self.governor.drops_frequency_when_idle() || idle.is_zero() {
            return DvfsWakeCost::NONE;
        }
        // How far the clock has fallen: linear decay toward f_min over the
        // governor's reaction horizon.
        let horizon = self.governor.idle_to_min_frequency();
        let depth = (idle.as_ns() as f64 / horizon.as_ns() as f64).min(1.0);
        if depth <= 0.0 {
            return DvfsWakeCost::NONE;
        }
        let f_now = spec.nominal_ghz - depth * (spec.nominal_ghz - spec.min_ghz);
        let slowdown = (spec.nominal_ghz / f_now).max(1.0) * dvfs_bias.max(0.1);
        let stall = self.driver.transition_latency().scale(depth * dvfs_bias.max(0.1));
        DvfsWakeCost {
            stall,
            slowdown_factor_x1000: (slowdown * 1000.0).round() as u64,
            // The ramp completes within roughly one transition plus the
            // governor's evaluation interval; 30 µs captures the legacy path.
            slow_window: SimDuration::from_us(30).scale(depth),
        }
    }
}

impl std::fmt::Display for DvfsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.driver, self.governor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::xeon_silver_4114()
    }

    #[test]
    fn performance_governor_never_pays() {
        let cfg = DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Performance };
        let c = cfg.wake_cost(&spec(), SimDuration::from_ms(100), 1.0);
        assert_eq!(c, DvfsWakeCost::NONE);
        assert_eq!(c.slowdown_factor(), 1.0);
    }

    #[test]
    fn powersave_pays_after_long_idle() {
        let cfg = DvfsConfig { driver: FreqDriver::IntelPstate, governor: FreqGovernor::Powersave };
        let c = cfg.wake_cost(&spec(), SimDuration::from_ms(5), 1.0);
        assert!(c.stall > SimDuration::ZERO);
        // 0.8 GHz vs 2.2 GHz nominal: slowdown 2.75x.
        assert!((c.slowdown_factor() - 2.75).abs() < 0.01, "slowdown {}", c.slowdown_factor());
        assert!(c.slow_window > SimDuration::ZERO);
    }

    #[test]
    fn short_idle_costs_less_than_long_idle() {
        let cfg = DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Powersave };
        let short = cfg.wake_cost(&spec(), SimDuration::from_us(20), 1.0);
        let long = cfg.wake_cost(&spec(), SimDuration::from_ms(1), 1.0);
        assert!(short.stall < long.stall);
        assert!(short.slowdown_factor() < long.slowdown_factor());
        assert_eq!(cfg.wake_cost(&spec(), SimDuration::ZERO, 1.0), DvfsWakeCost::NONE);
    }

    #[test]
    fn legacy_driver_stalls_longer_than_pstate() {
        let legacy = DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Powersave };
        let modern = DvfsConfig { driver: FreqDriver::IntelPstate, governor: FreqGovernor::Powersave };
        let idle = SimDuration::from_ms(2);
        assert!(legacy.wake_cost(&spec(), idle, 1.0).stall > modern.wake_cost(&spec(), idle, 1.0).stall);
        // The paper's quoted figure: legacy DVFS ~30 µs.
        assert_eq!(FreqDriver::AcpiCpufreq.transition_latency(), SimDuration::from_us(30));
    }

    #[test]
    fn bias_scales_the_cost() {
        let cfg = DvfsConfig { driver: FreqDriver::AcpiCpufreq, governor: FreqGovernor::Powersave };
        let idle = SimDuration::from_ms(2);
        let lo = cfg.wake_cost(&spec(), idle, 0.5);
        let hi = cfg.wake_cost(&spec(), idle, 1.5);
        assert!(lo.stall < hi.stall);
    }

    #[test]
    fn ondemand_reacts_slower_than_powersave() {
        assert!(
            FreqGovernor::Ondemand.idle_to_min_frequency() > FreqGovernor::Powersave.idle_to_min_frequency()
        );
        assert!(FreqGovernor::Ondemand.drops_frequency_when_idle());
        assert!(!FreqGovernor::Performance.drops_frequency_when_idle());
    }

    #[test]
    fn display_matches_linux_names() {
        let cfg = DvfsConfig { driver: FreqDriver::IntelPstate, governor: FreqGovernor::Powersave };
        assert_eq!(cfg.to_string(), "intel_pstate/powersave");
    }
}
