//! The pending-event set of the discrete-event simulation.
//!
//! Events are ordered by timestamp with a monotonically increasing sequence
//! number as tiebreaker, so simultaneous events pop in the order they were
//! scheduled. This makes the whole simulation deterministic: two executions
//! with the same seed produce identical event interleavings.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use tpv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_us(20), "late");
/// q.schedule(SimTime::from_us(10), "early");
/// q.schedule(SimTime::from_us(10), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    last_popped: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, last_popped: SimTime::ZERO }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), seq: 0, last_popped: SimTime::ZERO }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// Scheduling before an already-popped timestamp is a logic error —
    /// the simulation clock would have to run backwards, corrupting the
    /// deterministic interleaving. Debug builds panic; release builds
    /// clamp the event to fire "now" (it pops next, at the last-popped
    /// instant).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at}, before the already-popped {} — time travel would corrupt determinism",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Popped timestamps are non-decreasing across the queue's lifetime as
    /// long as no event is scheduled strictly before an already-popped time;
    /// the returned time is clamped to the previous pop so the simulation
    /// clock never runs backwards.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let at = entry.at.max(self.last_popped);
        self.last_popped = at;
        Some((at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at.max(self.last_popped))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events but keeps the sequence counter, so a
    /// cleared queue still breaks ties deterministically.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for us in [30u64, 10, 20, 5, 25] {
            q.schedule(SimTime::from_us(us), us);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(42)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(42));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time travel would corrupt determinism")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
        q.schedule(SimTime::from_us(3), "b");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn clock_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
        // Scheduled in the past: clamped to the last popped instant.
        q.schedule(SimTime::from_us(3), "b");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbering survives clear.
        q.schedule(SimTime::ZERO, 3);
        q.schedule(SimTime::ZERO, 4);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
