//! The pending-event set of the discrete-event simulation.
//!
//! Events are ordered by timestamp with a monotonically increasing sequence
//! number as tiebreaker, so **simultaneous events pop in the order they
//! were scheduled (FIFO)** — a documented part of the queue's contract
//! that the topology kernel's bit-identical goldens rely on. This makes
//! the whole simulation deterministic: two executions with the same seed
//! produce identical event interleavings.
//!
//! # Structure
//!
//! The queue is a *calendar queue* (Brown, CACM 1988): a ring of
//! fixed-width time buckets covering a sliding near-future window, with a
//! binary-heap overflow for events beyond the window. Scheduling into the
//! window and popping from it are O(1) amortized — the common case for a
//! simulation whose pending set is dense in time (thousands of
//! per-connection sends spread over a few milliseconds) — while far-future
//! events (e.g. low-rate arrival schedules) wait in the heap and migrate
//! into buckets as the window slides over them. When pops observe mostly
//! empty buckets (a sparse schedule), the bucket width doubles and the
//! window re-buckets, so the scan cost adapts to the workload's event
//! density instead of assuming it. The adaptation is widen-only: a deep
//! density trough followed by a dense phase leaves the buckets wide
//! (more entries per in-bucket min-scan) for the rest of the run —
//! results are unaffected, and at the testbed's phase swings (≤ ~4x)
//! the residual occupancy stays single-digit; narrowing would need
//! hysteresis to avoid ping-ponging and is left until a workload needs
//! it.
//!
//! The pop order is the total order `(time, seq)` regardless of which
//! tier an event waited in, so the calendar queue is observably
//! *bit-identical* to the straightforward binary-heap implementation it
//! replaced — `tests/event_queue.rs` cross-checks the two on random
//! schedules.
//!
//! # Batched draining
//!
//! [`EventQueue::pop_batch`] drains a whole *tie run* — every pending
//! event sharing the earliest timestamp — in one call, so a dispatch
//! loop pays the queue's per-pop bookkeeping once per distinct
//! timestamp instead of once per event. The concatenation of successive
//! batches is exactly the one-at-a-time [`EventQueue::pop`] sequence;
//! batch *boundaries* carry no semantic weight. Batching is safe
//! against concurrent scheduling from the caller's dispatch loop: an
//! event scheduled *at* the batch's timestamp while the batch is being
//! processed necessarily gets a higher sequence number, so FIFO order
//! already places it after every batch member — it simply opens the
//! next batch. Ties cannot hide elsewhere in the structure: equal raw
//! timestamps share a slot, and by the time the pop scan reads a
//! bucket every far-heap event of that slot has migrated in, so a tie
//! run is always fully resident in the cursor bucket.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Default bucket width: 2^11 ns ≈ 2 µs, the natural event spacing of the
/// testbed's high-QPS runs. [`EventQueue::with_spacing`] picks a better
/// width when the caller knows its event rate.
const INITIAL_SHIFT: u32 = 11;

/// Narrowest bucket a spacing hint may pick.
const MIN_SHIFT: u32 = 10;

/// Widest bucket a spacing hint may pick (adaptation may widen further).
const MAX_HINT_SHIFT: u32 = 16;

/// Widest bucket the adaptation will grow to: 2^26 ns ≈ 67 ms.
const MAX_SHIFT: u32 = 26;

/// Adaptation period, in pops.
const ADAPT_PERIOD: u64 = 1024;

/// Widen the buckets when a period scans more than this many empty
/// buckets per pop on average.
const ADAPT_SCAN_RATIO: u64 = 4;

/// A deterministic priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use tpv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_us(20), "late");
/// q.schedule(SimTime::from_us(10), "early");
/// q.schedule(SimTime::from_us(10), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The calendar ring: bucket `s & mask` holds the events of slot `s`
    /// for every slot in the window `[cursor, cursor + buckets.len())`.
    buckets: Vec<Vec<Entry<E>>>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// `log2` of the bucket width in nanoseconds.
    shift: u32,
    /// Slot index the pop scan resumes from. Invariant: no pending event
    /// has a slot below `cursor`, and `cursor <= slot(last_popped)`.
    cursor: u64,
    /// Events beyond the window, keyed min-first by `(time, seq)`.
    far: BinaryHeap<Entry<E>>,
    /// Slot (at the current `shift`) of the earliest far event, or
    /// `u64::MAX` when `far` is empty — lets the pop scan test "has the
    /// window reached the far heap" against a register instead of
    /// peeking the heap on every bucket advance.
    far_next_slot: u64,
    /// Events currently in buckets.
    near_len: usize,
    /// Total pending events (buckets + far).
    len: usize,
    seq: u64,
    last_popped: SimTime,
    /// Sequence number of the last popped event (`u64::MAX` before the
    /// first pop), for the FIFO-tie debug assertion.
    last_seq: u64,
    /// Pops since the last adaptation checkpoint.
    pops_in_period: u64,
    /// Empty buckets scanned since the last adaptation checkpoint.
    scans_in_period: u64,
    /// Reusable buffer for [`EventQueue::pop_batch`]'s tie-run
    /// extraction, kept on the queue so a batch pop never allocates.
    scratch: Vec<Entry<E>>,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for about `capacity` concurrently
    /// pending events, with buckets matched to an expected mean spacing
    /// between consecutive event *times* (≈ the reciprocal of the
    /// caller's event rate). A good hint puts a handful of events in
    /// each bucket from the first pop; the width adaptation then only
    /// has to track drift, not recover from a cold guess.
    /// A degenerate hint is ignored: a zero spacing — how
    /// `SimDuration::from_secs_f64(1.0 / qps)` encodes a zero, NaN or
    /// infinite aggregate rate — keeps the default width instead of
    /// pinning the queue to the narrowest bucket; huge spacings clamp to
    /// the widest hintable bucket (saturating before the power-of-two
    /// round-up, so they cannot overflow it).
    pub fn with_spacing(capacity: usize, expected_spacing: crate::SimDuration) -> Self {
        let mut q = Self::with_capacity(capacity);
        let ns = expected_spacing.as_ns();
        if ns == 0 {
            return q;
        }
        let target = ns.saturating_mul(2).min(1 << MAX_HINT_SHIFT);
        q.shift = target.next_power_of_two().trailing_zeros().clamp(MIN_SHIFT, MAX_HINT_SHIFT);
        q
    }

    /// Creates an empty queue sized for about `capacity` concurrently
    /// pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = capacity.next_power_of_two().clamp(1024, 4096);
        EventQueue {
            // A few slots of headroom per bucket: a freshly filled queue
            // otherwise pays the 1→2→4 realloc chain in thousands of
            // buckets during its first window. Purely an allocation
            // pattern — pop order is unaffected.
            buckets: (0..buckets).map(|_| Vec::with_capacity(4)).collect(),
            mask: buckets as u64 - 1,
            shift: INITIAL_SHIFT,
            cursor: 0,
            far: BinaryHeap::new(),
            far_next_slot: u64::MAX,
            near_len: 0,
            len: 0,
            seq: 0,
            last_popped: SimTime::ZERO,
            last_seq: u64::MAX,
            pops_in_period: 0,
            scans_in_period: 0,
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn slot_of(&self, at: SimTime) -> u64 {
        at.as_ns() >> self.shift
    }

    /// Files an entry into its bucket or the far heap. `seq` is already
    /// assigned; shared by [`EventQueue::schedule`], far→near migration
    /// and re-bucketing.
    #[inline]
    fn insert_entry(&mut self, entry: Entry<E>) {
        // The release-mode past-scheduling clamp: a slot below the cursor
        // files under the cursor so the event still pops next, in raw
        // `(time, seq)` order among its fellow clamped events.
        let slot = self.slot_of(entry.at).max(self.cursor);
        if slot < self.cursor + self.buckets.len() as u64 {
            self.buckets[(slot & self.mask) as usize].push(entry);
            self.near_len += 1;
        } else {
            self.far_next_slot = self.far_next_slot.min(slot);
            self.far.push(entry);
        }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// Scheduling before an already-popped timestamp is a logic error —
    /// the simulation clock would have to run backwards, corrupting the
    /// deterministic interleaving. Debug builds panic; release builds
    /// clamp the event to fire "now" (it pops next, at the last-popped
    /// instant).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at}, before the already-popped {} — time travel would corrupt determinism",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.insert_entry(Entry { at, seq, event });
    }

    /// Moves far-heap events whose slot has entered the window into their
    /// buckets.
    fn drain_far(&mut self) {
        let window_end = self.cursor + self.buckets.len() as u64;
        while let Some(top) = self.far.peek() {
            if self.slot_of(top.at) >= window_end {
                break;
            }
            let entry = self.far.pop().expect("peeked entry vanished");
            let slot = self.slot_of(entry.at).max(self.cursor);
            self.buckets[(slot & self.mask) as usize].push(entry);
            self.near_len += 1;
        }
        self.far_next_slot = self.far.peek().map_or(u64::MAX, |e| self.slot_of(e.at));
    }

    /// With the window empty, jumps the cursor to the earliest far event
    /// and migrates the now-near events in.
    fn jump_to_far(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        if let Some(top) = self.far.peek() {
            self.cursor = self.cursor.max(self.slot_of(top.at));
            self.drain_far();
        }
    }

    /// Doubles the bucket width and re-files the window, shrinking the
    /// per-pop scan distance for sparse schedules.
    fn widen(&mut self) {
        let mut stash: Vec<Entry<E>> = Vec::with_capacity(self.near_len);
        for bucket in &mut self.buckets {
            stash.append(bucket);
        }
        self.near_len = 0;
        self.shift += 1;
        self.cursor >>= 1;
        for entry in stash {
            self.insert_entry(entry);
        }
        // The longer window may now cover events that waited in the far
        // heap; pull them in so the near/far order invariant holds.
        self.drain_far();
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Popped timestamps are non-decreasing across the queue's lifetime as
    /// long as no event is scheduled strictly before an already-popped time;
    /// the returned time is clamped to the previous pop so the simulation
    /// clock never runs backwards. Events with equal timestamps pop in
    /// FIFO (scheduling) order — asserted in debug builds.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            self.jump_to_far();
        }
        loop {
            let bucket = &mut self.buckets[(self.cursor & self.mask) as usize];
            if !bucket.is_empty() {
                // The earliest (time, seq) in the cursor bucket is the
                // global minimum: every other window slot is later, and
                // far events are beyond the window.
                let mut best = 0;
                let mut best_key = (bucket[0].at, bucket[0].seq);
                for (i, e) in bucket.iter().enumerate().skip(1) {
                    let key = (e.at, e.seq);
                    if key < best_key {
                        best = i;
                        best_key = key;
                    }
                }
                let entry = bucket.swap_remove(best);
                self.near_len -= 1;
                self.len -= 1;
                self.pops_in_period += 1;
                if self.pops_in_period == ADAPT_PERIOD {
                    if self.scans_in_period > ADAPT_SCAN_RATIO * ADAPT_PERIOD && self.shift < MAX_SHIFT {
                        self.widen();
                    }
                    self.pops_in_period = 0;
                    self.scans_in_period = 0;
                }
                let at = entry.at.max(self.last_popped);
                // FIFO among ties: equal pop times must preserve
                // scheduling order (callers and the golden pins depend
                // on it). In debug builds past-scheduling panics above,
                // so `entry.at` is the raw timestamp here.
                debug_assert!(
                    self.last_seq == u64::MAX || at > self.last_popped || entry.seq > self.last_seq,
                    "FIFO tie order violated at {at}: seq {} after {}",
                    entry.seq,
                    self.last_seq
                );
                self.last_popped = at;
                self.last_seq = entry.seq;
                return Some((at, entry.event));
            }
            self.cursor += 1;
            self.scans_in_period += 1;
            if self.far_next_slot < self.cursor + self.buckets.len() as u64 {
                self.drain_far();
            }
            if self.near_len == 0 {
                self.jump_to_far();
            }
        }
    }

    /// Drains the earliest *tie run* — every pending event sharing the
    /// earliest raw timestamp — into `out` (cleared first), returning
    /// the number of events drained (0 when the queue is empty).
    ///
    /// The concatenation of successive batches is exactly the
    /// one-at-a-time [`EventQueue::pop`] sequence: batch members share
    /// one raw timestamp and arrive in FIFO (`seq`) order, which is
    /// precisely how [`EventQueue::pop`] would emit them. In release
    /// builds a past-scheduled event clamped to a later time pops at
    /// the same clamped instant as its batch's members but in a batch
    /// of its own — batch *boundaries* carry no meaning, so the
    /// dispatch sequence is still the pop sequence.
    ///
    /// The common no-tie case costs exactly one bucket min-scan — the
    /// same work [`EventQueue::pop`] does — because the scan that finds
    /// the minimum also counts the entries tied with it.
    pub fn pop_batch(&mut self, out: &mut Vec<(SimTime, E)>) -> usize {
        out.clear();
        if self.len == 0 {
            return 0;
        }
        if self.near_len == 0 {
            self.jump_to_far();
        }
        loop {
            let idx = (self.cursor & self.mask) as usize;
            if !self.buckets[idx].is_empty() {
                // One scan: locate the earliest `(time, seq)` and count
                // the entries sharing its timestamp (the tie run). Every
                // tied entry is in this bucket — equal raw times share a
                // slot, and the far heap only holds slots beyond the
                // window (see the module docs).
                let bucket = &self.buckets[idx];
                let mut best = 0;
                let mut best_key = (bucket[0].at, bucket[0].seq);
                let mut run = 1usize;
                for (i, e) in bucket.iter().enumerate().skip(1) {
                    if e.at < best_key.0 {
                        best = i;
                        best_key = (e.at, e.seq);
                        run = 1;
                    } else if e.at == best_key.0 {
                        run += 1;
                        if e.seq < best_key.1 {
                            best = i;
                            best_key = (e.at, e.seq);
                        }
                    }
                }
                if run == 1 {
                    let entry = self.buckets[idx].swap_remove(best);
                    self.finish_pop(entry, out);
                } else {
                    // Extract the run back-to-front — `swap_remove` only
                    // pulls already-examined tail entries into the hole —
                    // then restore FIFO order by `seq`. `scratch` is
                    // detached from `self` for the duration so the
                    // per-entry bookkeeping below can borrow the queue.
                    let at = best_key.0;
                    let mut scratch = std::mem::take(&mut self.scratch);
                    let bucket = &mut self.buckets[idx];
                    let mut i = bucket.len();
                    while i > 0 {
                        i -= 1;
                        if bucket[i].at == at {
                            scratch.push(bucket.swap_remove(i));
                        }
                    }
                    scratch.sort_unstable_by_key(|e| e.seq);
                    for entry in scratch.drain(..) {
                        self.finish_pop(entry, out);
                    }
                    self.scratch = scratch;
                }
                return out.len();
            }
            self.cursor += 1;
            self.scans_in_period += 1;
            if self.far_next_slot < self.cursor + self.buckets.len() as u64 {
                self.drain_far();
            }
            if self.near_len == 0 {
                self.jump_to_far();
            }
        }
    }

    /// Per-entry bookkeeping shared by the [`EventQueue::pop_batch`]
    /// paths: adaptation accounting, the monotonic-clock clamp, the FIFO
    /// tie assertion, and the push into the caller's batch. Mirrors the
    /// tail of [`EventQueue::pop`] exactly.
    #[inline]
    fn finish_pop(&mut self, entry: Entry<E>, out: &mut Vec<(SimTime, E)>) {
        self.near_len -= 1;
        self.len -= 1;
        self.pops_in_period += 1;
        if self.pops_in_period == ADAPT_PERIOD {
            if self.scans_in_period > ADAPT_SCAN_RATIO * ADAPT_PERIOD && self.shift < MAX_SHIFT {
                self.widen();
            }
            self.pops_in_period = 0;
            self.scans_in_period = 0;
        }
        let at = entry.at.max(self.last_popped);
        debug_assert!(
            self.last_seq == u64::MAX || at > self.last_popped || entry.seq > self.last_seq,
            "FIFO tie order violated at {at}: seq {} after {}",
            entry.seq,
            self.last_seq
        );
        self.last_popped = at;
        self.last_seq = entry.seq;
        out.push((at, entry.event));
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            return self.far.peek().map(|e| e.at.max(self.last_popped));
        }
        let mut slot = self.cursor;
        loop {
            let bucket = &self.buckets[(slot & self.mask) as usize];
            if let Some(first) = bucket.first() {
                let mut min = first.at;
                for e in &bucket[1..] {
                    min = min.min(e.at);
                }
                return Some(min.max(self.last_popped));
            }
            slot += 1;
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events but keeps the sequence counter, so a
    /// cleared queue still breaks ties deterministically.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.far.clear();
        self.far_next_slot = u64::MAX;
        self.near_len = 0;
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for us in [30u64, 10, 20, 5, 25] {
            q.schedule(SimTime::from_us(us), us);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(42)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(42));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_sees_through_both_tiers() {
        let mut q = EventQueue::with_capacity(8);
        // Far beyond the initial window.
        q.schedule(SimTime::from_secs(5), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        q.schedule(SimTime::from_us(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_us(3)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time travel would corrupt determinism")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
        q.schedule(SimTime::from_us(3), "b");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn clock_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
        // Scheduled in the past: clamped to the last popped instant.
        q.schedule(SimTime::from_us(3), "b");
        assert_eq!(q.pop().unwrap().0, SimTime::from_us(10));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbering survives clear.
        q.schedule(SimTime::ZERO, 3);
        q.schedule(SimTime::ZERO, 4);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn sparse_schedules_trigger_widening_and_stay_ordered() {
        // Events 50 µs apart: ~50 empty 1 µs buckets per pop, so the
        // adaptation must kick in — and must not perturb the pop order.
        let mut q = EventQueue::with_capacity(16);
        let n = 4 * ADAPT_PERIOD;
        for i in 0..n {
            q.schedule(SimTime::from_us(50 * i), i);
        }
        let initial_shift = q.shift;
        let mut expected = 0u64;
        while let Some((at, i)) = q.pop() {
            assert_eq!(i, expected, "order broke at {at}");
            expected += 1;
        }
        assert_eq!(expected, n);
        assert!(q.shift > initial_shift, "sparse-scan adaptation never widened the buckets");
    }

    #[test]
    fn degenerate_spacing_hint_keeps_the_default_width() {
        // A zero/NaN/infinite aggregate rate reaches the queue as a zero
        // spacing (`SimDuration::from_secs_f64` clamps); the hint must
        // fall back to the default width, not pin the narrowest bucket.
        let q: EventQueue<()> = EventQueue::with_spacing(64, crate::SimDuration::ZERO);
        assert_eq!(q.shift, INITIAL_SHIFT);
        let from_nan = crate::SimDuration::from_secs_f64(1.0 / f64::NAN);
        assert!(from_nan.is_zero());
        let q: EventQueue<()> = EventQueue::with_spacing(64, from_nan);
        assert_eq!(q.shift, INITIAL_SHIFT);
        // A huge (but real) spacing clamps to the widest hintable bucket
        // instead of overflowing the power-of-two round-up.
        let q: EventQueue<()> = EventQueue::with_spacing(64, crate::SimDuration::MAX);
        assert_eq!(q.shift, MAX_HINT_SHIFT);
        // And a sane hint still lands between the bounds.
        let q: EventQueue<()> = EventQueue::with_spacing(64, crate::SimDuration::from_us(4));
        assert!((MIN_SHIFT..=MAX_HINT_SHIFT).contains(&q.shift));
    }

    #[test]
    fn far_events_migrate_in_order() {
        let mut q = EventQueue::with_capacity(8);
        // Interleave window-local and far-future events.
        for i in 0..50u64 {
            q.schedule(SimTime::from_ms(10 * (i % 5) + 1), 1000 + i);
            q.schedule(SimTime::from_us(i), i);
        }
        let mut times = Vec::new();
        while let Some((at, _)) = q.pop() {
            times.push(at);
        }
        assert_eq!(times.len(), 100);
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "pop order must be non-decreasing across tiers");
    }
}
