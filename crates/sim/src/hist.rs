//! A mergeable, log-bucketed latency histogram.
//!
//! The load generators record every request's end-to-end latency. Keeping
//! raw vectors of tens of millions of samples per run would dominate memory,
//! so — like mutilate, wrk2 and Lancet — we use an HDR-style histogram:
//! buckets grow geometrically so relative error is bounded (~1.6 % with the
//! default 6 sub-bucket bits) across the full nanosecond-to-minute range.
//!
//! Histograms from different agent machines [`merge`](LatencyHistogram::merge)
//! losslessly, mirroring the paper's master/agent mutilate deployment.
//! Bucket counts are integers and merge exactly in any order; the
//! embedded [`Welford`] moments do **not** — see its
//! `merge` docs for the canonical-order discipline parallel callers owe.

use crate::{SimDuration, Welford};

/// Number of linear sub-buckets per power of two (2^6 = 64 ⇒ ≤1.6 % error).
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// A fixed-precision histogram of durations with exact count semantics.
///
/// # Example
///
/// ```
/// use tpv_sim::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(SimDuration::from_us(us));
/// }
/// assert_eq!(h.count(), 5);
/// let p99 = h.percentile(99.0);
/// assert!(p99 >= SimDuration::from_us(990) && p99 <= SimDuration::from_us(1020));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    welford: Welford,
}

fn bucket_index(value_ns: u64) -> usize {
    // Values below SUB_BUCKETS map 1:1; above, each power of two is split
    // into SUB_BUCKETS linear slices.
    let v = value_ns;
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BUCKET_BITS
    let exp = msb - SUB_BUCKET_BITS as u64;
    let offset = (v >> exp) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
    ((exp + 1) * SUB_BUCKETS + offset) as usize
}

fn bucket_high(index: usize) -> u64 {
    // Upper inclusive bound of bucket `index` (the representative value we
    // report for percentiles, giving a conservative estimate).
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let exp = index / SUB_BUCKETS - 1;
    let offset = index % SUB_BUCKETS;
    ((SUB_BUCKETS + offset + 1) << exp) - 1
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: Vec::new(), total: 0, min: u64::MAX, max: 0, welford: Welford::new() }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        let idx = bucket_index(ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
        self.welford.push(ns as f64);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of the recorded durations.
    ///
    /// The mean is tracked outside the buckets (Welford), so it has no
    /// bucketing error.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_us_f64(self.welford.mean() / 1_000.0)
    }

    /// Exact sample standard deviation of the recorded durations.
    pub fn std_dev(&self) -> SimDuration {
        SimDuration::from_us_f64(self.welford.sample_std_dev() / 1_000.0)
    }

    /// Smallest recorded duration ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ns(self.min)
        }
    }

    /// Largest recorded duration ([`SimDuration::ZERO`] when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ns(self.max)
    }

    /// The value at or below which `p` percent of samples fall.
    ///
    /// Reported as the upper bound of the containing bucket (≤1.6 % above
    /// the true quantile), clamped to the exact observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_ns(bucket_high(i).min(self.max).max(self.min));
            }
        }
        SimDuration::from_ns(self.max)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one (exact; no resampling).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.welford.merge(&other.welford);
    }

    /// Iterates over `(bucket_upper_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimDuration::from_ns(bucket_high(i)), c))
    }

    /// Resets the histogram to empty without releasing capacity.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.welford = Welford::new();
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..64u64 {
            h.record(SimDuration::from_ns(ns));
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min().as_ns(), 0);
        assert_eq!(h.max().as_ns(), 63);
        assert_eq!(h.percentile(100.0).as_ns(), 63);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let value = 123_456_789u64;
        h.record(SimDuration::from_ns(value));
        let got = h.percentile(50.0).as_ns();
        let err = (got as f64 - value as f64).abs() / value as f64;
        assert!(err <= 0.016, "relative error {err}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut rng = crate::SimRng::seed_from_u64(1);
        for _ in 0..50_000 {
            h.record(SimDuration::from_ns(rng.next_below(10_000_000)));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} < previous {last}");
            last = v;
        }
    }

    #[test]
    fn percentile_matches_exact_sort_within_bound() {
        let mut h = LatencyHistogram::new();
        let mut rng = crate::SimRng::seed_from_u64(2);
        let mut raw: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            let v = 1_000 + rng.next_below(1_000_000);
            raw.push(v);
            h.record(SimDuration::from_ns(v));
        }
        raw.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let idx = (((p / 100.0) * raw.len() as f64).ceil() as usize - 1).min(raw.len() - 1);
            let exact = raw[idx] as f64;
            let got = h.percentile(p).as_ns() as f64;
            assert!(got >= exact * 0.999, "p{p}: {got} < {exact}");
            assert!(got <= exact * 1.017, "p{p}: {got} >> {exact}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30] {
            h.record(SimDuration::from_us(us));
        }
        assert_eq!(h.mean().as_ns(), 20_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        let mut rng = crate::SimRng::seed_from_u64(3);
        for i in 0..10_000 {
            let v = SimDuration::from_ns(rng.next_below(5_000_000));
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
        assert!((a.mean().as_ns() as i64 - all.mean().as_ns() as i64).abs() <= 1);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_ms(5));
        let cap = h.counts.len();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.counts.len(), cap);
        h.record(SimDuration::from_us(1));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn iter_visits_every_sample_once() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 1, 2, 500, 500, 500] {
            h.record(SimDuration::from_us(us));
        }
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        LatencyHistogram::new().percentile(101.0);
    }

    #[test]
    fn bucket_round_trip_bounds() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1_000, 65_535, 1 << 20, (1 << 40) + 12345] {
            let idx = bucket_index(v);
            let hi = bucket_high(idx);
            assert!(hi >= v, "bucket_high({idx}) = {hi} < {v}");
            if v >= SUB_BUCKETS {
                assert!(hi as f64 <= v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64), "v={v} hi={hi}");
            }
        }
    }
}
