//! Statistical distributions used by the workload and hardware models.
//!
//! Everything samples through the [`Sampler`] trait from a [`SimRng`], via
//! inverse-CDF or classical transforms, so streams stay reproducible.
//!
//! The set is driven by the paper's workloads:
//!
//! * [`Exponential`] — open-loop Poisson inter-arrival times (§II, §IV-B).
//! * [`Normal`] / [`LogNormal`] — service-time jitter and per-run drift.
//! * [`GeneralizedPareto`] / [`Gev`] — Facebook ETC value/key sizes
//!   (Atikoglu et al., SIGMETRICS'12), used by the Memcached workload.
//! * [`Zipf`] — key popularity.
//! * [`Pareto`] — heavy-tailed interference.
//! * [`Deterministic`], [`Uniform`], [`Empirical`] — building blocks.
//!
//! Every transcendental step goes through [`tpv_math`]'s deterministic
//! kernels (never libm, whose bits legally vary across platforms), and
//! every sampler exposes its inverse transform as a pure
//! `from_unit` function of raw `[0, 1)` uniforms. The `sample` path
//! draws from the RNG and calls the same transform, so bulk pre-drawn
//! uniforms produce bit-identical variates to sequential sampling.

use crate::rng::SimRng;
use crate::SimDuration;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tpv_math::{fast_exp, fast_ln, fast_pow, fast_sincos};

/// A distribution over `f64` that can be sampled with a [`SimRng`].
pub trait Sampler {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws one sample and interprets it as a duration in microseconds.
    ///
    /// Negative samples clamp to zero — convenient for jittered duration
    /// models where the jitter may dip below zero.
    fn sample_us(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_us_f64(self.sample(rng))
    }
}

/// A point mass: always returns the same value.
///
/// # Example
///
/// ```
/// use tpv_sim::dist::{Deterministic, Sampler};
/// use tpv_sim::SimRng;
/// let d = Deterministic::new(4.0);
/// assert_eq!(d.sample(&mut SimRng::seed_from_u64(0)), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A distribution that always yields `value`.
    pub fn new(value: f64) -> Self {
        Deterministic { value }
    }
}

impl Sampler for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
}

/// Uniform on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    span: f64,
}

impl Uniform {
    /// Uniform over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `high < low` or either bound is non-finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low.is_finite() && high.is_finite() && high >= low, "bad uniform bounds [{low}, {high})");
        Uniform { low, span: high - low }
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.low + self.span * rng.next_f64()
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`), via inverse CDF.
///
/// This is the inter-arrival distribution of an open-loop Poisson workload
/// generator — the configuration used by mutilate, the µSuite client and
/// wrk2 in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Exponential with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "exponential rate must be positive, got {rate}");
        Exponential { mean: 1.0 / rate }
    }

    /// Exponential with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive, got {mean}");
        Exponential { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The superposition of `members` independent copies of this process.
    ///
    /// Superposing k Poisson processes of rate λ yields one Poisson
    /// process of rate kλ — the identity behind cohort-compressed fleets,
    /// where a population of identical open-loop clients is simulated as
    /// a single pooled arrival stream. `superposed(1)` is exactly `self`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn superposed(&self, members: u32) -> Self {
        assert!(members > 0, "superposition needs at least one member process");
        Exponential { mean: self.mean / f64::from(members) }
    }

    /// The inverse-CDF transform of one raw `[0, 1)` uniform (as drawn
    /// by [`SimRng::next_f64`]) into an exponential variate. Pure — the
    /// scalar [`Sampler::sample`] path and bulk pre-drawn uniforms run
    /// the identical arithmetic.
    #[inline]
    pub fn from_unit(&self, u: f64) -> f64 {
        // 1 - u maps [0, 1) onto (0, 1] — safe as input to ln.
        -self.mean * fast_ln(1.0 - u)
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.from_unit(rng.next_f64())
    }
}

/// Normal (Gaussian) via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Normal with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "bad normal parameters ({mean}, {std_dev})"
        );
        Normal { mean, std_dev }
    }

    /// Draws a standard-normal variate.
    pub fn standard_sample(rng: &mut SimRng) -> f64 {
        // Box–Muller consumes exactly two uniforms; we deliberately
        // discard the second variate to keep the stream position
        // independent of caller interleaving.
        let a = rng.next_f64();
        let b = rng.next_f64();
        Normal::standard_from_units(a, b)
    }

    /// The Box–Muller transform of two raw `[0, 1)` uniforms into a
    /// standard-normal variate (the cosine leg; the sine leg is
    /// discarded by convention). Pure — shared by the scalar and bulk
    /// sampling paths.
    #[inline]
    pub fn standard_from_units(a: f64, b: f64) -> f64 {
        let u1 = 1.0 - a; // (0, 1], safe for ln
        (-2.0 * fast_ln(u1)).sqrt() * fast_sincos(std::f64::consts::TAU * b).1
    }
}

impl Sampler for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * Normal::standard_sample(rng)
    }
}

/// Log-normal: `exp(Normal(mu, sigma))`.
///
/// Used for right-skewed per-run interference — exactly the shape that
/// makes high-QPS configurations fail the Shapiro–Wilk test in §V-C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal with log-space mean `mu` and log-space std dev `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad lognormal parameters ({mu}, {sigma})"
        );
        LogNormal { mu, sigma }
    }

    /// Log-normal parameterised by its *linear-space* mean and the
    /// log-space sigma — convenient for calibration.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `sigma < 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0 && sigma >= 0.0, "bad lognormal mean/sigma ({mean}, {sigma})");
        LogNormal { mu: fast_ln(mean) - sigma * sigma / 2.0, sigma }
    }

    /// The transform of two raw `[0, 1)` uniforms (Box–Muller pair) into
    /// a log-normal variate. Pure — shared by the scalar and bulk
    /// sampling paths.
    #[inline]
    pub fn from_units(&self, a: f64, b: f64) -> f64 {
        fast_exp(self.mu + self.sigma * Normal::standard_from_units(a, b))
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let a = rng.next_f64();
        let b = rng.next_f64();
        self.from_units(a, b)
    }
}

/// Pareto (type I) with scale `x_m` and shape `alpha`, via inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_alpha: f64,
}

impl Pareto {
    /// Pareto with minimum `scale` and tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `alpha > 0`.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(scale > 0.0 && alpha > 0.0, "bad pareto parameters ({scale}, {alpha})");
        Pareto { scale, inv_alpha: 1.0 / alpha }
    }
}

impl Sampler for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / fast_pow(1.0 - rng.next_f64(), self.inv_alpha)
    }
}

/// Generalized Pareto distribution (GPD).
///
/// Atikoglu et al. model Facebook ETC *value sizes* as
/// GP(θ = 0, σ = 214.48, k = 0.348); the ETC workload model in
/// `tpv-services` relies on this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedPareto {
    location: f64,
    scale: f64,
    shape: f64,
}

impl GeneralizedPareto {
    /// GPD with location θ, scale σ and shape k.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn new(location: f64, scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "GPD scale must be positive, got {scale}");
        GeneralizedPareto { location, scale, shape }
    }
}

impl Sampler for GeneralizedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64(); // in (0,1]
        if self.shape.abs() < 1e-12 {
            self.location - self.scale * fast_ln(u)
        } else {
            self.location + self.scale * (fast_pow(u, -self.shape) - 1.0) / self.shape
        }
    }
}

/// Generalized extreme value (GEV) distribution.
///
/// Atikoglu et al. model Facebook ETC *key sizes* as
/// GEV(µ = 30.7984, σ = 8.20449, k = 0.078688).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    location: f64,
    scale: f64,
    shape: f64,
}

impl Gev {
    /// GEV with location µ, scale σ and shape k.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn new(location: f64, scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "GEV scale must be positive, got {scale}");
        Gev { location, scale, shape }
    }
}

impl Sampler for Gev {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64(); // in (0,1]
        let ln_u = -fast_ln(u); // Exp(1)
        if self.shape.abs() < 1e-12 {
            self.location - self.scale * fast_ln(ln_u)
        } else {
            self.location + self.scale * (fast_pow(ln_u, -self.shape) - 1.0) / self.shape
        }
    }
}

/// Zipf-distributed ranks over `{1, …, n}` with exponent `s`.
///
/// Sampled by inverting the CDF over a precomputed prefix table (O(log n)
/// per draw), which is exact and deterministic. The inversion is
/// *tiered*: Zipf mass concentrates in the first ranks (Zipf(0.99) puts
/// ~40 % of draws in the first 32 ranks and ~75 % in the first 1024), so
/// most draws binary-search a few hundred bytes that stay L1-resident
/// instead of walking a multi-hundred-KiB table. The computed rank is
/// identical to a plain binary search over the whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Arc<[f64]>,
}

/// Process-wide memo of Zipf prefix tables, keyed by `(n, s bits)`.
///
/// A table is a pure function of `(n, s)` — `fast_pow` is deterministic
/// and the summation order is fixed — so every `Zipf::new` with the same
/// parameters produces identical bits, and building it once per process
/// is invisible to results. It is very visible to setup cost: the ETC
/// workload's Zipf(100 000, 0.99) is 100 000 `fast_pow` calls (~3 ms),
/// rebuilt per service instance per run before memoization; a sharded
/// fleet builds the identical table once instead of once per shard, and
/// repeated trials reuse it outright. Shared `Arc`s also deduplicate the
/// ~800 KiB table across instances. The memo never evicts: the workspace
/// constructs a handful of distinct `(n, s)` pairs per process.
fn zipf_cache() -> &'static Mutex<ZipfCache> {
    static CACHE: OnceLock<Mutex<ZipfCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized Zipf prefix tables: `(n, s bits)` → shared CDF.
type ZipfCache = HashMap<(usize, u64), Arc<[f64]>>;

/// First (hottest) search tier, in ranks.
const ZIPF_TIER1: usize = 32;

/// Second search tier, in ranks.
const ZIPF_TIER2: usize = 1024;

impl Zipf {
    /// Zipf over `n` ranks with exponent `s` (s = 0 is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative, got {s}");
        let mut cache = zipf_cache().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let cdf = cache.entry((n, s.to_bits())).or_insert_with(|| Zipf::build_cdf(n, s)).clone();
        Zipf { cdf }
    }

    /// Builds the normalized prefix table — the summation order is part
    /// of the determinism contract (see [`zipf_cache`]).
    fn build_cdf(n: usize, s: f64) -> Arc<[f64]> {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / fast_pow(k as f64, s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        cdf.into()
    }

    /// Draws a rank in `[0, n)` (0-based; rank 0 is the most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        let n = self.cdf.len();
        // `partition_point(p < u)` is the first index with cdf >= u —
        // exactly what inverting a strictly increasing CDF needs. A
        // search confined to `..t` agrees with the global one whenever
        // `cdf[t - 1] >= u`.
        let lower = if ZIPF_TIER1 <= n && self.cdf[ZIPF_TIER1 - 1] >= u {
            self.cdf[..ZIPF_TIER1].partition_point(|p| *p < u)
        } else if ZIPF_TIER2 <= n && self.cdf[ZIPF_TIER2 - 1] >= u {
            self.cdf[..ZIPF_TIER2].partition_point(|p| *p < u)
        } else {
            self.cdf.partition_point(|p| *p < u)
        };
        lower.min(n - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (it never is; kept for API
    /// symmetry with collections).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

impl Sampler for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// An empirical distribution: samples uniformly from observed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from observed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs at least one value");
        Empirical { values }
    }
}

impl Sampler for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[rng.next_index(self.values.len())]
    }
}

/// A boxed sampler, for configurations that choose distributions at runtime.
pub type DynSampler = Box<dyn Sampler + Send + Sync>;

impl Sampler for DynSampler {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (**self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(s: &impl Sampler, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn var_of(s: &impl Sampler, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    #[test]
    fn exponential_moments() {
        let e = Exponential::with_rate(0.1); // mean 10
        let m = mean_of(&e, 200_000, 1);
        assert!((m - 10.0).abs() < 0.15, "mean {m}");
        let v = var_of(&e, 200_000, 2);
        assert!((v - 100.0).abs() < 5.0, "variance {v}");
        assert_eq!(Exponential::with_mean(10.0).mean(), 10.0);
    }

    #[test]
    fn superposition_matches_the_pooled_rate() {
        // k independent rate-λ processes merge into one rate-kλ process:
        // the pooled gap distribution equals Exponential::with_rate(kλ)
        // exactly, and empirically the min-of-k gap matches its mean.
        let base = Exponential::with_rate(0.25); // mean 4
        let pooled = base.superposed(8);
        assert_eq!(pooled, Exponential::with_rate(8.0 * 0.25));
        assert_eq!(base.superposed(1), base, "one member is the identity");
        let m = mean_of(&pooled, 200_000, 11);
        assert!((m - 0.5).abs() < 0.01, "pooled mean {m}");
        // Cross-check against a literal superposition: the mean gap of
        // min-of-8 independent exponentials is mean/8.
        let mut rng = SimRng::seed_from_u64(12);
        let n = 50_000;
        let literal: f64 =
            (0..n).map(|_| (0..8).map(|_| base.sample(&mut rng)).fold(f64::INFINITY, f64::min)).sum::<f64>()
                / n as f64;
        assert!((literal - 0.5).abs() < 0.02, "literal superposition mean {literal}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn superposition_rejects_zero_members() {
        let _ = Exponential::with_mean(1.0).superposed(0);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let e = Exponential::with_mean(1.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(5.0, 2.0);
        let m = mean_of(&n, 200_000, 4);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        let v = var_of(&n, 200_000, 5);
        assert!((v - 4.0).abs() < 0.15, "variance {v}");
    }

    #[test]
    fn lognormal_with_mean_hits_linear_mean() {
        let ln = LogNormal::with_mean(3.0, 0.5);
        let m = mean_of(&ln, 400_000, 6);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let p = Pareto::new(2.0, 3.0);
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= 2.0);
        }
        // E[X] = alpha*xm/(alpha-1) = 3 for alpha=3, xm=2.
        let m = mean_of(&p, 400_000, 9);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn gpd_shape_zero_degenerates_to_exponential() {
        let g = GeneralizedPareto::new(0.0, 5.0, 0.0);
        let m = mean_of(&g, 200_000, 10);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn gpd_etc_value_sizes_are_plausible() {
        // ETC value sizes: GP(0, 214.48, 0.348); mean = sigma/(1-k) ~ 329.
        let g = GeneralizedPareto::new(0.0, 214.48, 0.348);
        let m = mean_of(&g, 400_000, 11);
        assert!((m - 329.0).abs() < 25.0, "mean {m}");
        let mut rng = SimRng::seed_from_u64(12);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn gev_etc_key_sizes_are_plausible() {
        // ETC key sizes: GEV(30.7984, 8.20449, 0.078688); median = mu + sigma*((ln2)^-k - 1)/k.
        let g = Gev::new(30.7984, 8.20449, 0.078688);
        let mut rng = SimRng::seed_from_u64(13);
        let mut xs: Vec<f64> = (0..100_001).map(|_| g.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[50_000];
        let k = 0.078688f64;
        let expected = 30.7984 + 8.20449 * ((std::f64::consts::LN_2.powf(-k)) - 1.0) / k;
        assert!((med - expected).abs() < 0.5, "median {med} vs expected {expected}");
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::seed_from_u64(14);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_tiered_matches_plain_binary_search() {
        // The tiered search is a pure speed change: every draw must
        // produce the exact rank a binary search over the whole prefix
        // table produces, for the same RNG stream. Sizes straddle both
        // tier boundaries.
        for &(n, s) in &[
            (1usize, 0.7),
            (2, 0.99),
            (31, 0.5),
            (32, 0.5),
            (33, 0.5),
            (10, 0.0),
            (1000, 0.99),
            (1024, 0.99),
            (1025, 0.99),
            (4096, 1.2),
        ] {
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for k in 1..=n {
                acc += 1.0 / fast_pow(k as f64, s);
                cdf.push(acc);
            }
            for v in &mut cdf {
                *v /= acc;
            }
            let z = Zipf::new(n, s);
            let mut rng = SimRng::seed_from_u64(42);
            let mut reference_rng = SimRng::seed_from_u64(42);
            for _ in 0..2_000 {
                let got = z.sample_rank(&mut rng);
                let u = reference_rng.next_f64();
                let expect = match cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
                    Ok(i) => i,
                    Err(i) => i.min(n - 1),
                };
                assert_eq!(got, expect, "n={n} s={s} u={u}");
            }
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SimRng::seed_from_u64(15);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn empirical_samples_only_observed_values() {
        let e = Empirical::new(vec![1.5, 2.5, 4.0]);
        let mut rng = SimRng::seed_from_u64(16);
        for _ in 0..1_000 {
            let x = e.sample(&mut rng);
            assert!(x == 1.5 || x == 2.5 || x == 4.0);
        }
    }

    #[test]
    fn deterministic_and_uniform() {
        let mut rng = SimRng::seed_from_u64(17);
        assert_eq!(Deterministic::new(2.0).sample(&mut rng), 2.0);
        let u = Uniform::new(3.0, 7.0);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((3.0..7.0).contains(&x));
        }
        let m = mean_of(&u, 100_000, 18);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn sample_us_clamps_negatives() {
        let n = Normal::new(-100.0, 0.1);
        let mut rng = SimRng::seed_from_u64(19);
        assert_eq!(n.sample_us(&mut rng), SimDuration::ZERO);
        let d = Deterministic::new(2.5);
        assert_eq!(d.sample_us(&mut rng).as_ns(), 2_500);
    }

    #[test]
    fn dyn_sampler_boxing_works() {
        let d: DynSampler = Box::new(Deterministic::new(1.0));
        let mut rng = SimRng::seed_from_u64(20);
        assert_eq!(d.sample(&mut rng), 1.0);
    }
}
