//! Streaming mean/variance via Welford's online algorithm.

/// Numerically stable streaming accumulator for mean and variance.
///
/// # Example
///
/// ```
/// use tpv_sim::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when fewer than 1 sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    ///
    /// The combination is **float-order-sensitive**: `a.merge(b)` and
    /// `b.merge(a)` can differ in the last ulp, so any caller that
    /// promises bit-identical results across thread schedules (the
    /// sharded and phased×sharded kernels in `tpv-core`) must fold
    /// partitions in a canonical order. Two facts make that cheap:
    /// merging `other` into an **empty** accumulator is an exact copy
    /// (no arithmetic), and merging an empty `other` is a no-op — so
    /// "buffer partials, sort by a canonical rank, replay into fresh
    /// state" reproduces the single-partition result bit for bit.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0).collect();
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(42.0);
        assert_eq!(w1.mean(), 42.0);
        assert_eq!(w1.sample_variance(), 0.0);
        assert_eq!(w1.population_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 1.5).collect();
        let ys: Vec<f64> = (0..300).map(|i| 1000.0 - i as f64).collect();
        let mut a = Welford::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let mut all = Welford::new();
        xs.iter().chain(ys.iter()).for_each(|&x| all.push(x));
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-6);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.sample_variance());
        a.merge(&Welford::new());
        assert_eq!((a.count(), a.mean(), a.sample_variance()), before);
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), 2.0);
    }
}
