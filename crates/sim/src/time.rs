//! Simulated time.
//!
//! The simulation counts nanoseconds in a `u64`, which covers ~584 years of
//! simulated time — far beyond any experiment. Two newtypes keep *instants*
//! ([`SimTime`]) and *spans* ([`SimDuration`]) apart so the type system
//! rejects nonsense like adding two instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use tpv_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.as_ns(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use tpv_sim::SimDuration;
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ns(), 2_500);
/// assert!((d.as_us() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled at or after this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from nanoseconds since simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds since simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (lossy).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start (lossy).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `self` to `later`, or [`SimDuration::ZERO`] if `later`
    /// is in the past.
    pub fn until(self, later: SimTime) -> SimDuration {
        SimDuration(later.0.saturating_sub(self.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

/// `x.round() as u64` for non-negative `x`, without the libm `round`
/// call on the common path.
///
/// `f64::round` (round half away from zero) has no baseline-x86
/// instruction, so it compiles to a libm call — measurable on the
/// simulator's hot paths, which round on every duration construction.
/// For `0 <= x < 2^52` the truncation `x as u64` is exact, and so is
/// the fractional remainder `x - trunc` (both are multiples of
/// `ulp(x)`), so comparing the remainder against 0.5 reproduces
/// round-half-away bit for bit. (Beware the tempting `(x + 0.5) as
/// u64`: the *addition* can round — e.g. the largest f64 below 0.5
/// plus 0.5 is exactly 1.0 — which is why the remainder is compared
/// instead of added.) The rare huge value falls back to the real thing.
#[inline]
fn round_nonneg_as_u64(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    if x < (1u64 << 52) as f64 {
        let trunc = x as u64;
        trunc + u64::from(x - trunc as f64 >= 0.5)
    } else {
        x.round() as u64
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    ///
    /// This is the workhorse constructor for model parameters expressed in
    /// microseconds (the paper's natural unit).
    pub fn from_us_f64(us: f64) -> Self {
        if us <= 0.0 || !us.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration(round_nonneg_as_u64(us * 1_000.0))
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration(round_nonneg_as_u64(s * 1_000_000_000.0))
    }

    /// Nanoseconds in this span.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds in this span (lossy).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds in this span (lossy).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds in this span (lossy).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, saturating.
    ///
    /// Used for frequency scaling: work that takes `d` at nominal frequency
    /// takes `d.scale(f_nominal / f_current)` at a lower frequency.
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale {factor}");
        // `round` saturates on the huge-value path (float→int casts
        // clamp), preserving the historical `SimDuration::MAX` ceiling.
        SimDuration(round_nonneg_as_u64(self.0 as f64 * factor.max(0.0)))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "duration underflow: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0ns")
    } else if ns.is_multiple_of(1_000_000_000) {
        write!(f, "{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        write!(f, "{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        write!(f, "{}us", ns / 1_000)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_us(7).as_ns(), 7_000);
        assert_eq!(SimDuration::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimDuration::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(SimTime::from_us(7).as_ns(), 7_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_between_instants_and_spans() {
        let t0 = SimTime::from_us(100);
        let t1 = t0 + SimDuration::from_us(50);
        assert_eq!(t1 - t0, SimDuration::from_us(50));
        assert_eq!(t1.since(t0).as_us(), 50.0);
        assert_eq!(t0.until(t1).as_us(), 50.0);
        assert_eq!(t1.until(t0), SimDuration::ZERO);
        assert_eq!(t1 - SimDuration::from_us(150), SimTime::ZERO);
    }

    #[test]
    fn fractional_microsecond_constructor_rounds() {
        assert_eq!(SimDuration::from_us_f64(2.5).as_ns(), 2_500);
        assert_eq!(SimDuration::from_us_f64(0.0004).as_ns(), 0);
        assert_eq!(SimDuration::from_us_f64(0.0006).as_ns(), 1);
        assert_eq!(SimDuration::from_us_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_us_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_ns(), 1_500_000_000);
    }

    #[test]
    fn fast_round_matches_libm_round_exactly() {
        // The libm-free rounding must agree with f64::round bit for bit,
        // including the adversarial near-half values where a naive
        // `(x + 0.5) as u64` rounds in the addition (the largest f64
        // below 0.5 plus 0.5 is exactly 1.0).
        let adversarial = [
            0.49999999999999994, // nextafter(0.5, 0): round = 0, x + 0.5 == 1.0
            0.5,
            0.5000000000000001,
            1.4999999999999998,
            1.5,
            2.5,
            0.0,
            4503599627370495.5, // 2^52 - 0.5
        ];
        for &x in &adversarial {
            assert_eq!(round_nonneg_as_u64(x), x.round() as u64, "x = {x:e}");
        }
        // Pseudo-random sweep across magnitudes (splitmix-style mixing).
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..100_000 {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (state % 56) as i32 - 2;
            let x = mantissa * 2f64.powi(exp);
            assert_eq!(round_nonneg_as_u64(x), x.round() as u64, "x = {x:e}");
        }
    }

    #[test]
    fn scaling_is_saturating_and_proportional() {
        let d = SimDuration::from_us(10);
        assert_eq!(d.scale(2.0).as_ns(), 20_000);
        assert_eq!(d.scale(0.5).as_ns(), 5_000);
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.scale(2.0), SimDuration::MAX);
    }

    #[test]
    fn min_max_sum() {
        let a = SimDuration::from_us(3);
        let b = SimDuration::from_us(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total.as_us(), 11.0);
        assert_eq!(SimTime::from_us(1).max(SimTime::from_us(2)).as_us(), 2.0);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(12).to_string(), "12us");
        assert_eq!(SimDuration::from_ms(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12s");
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimTime::from_ms(1).to_string(), "t=1ms");
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(SimDuration::from_us(1).saturating_sub(SimDuration::from_us(2)), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_us(1), SimTime::MAX);
    }

    #[test]
    fn std_duration_conversion() {
        let d: std::time::Duration = SimDuration::from_ms(5).into();
        assert_eq!(d.as_millis(), 5);
    }
}
