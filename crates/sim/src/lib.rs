//! # tpv-sim — discrete-event simulation substrate
//!
//! This crate provides the foundational machinery on which the whole `tpv`
//! testbed simulation is built:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//!   as dedicated newtypes so wall-clock and simulated time can never be
//!   confused ([C-NEWTYPE]).
//! * [`EventQueue`] — a deterministic, total-ordered pending-event set.
//! * [`PhaseSchedule`] — deterministic partitions of a run into time
//!   phases, the substrate of every time-varying machine/load model.
//! * [`rng`] — a self-contained, seedable, splittable pseudo-random number
//!   generator (xoshiro256++), implemented here so that simulation results
//!   are reproducible across platforms and dependency upgrades.
//! * [`dist`] — the statistical distributions used by the workload models
//!   (exponential, normal, lognormal, Pareto, generalized Pareto, GEV,
//!   Zipf, …).
//! * [`hist`] — a mergeable, log-bucketed latency histogram in the spirit of
//!   HdrHistogram, used by the load generators to record per-request
//!   latencies.
//! * [`welford`] — streaming mean/variance.
//! * [`lindley`] — the single-server FIFO waiting-time recursion used by
//!   every queueing resource in the testbed (client threads, server
//!   workers, NIC queues).
//!
//! # Example
//!
//! ```
//! use tpv_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_us(10), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_us(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_us(), ev), (5.0, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod phase;
mod slab;
mod time;

pub mod dist;
pub mod hist;
pub mod lindley;
pub mod rng;
pub mod welford;

pub use event::EventQueue;
pub use hist::LatencyHistogram;
pub use lindley::FifoResource;
pub use phase::PhaseSchedule;
pub use rng::SimRng;
pub use slab::{HotColdSlab, Slab};
pub use time::{SimDuration, SimTime};
pub use welford::Welford;
