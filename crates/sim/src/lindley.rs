//! Single-server FIFO queueing via the Lindley recursion.
//!
//! Every serially-executing resource in the testbed — a client generator
//! thread, a pinned server worker, a NIC queue — is a FIFO server: work
//! items start at `max(arrival, previous_departure)`. Because there is no
//! preemption, the departure time of an item is known the moment it is
//! offered, which lets the simulation resolve whole request legs without
//! extra events (this is what makes 10⁶-request runs cheap).

use crate::{SimDuration, SimTime};

/// Outcome of offering one work item to a [`FifoResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the resource began executing the item.
    pub start: SimTime,
    /// When the item completed.
    pub end: SimTime,
    /// How long the item waited in the queue before starting.
    pub queue_wait: SimDuration,
    /// How long the resource had been idle when the item arrived
    /// ([`SimDuration::ZERO`] if it was busy).
    pub idle_before: SimDuration,
}

/// A single-server FIFO resource.
///
/// # Example
///
/// ```
/// use tpv_sim::{FifoResource, SimDuration, SimTime};
///
/// let mut worker = FifoResource::new();
/// let g1 = worker.offer(SimTime::from_us(0), SimDuration::from_us(10));
/// assert_eq!(g1.end, SimTime::from_us(10));
/// // Arrives while busy: queues behind the first item.
/// let g2 = worker.offer(SimTime::from_us(5), SimDuration::from_us(10));
/// assert_eq!(g2.start, SimTime::from_us(10));
/// assert_eq!(g2.queue_wait, SimDuration::from_us(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: SimTime,
    busy_time: SimDuration,
    items: u64,
}

impl FifoResource {
    /// Creates an idle resource, free from the simulation epoch.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Offers an item arriving at `arrival` needing `service` time.
    ///
    /// Items must be offered in non-decreasing arrival order (FIFO); this
    /// is asserted in debug builds.
    pub fn offer(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let start = arrival.max(self.busy_until);
        let idle_before =
            if arrival >= self.busy_until { arrival.since(self.busy_until) } else { SimDuration::ZERO };
        let end = start + service;
        let queue_wait = start.since(arrival);
        self.busy_until = end;
        self.busy_time += service;
        self.items += 1;
        Grant { start, end, queue_wait, idle_before }
    }

    /// When the resource next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the resource is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        now >= self.busy_until
    }

    /// Total time spent serving items so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of items served (or queued) so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Utilisation over `[SimTime::ZERO, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "utilization needs a positive horizon");
        (self.busy_time.as_ns() as f64 / horizon.as_ns() as f64).min(1.0)
    }

    /// Forgets all state (used when resetting the environment between runs).
    pub fn reset(&mut self) {
        *self = FifoResource::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let g = r.offer(SimTime::from_us(100), SimDuration::from_us(10));
        assert_eq!(g.start, SimTime::from_us(100));
        assert_eq!(g.end, SimTime::from_us(110));
        assert_eq!(g.queue_wait, SimDuration::ZERO);
        assert_eq!(g.idle_before, SimDuration::from_us(100));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new();
        r.offer(SimTime::ZERO, SimDuration::from_us(10));
        let g = r.offer(SimTime::from_us(2), SimDuration::from_us(5));
        assert_eq!(g.start, SimTime::from_us(10));
        assert_eq!(g.end, SimTime::from_us(15));
        assert_eq!(g.queue_wait, SimDuration::from_us(8));
        assert_eq!(g.idle_before, SimDuration::ZERO);
    }

    #[test]
    fn departures_are_nondecreasing() {
        let mut r = FifoResource::new();
        let mut rng = crate::SimRng::seed_from_u64(1);
        let mut t = SimTime::ZERO;
        let mut last_end = SimTime::ZERO;
        for _ in 0..10_000 {
            t += SimDuration::from_ns(rng.next_below(20_000));
            let g = r.offer(t, SimDuration::from_ns(rng.next_below(15_000)));
            assert!(g.end >= last_end, "departure went backwards");
            assert!(g.start >= t);
            last_end = g.end;
        }
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut r = FifoResource::new();
        r.offer(SimTime::ZERO, SimDuration::from_us(25));
        r.offer(SimTime::from_us(50), SimDuration::from_us(25));
        assert_eq!(r.busy_time(), SimDuration::from_us(50));
        assert!((r.utilization(SimTime::from_us(100)) - 0.5).abs() < 1e-12);
        assert_eq!(r.items(), 2);
    }

    #[test]
    fn idle_checks() {
        let mut r = FifoResource::new();
        assert!(r.is_idle_at(SimTime::ZERO));
        r.offer(SimTime::ZERO, SimDuration::from_us(10));
        assert!(!r.is_idle_at(SimTime::from_us(5)));
        assert!(r.is_idle_at(SimTime::from_us(10)));
        assert_eq!(r.busy_until(), SimTime::from_us(10));
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = FifoResource::new();
        r.offer(SimTime::from_us(3), SimDuration::from_us(4));
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.items(), 0);
    }
}
