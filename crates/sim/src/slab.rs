//! A free-list slab arena for per-request simulation state.
//!
//! The event loop keeps one [`Slab`] of in-flight request records and
//! routes only the `u32` key through the event queue, instead of copying
//! the full request payload (descriptor, timestamps, stage context) into
//! every event variant. Vacant slots form an **intrusive free list** —
//! each vacancy stores the index of the next free slot in place — so a
//! run allocates O(peak in-flight) slots regardless of how many requests
//! it processes, and insert/remove touch exactly one slot with no side
//! allocation. Recycling is LIFO: the hottest slot (most recently freed,
//! still in cache) is reused first.
//!
//! # Example
//!
//! ```
//! use tpv_sim::Slab;
//!
//! let mut slab: Slab<&str> = Slab::with_capacity(4);
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(*slab.get(a), "alpha");
//! assert_eq!(slab.remove(b), "beta");
//! // Freed keys are recycled.
//! let c = slab.insert("gamma");
//! assert_eq!(c, b);
//! assert_eq!(slab.len(), 2);
//! ```

/// Free-list terminator.
const NONE: u32 = u32::MAX;

/// One slot: either a live value or a link in the free list.
#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    /// Index of the next vacant slot ([`NONE`] ends the list).
    Vacant(u32),
}

/// A slab of `T` values addressed by recycled `u32` keys.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the intrusive free list ([`NONE`] when full).
    free_head: u32,
    live: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free_head: NONE, live: 0 }
    }

    /// An empty slab with room for `capacity` concurrent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab { entries: Vec::with_capacity(capacity), free_head: NONE, live: 0 }
    }

    /// Stores `value` and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        match self.free_head {
            NONE => {
                let key = u32::try_from(self.entries.len()).expect("slab exceeded u32::MAX slots");
                assert!(key != NONE, "slab exceeded u32::MAX slots");
                self.entries.push(Entry::Occupied(value));
                key
            }
            key => {
                let slot = &mut self.entries[key as usize];
                let Entry::Vacant(next) = *slot else { unreachable!("free list points at a live slot") };
                self.free_head = next;
                *slot = Entry::Occupied(value);
                key
            }
        }
    }

    /// The value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn get(&self, key: u32) -> &T {
        match &self.entries[key as usize] {
            Entry::Occupied(value) => value,
            Entry::Vacant(_) => panic!("slab key is vacant"),
        }
    }

    /// Mutable access to the value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        match &mut self.entries[key as usize] {
            Entry::Occupied(value) => value,
            Entry::Vacant(_) => panic!("slab key is vacant"),
        }
    }

    /// Removes and returns the value under `key`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        match std::mem::replace(slot, Entry::Vacant(self.free_head)) {
            Entry::Occupied(value) => {
                self.free_head = key;
                self.live -= 1;
                value
            }
            vacant @ Entry::Vacant(_) => {
                // Undo the speculative replace so the free list stays intact.
                *slot = vacant;
                panic!("slab key is vacant")
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable) — the slab's
    /// high-water mark of concurrent entries.
    pub fn high_water(&self) -> usize {
        self.entries.len()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let keys: Vec<u32> = (0..100).map(|i| slab.insert(i * 3)).collect();
        assert_eq!(slab.len(), 100);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*slab.get(k), i as i32 * 3);
        }
        for &k in &keys {
            slab.remove(k);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 100);
    }

    #[test]
    fn keys_are_recycled_lifo() {
        let mut slab = Slab::with_capacity(8);
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO recycling: most recently freed slot is reused first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        assert_eq!(slab.high_water(), 2, "no new slots while the free list serves");
    }

    #[test]
    fn free_list_survives_interleaved_churn() {
        let mut slab = Slab::new();
        let mut live: Vec<u32> = (0..16u32).map(|i| slab.insert(i)).collect();
        // Free every other key, insert replacements, and verify the
        // arena never grows past the true peak.
        for round in 0..10u32 {
            for _ in 0..8 {
                let k = live.remove((round as usize) % live.len());
                slab.remove(k);
            }
            for i in 0..8u32 {
                live.push(slab.insert(round * 100 + i));
            }
        }
        assert_eq!(slab.len(), 16);
        assert_eq!(slab.high_water(), 16, "churn must recycle, not grow");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(vec![1, 2]);
        slab.get_mut(k).push(3);
        assert_eq!(*slab.get(k), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.remove(k);
    }
}
