//! A free-list slab arena for per-request simulation state.
//!
//! The event loop keeps one [`Slab`] of in-flight request records and
//! routes only the `u32` key through the event queue, instead of copying
//! the full request payload (descriptor, timestamps, stage context) into
//! every event variant. Keys are recycled through a free list, so a run
//! allocates O(peak in-flight) slots regardless of how many requests it
//! processes.
//!
//! # Example
//!
//! ```
//! use tpv_sim::Slab;
//!
//! let mut slab: Slab<&str> = Slab::with_capacity(4);
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(*slab.get(a), "alpha");
//! assert_eq!(slab.remove(b), "beta");
//! // Freed keys are recycled.
//! let c = slab.insert("gamma");
//! assert_eq!(c, b);
//! assert_eq!(slab.len(), 2);
//! ```

/// A slab of `T` values addressed by recycled `u32` keys.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// An empty slab with room for `capacity` concurrent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab { entries: Vec::with_capacity(capacity), free: Vec::new(), live: 0 }
    }

    /// Stores `value` and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(key) => {
                self.entries[key as usize] = Some(value);
                key
            }
            None => {
                let key = u32::try_from(self.entries.len()).expect("slab exceeded u32::MAX slots");
                self.entries.push(Some(value));
                key
            }
        }
    }

    /// The value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    pub fn get(&self, key: u32) -> &T {
        self.entries[key as usize].as_ref().expect("slab key is vacant")
    }

    /// Mutable access to the value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        self.entries[key as usize].as_mut().expect("slab key is vacant")
    }

    /// Removes and returns the value under `key`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    pub fn remove(&mut self, key: u32) -> T {
        let value = self.entries[key as usize].take().expect("slab key is vacant");
        self.free.push(key);
        self.live -= 1;
        value
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable) — the slab's
    /// high-water mark of concurrent entries.
    pub fn high_water(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let keys: Vec<u32> = (0..100).map(|i| slab.insert(i * 3)).collect();
        assert_eq!(slab.len(), 100);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*slab.get(k), i as i32 * 3);
        }
        for &k in &keys {
            slab.remove(k);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 100);
    }

    #[test]
    fn keys_are_recycled_lifo() {
        let mut slab = Slab::with_capacity(8);
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO recycling: most recently freed slot is reused first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        assert_eq!(slab.high_water(), 2, "no new slots while the free list serves");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(vec![1, 2]);
        slab.get_mut(k).push(3);
        assert_eq!(*slab.get(k), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.remove(k);
    }
}
