//! A free-list slab arena for per-request simulation state.
//!
//! The event loop keeps one slab of in-flight request records and
//! routes only the `u32` key through the event queue, instead of copying
//! the full request payload (descriptor, timestamps, stage context) into
//! every event variant. Vacant slots form an **intrusive free list** —
//! each vacancy stores the index of the next free slot in place — so a
//! run allocates O(peak in-flight) slots regardless of how many requests
//! it processes, and insert/remove touch exactly one slot with no side
//! allocation. Recycling is LIFO: the hottest slot (most recently freed,
//! still in cache) is reused first.
//!
//! Two arenas are provided:
//!
//! * [`Slab`] — the general arena: one `Vec` of tagged entries, each
//!   slot a value or a free-list link.
//! * [`HotColdSlab`] — the structure-of-arrays split for hot loops: the
//!   fields an event loop touches on *every* event (a few bytes of
//!   timestamps and indices) live in one dense parallel array, while
//!   the cold remainder (descriptors, stage contexts) lives in a second
//!   array the common fast path never loads. Removal returns only the
//!   hot half and never reads cold memory, so a completion-heavy loop's
//!   cache footprint scales with the hot record size, not the full
//!   record.
//!
//! # Example
//!
//! ```
//! use tpv_sim::Slab;
//!
//! let mut slab: Slab<&str> = Slab::with_capacity(4);
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(*slab.get(a), "alpha");
//! assert_eq!(slab.remove(b), "beta");
//! // Freed keys are recycled.
//! let c = slab.insert("gamma");
//! assert_eq!(c, b);
//! assert_eq!(slab.len(), 2);
//! ```

/// Free-list terminator.
const NONE: u32 = u32::MAX;

/// One slot: either a live value or a link in the free list.
#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    /// Index of the next vacant slot ([`NONE`] ends the list).
    Vacant(u32),
}

/// A slab of `T` values addressed by recycled `u32` keys.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the intrusive free list ([`NONE`] when full).
    free_head: u32,
    live: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free_head: NONE, live: 0 }
    }

    /// An empty slab with room for `capacity` concurrent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab { entries: Vec::with_capacity(capacity), free_head: NONE, live: 0 }
    }

    /// Stores `value` and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        match self.free_head {
            NONE => {
                let key = u32::try_from(self.entries.len()).expect("slab exceeded u32::MAX slots");
                assert!(key != NONE, "slab exceeded u32::MAX slots");
                self.entries.push(Entry::Occupied(value));
                key
            }
            key => {
                let slot = &mut self.entries[key as usize];
                let Entry::Vacant(next) = *slot else { unreachable!("free list points at a live slot") };
                self.free_head = next;
                *slot = Entry::Occupied(value);
                key
            }
        }
    }

    /// The value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn get(&self, key: u32) -> &T {
        match &self.entries[key as usize] {
            Entry::Occupied(value) => value,
            Entry::Vacant(_) => panic!("slab key is vacant"),
        }
    }

    /// Mutable access to the value stored under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> &mut T {
        match &mut self.entries[key as usize] {
            Entry::Occupied(value) => value,
            Entry::Vacant(_) => panic!("slab key is vacant"),
        }
    }

    /// Removes and returns the value under `key`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    #[inline]
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        match std::mem::replace(slot, Entry::Vacant(self.free_head)) {
            Entry::Occupied(value) => {
                self.free_head = key;
                self.live -= 1;
                value
            }
            vacant @ Entry::Vacant(_) => {
                // Undo the speculative replace so the free list stays intact.
                *slot = vacant;
                panic!("slab key is vacant")
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable) — the slab's
    /// high-water mark of concurrent entries.
    pub fn high_water(&self) -> usize {
        self.entries.len()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A slab whose records are split structure-of-arrays style: the `H`alf
/// touched on every event lives in one dense array, the `C`old remainder
/// in a parallel array loaded only when actually needed. One key
/// addresses both halves.
///
/// Both halves are `Copy`, which is what lets [`HotColdSlab::remove`]
/// hand back the hot half without reading (or dropping) the cold slot —
/// the vacated cold bytes simply go stale until the slot is recycled.
/// The free list lives in a third parallel array of `u32` links, so slot
/// bookkeeping never touches either payload array.
///
/// # Example
///
/// ```
/// use tpv_sim::HotColdSlab;
///
/// let mut slab: HotColdSlab<u64, [u8; 64]> = HotColdSlab::with_capacity(4);
/// let k = slab.insert(7, [0; 64]);
/// assert_eq!(*slab.hot(k), 7);
/// *slab.hot_mut(k) += 1;
/// assert_eq!(slab.remove(k), 8); // cold half never read
/// assert!(slab.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HotColdSlab<H, C> {
    hot: Vec<H>,
    cold: Vec<C>,
    /// Parallel free-list links: `links[i]` is the next vacant slot when
    /// slot `i` is vacant ([`NONE`] ends the list) and [`OCCUPIED`] when
    /// it is live.
    links: Vec<u32>,
    /// Head of the intrusive free list ([`NONE`] when full).
    free_head: u32,
    live: usize,
}

/// Link value marking a live [`HotColdSlab`] slot.
const OCCUPIED: u32 = u32::MAX - 1;

impl<H: Copy, C: Copy> HotColdSlab<H, C> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty slab with room for `capacity` concurrent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        HotColdSlab {
            hot: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            links: Vec::with_capacity(capacity),
            free_head: NONE,
            live: 0,
        }
    }

    /// Stores a record and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 2` slots.
    pub fn insert(&mut self, hot: H, cold: C) -> u32 {
        self.live += 1;
        match self.free_head {
            NONE => {
                let key = u32::try_from(self.hot.len()).expect("slab exceeded u32::MAX slots");
                assert!(key < OCCUPIED, "slab exceeded u32::MAX slots");
                self.hot.push(hot);
                self.cold.push(cold);
                self.links.push(OCCUPIED);
                key
            }
            key => {
                let slot = key as usize;
                debug_assert!(self.links[slot] != OCCUPIED, "free list points at a live slot");
                self.free_head = self.links[slot];
                self.links[slot] = OCCUPIED;
                self.hot[slot] = hot;
                self.cold[slot] = cold;
                key
            }
        }
    }

    /// The hot half of the record under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of bounds; vacancy is checked in debug
    /// builds only (the hot path trades the tag check for density).
    #[inline]
    pub fn hot(&self, key: u32) -> &H {
        debug_assert!(self.links[key as usize] == OCCUPIED, "slab key is vacant");
        &self.hot[key as usize]
    }

    /// Mutable access to the hot half of the record under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of bounds; vacancy is checked in debug
    /// builds only.
    #[inline]
    pub fn hot_mut(&mut self, key: u32) -> &mut H {
        debug_assert!(self.links[key as usize] == OCCUPIED, "slab key is vacant");
        &mut self.hot[key as usize]
    }

    /// The cold half of the record under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of bounds; vacancy is checked in debug
    /// builds only.
    #[inline]
    pub fn cold(&self, key: u32) -> &C {
        debug_assert!(self.links[key as usize] == OCCUPIED, "slab key is vacant");
        &self.cold[key as usize]
    }

    /// Mutable access to the cold half of the record under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of bounds; vacancy is checked in debug
    /// builds only.
    #[inline]
    pub fn cold_mut(&mut self, key: u32) -> &mut C {
        debug_assert!(self.links[key as usize] == OCCUPIED, "slab key is vacant");
        &mut self.cold[key as usize]
    }

    /// Removes the record under `key`, recycling the slot, and returns
    /// its hot half. The cold half is *not* read — completion paths that
    /// only need the hot fields never load the cold array.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of bounds; double-removal is caught in
    /// debug builds only.
    #[inline]
    pub fn remove(&mut self, key: u32) -> H {
        let slot = key as usize;
        debug_assert!(self.links[slot] == OCCUPIED, "slab key is vacant");
        self.links[slot] = self.free_head;
        self.free_head = key;
        self.live -= 1;
        self.hot[slot]
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable) — the slab's
    /// high-water mark of concurrent entries.
    pub fn high_water(&self) -> usize {
        self.hot.len()
    }
}

impl<H: Copy, C: Copy> Default for HotColdSlab<H, C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let keys: Vec<u32> = (0..100).map(|i| slab.insert(i * 3)).collect();
        assert_eq!(slab.len(), 100);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*slab.get(k), i as i32 * 3);
        }
        for &k in &keys {
            slab.remove(k);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 100);
    }

    #[test]
    fn keys_are_recycled_lifo() {
        let mut slab = Slab::with_capacity(8);
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO recycling: most recently freed slot is reused first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        assert_eq!(slab.high_water(), 2, "no new slots while the free list serves");
    }

    #[test]
    fn free_list_survives_interleaved_churn() {
        let mut slab = Slab::new();
        let mut live: Vec<u32> = (0..16u32).map(|i| slab.insert(i)).collect();
        // Free every other key, insert replacements, and verify the
        // arena never grows past the true peak.
        for round in 0..10u32 {
            for _ in 0..8 {
                let k = live.remove((round as usize) % live.len());
                slab.remove(k);
            }
            for i in 0..8u32 {
                live.push(slab.insert(round * 100 + i));
            }
        }
        assert_eq!(slab.len(), 16);
        assert_eq!(slab.high_water(), 16, "churn must recycle, not grow");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(vec![1, 2]);
        slab.get_mut(k).push(3);
        assert_eq!(*slab.get(k), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.remove(k);
    }

    #[test]
    fn hot_cold_round_trip_and_lifo_recycling() {
        let mut slab: HotColdSlab<u32, (u64, u64)> = HotColdSlab::with_capacity(8);
        let a = slab.insert(1, (10, 100));
        let b = slab.insert(2, (20, 200));
        assert_eq!(*slab.hot(a), 1);
        assert_eq!(*slab.cold(b), (20, 200));
        *slab.hot_mut(a) = 11;
        slab.cold_mut(b).0 = 21;
        assert_eq!(*slab.hot(a), 11);
        assert_eq!(slab.cold(b).0, 21);
        assert_eq!(slab.remove(a), 11);
        assert_eq!(slab.remove(b), 2);
        assert!(slab.is_empty());
        // LIFO recycling, matching `Slab`.
        assert_eq!(slab.insert(3, (0, 0)), b);
        assert_eq!(slab.insert(4, (0, 0)), a);
        assert_eq!(slab.high_water(), 2, "no new slots while the free list serves");
    }

    #[test]
    fn hot_cold_keys_match_slab_keys_under_churn() {
        // The kernel swaps `Slab` for `HotColdSlab`; identical recycling
        // keeps the request keys (and so the event payloads) identical.
        let mut plain: Slab<u32> = Slab::new();
        let mut split: HotColdSlab<u32, u32> = HotColdSlab::new();
        let mut live = Vec::new();
        for round in 0..50u32 {
            let kp = plain.insert(round);
            let ks = split.insert(round, round * 2);
            assert_eq!(kp, ks, "key divergence at round {round}");
            live.push(kp);
            if round % 3 == 0 {
                let victim = live.remove((round as usize * 7) % live.len());
                assert_eq!(plain.remove(victim), *split.hot(victim));
                split.remove(victim);
            }
        }
        assert_eq!(plain.len(), split.len());
        assert_eq!(plain.high_water(), split.high_water());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "vacant")]
    fn hot_cold_double_remove_panics_in_debug() {
        let mut slab: HotColdSlab<u8, u8> = HotColdSlab::new();
        let k = slab.insert(1, 2);
        slab.remove(k);
        slab.remove(k);
    }
}
