//! Phase schedules: deterministic partitions of simulated time.
//!
//! Real runs are not stationary — turbo budgets exhaust, governors ramp,
//! traffic is diurnal. A [`PhaseSchedule`] carves a run into consecutive
//! *phases* separated by fixed boundary instants, giving every layer
//! above (hardware state in `tpv-hw`, generator rates in `tpv-loadgen`,
//! topology nodes in `tpv-core`) one shared vocabulary for "what is in
//! effect at time *t*". Boundaries are plain [`SimTime`]s, so schedules
//! are deterministic by construction: the same schedule partitions every
//! seeded run identically.
//!
//! Phase `0` always starts at [`SimTime::ZERO`]; a schedule with no
//! boundaries is the degenerate single phase covering the whole run —
//! the static world every pre-phase experiment lives in.
//!
//! A schedule says nothing about *where* a run executes: because a
//! phase is just a time interval, per-phase aggregation composes with
//! partitioned (sharded) execution — each partition buckets its own
//! samples by the shared schedule and the partials merge afterwards.
//! The schedule side is exact (boundary instants are integers); only
//! the float moments inside each phase bucket need the canonical merge
//! order documented on [`Welford::merge`](crate::Welford::merge).
//!
//! # Example
//!
//! ```
//! use tpv_sim::{PhaseSchedule, SimTime, SimDuration};
//!
//! let s = PhaseSchedule::stepped(SimDuration::from_ms(10), 3);
//! assert_eq!(s.phase_count(), 3);
//! assert_eq!(s.phase_at(SimTime::from_ms(5)), 0);
//! assert_eq!(s.phase_at(SimTime::from_ms(10)), 1);
//! assert_eq!(s.phase_at(SimTime::from_ms(25)), 2);
//! ```

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// A sorted set of phase-boundary instants partitioning simulated time
/// into `boundaries.len() + 1` consecutive phases.
///
/// Phase `i` covers `[boundary(i-1), boundary(i))` with phase 0 starting
/// at [`SimTime::ZERO`] and the last phase extending to the end of time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PhaseSchedule {
    boundaries: Vec<SimTime>,
}

impl PhaseSchedule {
    /// The degenerate schedule: one phase covering all of time. Runs
    /// under this schedule are exactly the static runs of the pre-phase
    /// testbed.
    pub fn single() -> Self {
        PhaseSchedule { boundaries: Vec::new() }
    }

    /// A schedule with the given boundary instants.
    ///
    /// # Panics
    ///
    /// Panics unless the boundaries are strictly increasing and the first
    /// one is after [`SimTime::ZERO`] (a boundary at t=0 would make phase
    /// 0 empty).
    pub fn new(boundaries: Vec<SimTime>) -> Self {
        if let Some(&first) = boundaries.first() {
            assert!(first > SimTime::ZERO, "first phase boundary must be after t=0, got {first}");
        }
        for pair in boundaries.windows(2) {
            assert!(
                pair[0] < pair[1],
                "phase boundaries must be strictly increasing: {} !< {}",
                pair[0],
                pair[1]
            );
        }
        PhaseSchedule { boundaries }
    }

    /// `phases` equal-length phases of `step` each (the last phase is
    /// open-ended like every schedule's). `stepped(d, 1)` is
    /// [`PhaseSchedule::single`].
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `phases` is zero.
    pub fn stepped(step: SimDuration, phases: usize) -> Self {
        assert!(!step.is_zero(), "phase step must be positive");
        assert!(phases > 0, "a schedule needs at least one phase");
        PhaseSchedule::new((1..phases).map(|k| SimTime::ZERO + step * k as u64).collect())
    }

    /// The boundary instants, in increasing order.
    pub fn boundaries(&self) -> &[SimTime] {
        &self.boundaries
    }

    /// Number of phases (`boundaries + 1`).
    pub fn phase_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// True for the degenerate single-phase schedule.
    pub fn is_single(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// The phase in effect at instant `t` (boundaries belong to the
    /// phase they open).
    pub fn phase_at(&self, t: SimTime) -> usize {
        self.boundaries.partition_point(|&b| b <= t)
    }

    /// First instant of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn phase_start(&self, phase: usize) -> SimTime {
        assert!(phase < self.phase_count(), "phase {phase} out of range");
        if phase == 0 {
            SimTime::ZERO
        } else {
            self.boundaries[phase - 1]
        }
    }

    /// First instant after `phase` ([`SimTime::MAX`] for the last phase).
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn phase_end(&self, phase: usize) -> SimTime {
        assert!(phase < self.phase_count(), "phase {phase} out of range");
        self.boundaries.get(phase).copied().unwrap_or(SimTime::MAX)
    }

    /// The union of two schedules: every boundary of either, deduplicated
    /// — the finest partition both schedules are refinements of.
    pub fn merged(&self, other: &PhaseSchedule) -> PhaseSchedule {
        let mut all: Vec<SimTime> = self.boundaries.iter().chain(other.boundaries.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        PhaseSchedule { boundaries: all }
    }

    /// The schedule restricted to the window `[start, end)`, re-anchored
    /// so the window's `start` becomes the new [`SimTime::ZERO`].
    ///
    /// Only boundaries strictly inside the window survive (a boundary at
    /// exactly `start` would open an empty phase 0; one at or past `end`
    /// is never reached). This is the seam segmented execution uses: a
    /// controller that replays a long phased run window by window hands
    /// each window the slice of the original schedule it will live under.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> PhaseSchedule {
        assert!(start < end, "empty slice window [{start}, {end})");
        PhaseSchedule {
            boundaries: self
                .boundaries
                .iter()
                .filter(|&&b| b > start && b < end)
                .map(|&b| SimTime::ZERO + b.since(start))
                .collect(),
        }
    }

    /// Per-phase fraction of the window `[start, end)` each phase covers
    /// (sums to 1). Used to time-average per-phase quantities — e.g. the
    /// effective offered load of a stepped-rate run.
    ///
    /// Single-phase schedules return exactly `[1.0]`, so static runs see
    /// no floating-point perturbation.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn overlap_weights(&self, start: SimTime, end: SimTime) -> Vec<f64> {
        assert!(start < end, "empty window [{start}, {end})");
        if self.is_single() {
            return vec![1.0];
        }
        let total = end.since(start).as_secs();
        (0..self.phase_count())
            .map(|p| {
                let s = self.phase_start(p).max(start);
                let e = self.phase_end(p).min(end);
                s.until(e).as_secs() / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_schedule_is_one_phase_everywhere() {
        let s = PhaseSchedule::single();
        assert!(s.is_single());
        assert_eq!(s.phase_count(), 1);
        assert_eq!(s.phase_at(SimTime::ZERO), 0);
        assert_eq!(s.phase_at(SimTime::from_secs(1_000)), 0);
        assert_eq!(s.phase_start(0), SimTime::ZERO);
        assert_eq!(s.phase_end(0), SimTime::MAX);
        assert_eq!(s.overlap_weights(SimTime::ZERO, SimTime::from_ms(1)), vec![1.0]);
    }

    #[test]
    fn phase_lookup_respects_boundaries() {
        let s = PhaseSchedule::new(vec![SimTime::from_ms(10), SimTime::from_ms(30)]);
        assert_eq!(s.phase_count(), 3);
        assert_eq!(s.phase_at(SimTime::from_ms(9)), 0);
        // A boundary belongs to the phase it opens.
        assert_eq!(s.phase_at(SimTime::from_ms(10)), 1);
        assert_eq!(s.phase_at(SimTime::from_ms(29)), 1);
        assert_eq!(s.phase_at(SimTime::from_ms(30)), 2);
        assert_eq!(s.phase_start(1), SimTime::from_ms(10));
        assert_eq!(s.phase_end(1), SimTime::from_ms(30));
        assert_eq!(s.phase_end(2), SimTime::MAX);
    }

    #[test]
    fn stepped_builds_equal_phases() {
        let s = PhaseSchedule::stepped(SimDuration::from_ms(20), 4);
        assert_eq!(s.phase_count(), 4);
        assert_eq!(s.boundaries(), &[SimTime::from_ms(20), SimTime::from_ms(40), SimTime::from_ms(60)]);
        assert!(PhaseSchedule::stepped(SimDuration::from_ms(5), 1).is_single());
    }

    #[test]
    fn merged_is_the_boundary_union() {
        let a = PhaseSchedule::new(vec![SimTime::from_ms(10), SimTime::from_ms(30)]);
        let b = PhaseSchedule::new(vec![SimTime::from_ms(10), SimTime::from_ms(20)]);
        let m = a.merged(&b);
        assert_eq!(m.boundaries(), &[SimTime::from_ms(10), SimTime::from_ms(20), SimTime::from_ms(30)]);
        // Merging with the single schedule is the identity.
        assert_eq!(a.merged(&PhaseSchedule::single()), a);
    }

    #[test]
    fn overlap_weights_sum_to_one_and_track_the_window() {
        let s = PhaseSchedule::new(vec![SimTime::from_ms(10), SimTime::from_ms(30)]);
        // Window [5ms, 35ms): 5ms of phase 0, 20ms of phase 1, 5ms of phase 2.
        let w = s.overlap_weights(SimTime::from_ms(5), SimTime::from_ms(35));
        assert_eq!(w.len(), 3);
        assert!((w[0] - 5.0 / 30.0).abs() < 1e-12);
        assert!((w[1] - 20.0 / 30.0).abs() < 1e-12);
        assert!((w[2] - 5.0 / 30.0).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // A window entirely inside one phase weighs only that phase.
        let w = s.overlap_weights(SimTime::from_ms(12), SimTime::from_ms(20));
        assert_eq!(w, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn slice_reanchors_interior_boundaries() {
        let s = PhaseSchedule::new(vec![SimTime::from_ms(10), SimTime::from_ms(30), SimTime::from_ms(50)]);
        // Window [10ms, 50ms): the 10ms boundary opens the window (dropped),
        // 30ms survives re-anchored to 20ms, 50ms is never reached.
        let w = s.slice(SimTime::from_ms(10), SimTime::from_ms(50));
        assert_eq!(w.boundaries(), &[SimTime::from_ms(20)]);
        // A window inside one phase degenerates to the single schedule.
        assert!(s.slice(SimTime::from_ms(31), SimTime::from_ms(49)).is_single());
        // Slicing the whole of time is the identity.
        assert_eq!(s.slice(SimTime::ZERO, SimTime::MAX), s);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_rejected() {
        PhaseSchedule::new(vec![SimTime::from_ms(30), SimTime::from_ms(10)]);
    }

    #[test]
    #[should_panic(expected = "after t=0")]
    fn zero_boundary_rejected() {
        PhaseSchedule::new(vec![SimTime::ZERO]);
    }
}
