//! Deterministic pseudo-random number generation.
//!
//! The simulator needs bit-for-bit reproducible randomness across platforms
//! and across dependency upgrades, because every experiment "run" is defined
//! by its seed and every paper claim is asserted against simulated output.
//! We therefore implement the generator here rather than relying on an
//! external crate whose stream may change between versions:
//!
//! * [`SimRng`] — xoshiro256++ (Blackman & Vigna, 2019), seeded through
//!   SplitMix64 as its authors recommend.
//! * [`SimRng::split`] — derives an independent child stream, so each
//!   simulation component (arrival process, service times, network jitter,
//!   per-run environment drift, …) owns a private generator and adding a
//!   consumer never perturbs another component's stream.

/// The SplitMix64 generator, used for seeding and stream derivation.
///
/// # Example
///
/// ```
/// use tpv_sim::rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// // First output of SplitMix64(0), a published reference value.
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the simulation's random number generator.
///
/// All stochastic model components draw from a `SimRng`. Streams are
/// reproducible: the same seed yields the same sequence on every platform.
///
/// # Example
///
/// ```
/// use tpv_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator from a single 64-bit value via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is invalid (the only fixed point). SplitMix64
        // cannot produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        SimRng { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Standard 53-bit mantissa technique.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` — safe as input to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Fills `out` with uniform `[0, 1)` draws, bit-identical to calling
    /// [`next_f64`](Self::next_f64) `out.len()` times in order — bulk
    /// generation moves no stream position and changes no value, it only
    /// gives the compiler a contiguous loop to optimize. Pinned by a
    /// property test in `tests/math_portability.rs`.
    #[inline]
    pub fn fill_f64(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.next_f64();
        }
    }

    /// A uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's output through SplitMix64 with
    /// a distinct mixing constant, so parent and child streams are
    /// statistically independent and the parent advances by exactly one
    /// draw regardless of how much the child is used.
    pub fn split(&mut self) -> SimRng {
        let seed = self.next_u64() ^ 0x6a09e667f3bcc909; // sqrt(2) fractional bits
        SimRng::seed_from_u64(seed)
    }

    /// Derives a child generator for a named component.
    ///
    /// Unlike [`split`](Self::split), the child depends only on the parent's
    /// *seed state* and the label — not on how many draws the parent has
    /// made — so components created in different orders still receive the
    /// same streams.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut sm = SplitMix64::new(self.s[0] ^ self.s[2].rotate_left(17) ^ label);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public domain
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_nondegenerate() {
        let mut r = SimRng::seed_from_u64(42);
        let seq: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::seed_from_u64(42);
        let seq2: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(seq, seq2);
        // All distinct in a short window (collision probability ~0).
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seq.len());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn open_interval_never_returns_zero() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..100_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn bounded_draws_are_unbiased_enough() {
        let mut r = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn zero_bound_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn split_streams_differ_and_parent_advances_once() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut child = a.split();
        b.next_u64(); // consume the draw split() made
        assert_eq!(a.next_u64(), b.next_u64(), "parent advanced by one draw");
        // Child stream differs from parent stream.
        let mut parent_fresh = SimRng::seed_from_u64(5);
        assert_ne!(child.next_u64(), parent_fresh.next_u64());
    }

    #[test]
    fn fork_is_order_independent() {
        let r = SimRng::seed_from_u64(77);
        let mut c1 = r.fork(1);
        let mut c2 = r.fork(2);
        let r2 = SimRng::seed_from_u64(77);
        let mut c2b = r2.fork(2);
        let mut c1b = r2.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_eq!(c2.next_u64(), c2b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(100);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut r = SimRng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
    }
}
