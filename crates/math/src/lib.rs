//! # tpv-math — deterministic, platform-pinned transcendentals
//!
//! The simulator's contract is bit-for-bit reproducibility: every golden
//! table, permutation-invariance proof and merge-invariance proof pins
//! `f64` outputs exactly. libm is the weakest link in that contract —
//! `ln`/`exp`/`cos`/`pow` are *not* required to be correctly rounded by
//! IEEE 754, so their bit patterns legally vary across platforms, libc
//! versions and compilers (the software-stack analogue of the
//! client-side hardware variability the source paper measures; see
//! "Multi-level analysis of compiler-induced variability and performance
//! tradeoffs", arXiv:1811.05618). This crate replaces every hot-path
//! transcendental with a branch-light, table-free polynomial kernel
//! built **only** from operations IEEE 754 pins exactly on every
//! platform: `+`, `-`, `*`, `/`, `sqrt`, comparisons, rounding and
//! integer bit manipulation. No fused multiply-add, no lookup tables,
//! no libm — so every platform produces identical bits *by
//! construction*, and the golden tables pin *our* math rather than a
//! particular libc's.
//!
//! Accuracy is verified by sweep tests against libm (`tests/accuracy.rs`)
//! over each function's hot domain; the documented bounds leave two
//! orders of magnitude of headroom under the ≤ 1e-9 target:
//!
//! | function | hot domain | max relative error (measured) |
//! | --- | --- | --- |
//! | [`fast_exp`] | `[-40, 40]` and full `[-745, 709]` | < 1e-12 |
//! | [`fast_ln`] | `(0, 1e9]`, incl. `(0,1]` uniforms | < 5e-14 |
//! | [`fast_sincos`] | `[-2π, 2π]` (Box–Muller feeds `2π·u`) | < 5e-14 abs, < 1e-11 rel away from zeros |
//! | [`fast_pow`] | `x > 0`, `|y·ln x| ≤ 40` | < 1e-11 |
//!
//! `fast_pow` composes `fast_exp(y · fast_ln(x))`, so its relative error
//! grows like `|y·ln x| · relerr(ln) + relerr(exp)` — bounded by
//! ~40·5e-14 + 4e-13 ≈ 2.4e-12 on the hot domain (Zipf tables,
//! Pareto/GPD/GEV inversions), far inside the 1e-9 budget.
//!
//! Every polynomial is evaluated in **Estrin form** — a fixed, pinned
//! expression tree, so the bits are as deterministic as Horner's, but
//! with ~4 dependent levels instead of one per degree, which matters
//! when FMA is off the table.
//!
//! # Example
//!
//! ```
//! let x = 2.5_f64;
//! assert!((tpv_math::fast_ln(x) - x.ln()).abs() < 1e-12);
//! assert!((tpv_math::fast_exp(x) - x.exp()).abs() / x.exp() < 1e-12);
//! let (s, c) = tpv_math::fast_sincos(x);
//! assert!((s - x.sin()).abs() < 1e-12 && (c - x.cos()).abs() < 1e-12);
//! assert!((tpv_math::fast_pow(x, 1.5) - x.powf(1.5)).abs() < 1e-11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// log2(e), for `exp`'s power-of-two argument split.
const LOG2E: f64 = std::f64::consts::LOG2_E;

/// High part of ln 2 (top 32 bits of the mantissa; `k * LN2_HI` is exact
/// for `|k| < 2^20`, the Cody–Waite property the reduction relies on).
/// The literal spells the split value's full decimal expansion.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;

/// Low part of ln 2: `ln 2 - LN2_HI`, rounded to f64.
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

/// High part of π/2 (33 significant bits, exact times small integers).
#[allow(clippy::excessive_precision)]
const PIO2_HI: f64 = 1.570_796_326_734_125_614_17;

/// Low part of π/2: `π/2 - PIO2_HI`, rounded to f64.
#[allow(clippy::excessive_precision)]
const PIO2_LO: f64 = 6.077_100_506_506_192_249_32e-11;

/// 2/π, for the sincos quadrant reduction.
const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;

/// `2^k` for `k ∈ [-1022, 1023]`, built directly from exponent bits —
/// exact, no rounding, no libm.
#[inline]
fn pow2(k: i64) -> f64 {
    debug_assert!((-1022..=1023).contains(&k), "pow2 exponent {k} outside the normal range");
    f64::from_bits(((k + 1023) as u64) << 52)
}

/// Deterministic `e^x`.
///
/// Cody–Waite reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, a
/// degree-10 Taylor polynomial on the reduced interval (truncation error
/// < 4e-13 relative — two orders inside the ≤1e-9 budget, and the
/// shortest polynomial that stays there; this is the most-called kernel,
/// so its degree is the one that was trimmed for latency), and exact
/// `2^k` scaling via exponent-bit construction. Overflow saturates to
/// `+∞` above ~709.78; results in the subnormal range are produced by a
/// two-step scale (correctly rounded per IEEE, hence still
/// deterministic) and flush to `0.0` below ~-745.2. `NaN` propagates.
///
/// Max relative error over the hot domain: < 1e-12 (see
/// `tests/accuracy.rs`).
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.782_712_893_384 {
        return f64::INFINITY;
    }
    if x < -745.2 {
        return 0.0;
    }
    let kf = (x * LOG2E).round();
    let k = kf as i64;
    // Two-part reduction keeps r's absolute error ~|k|·2^-84 — far
    // below what a single ln2 constant would leak into the result.
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // Taylor: e^r = Σ r^n / n!, n = 0..=10 (truncation < 4e-13 relative
    // at |r| ≤ ln2/2, two orders inside the ≤1e-9 budget), evaluated in
    // Estrin form: adjacent coefficient pairs combine independently,
    // then merge through powers r², r⁴, r⁸. A plain Horner chain is a
    // serially dependent multiply-add per degree (FMA is forbidden);
    // Estrin's tree is ~4 levels deep and the pairs all issue in
    // parallel. The expression tree is fixed, so the rounding pattern —
    // and therefore the output bits — is still pinned.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = 1.0 + r;
    let p23 = 1.0 / 2.0 + r * (1.0 / 6.0);
    let p45 = 1.0 / 24.0 + r * (1.0 / 120.0);
    let p67 = 1.0 / 720.0 + r * (1.0 / 5_040.0);
    let p89 = 1.0 / 40_320.0 + r * (1.0 / 362_880.0);
    let p10 = 1.0 / 3_628_800.0;
    let lo = (p01 + r2 * p23) + r4 * (p45 + r2 * p67);
    let p = lo + r8 * (p89 + r2 * p10);
    // 2^k scaling: direct exponent bits in the normal range; overflow
    // and subnormal tails take a second multiply (still exact / IEEE
    // correctly rounded respectively).
    if k >= -1022 {
        if k > 1023 {
            return p * pow2(1023) * 2.0;
        }
        p * pow2(k)
    } else {
        p * pow2(k + 1022) * pow2(-1022)
    }
}

/// Deterministic natural logarithm.
///
/// Decomposes `x = m·2^e` with the mantissa bracketed into
/// `[√2/2, √2)` — which forces `e = 0` for all `x ∈ [√2/2, √2)`, so
/// there is no catastrophic `e·ln2 − ln m` cancellation near `x = 1` —
/// then evaluates `ln m = 2·atanh(t)`, `t = (m−1)/(m+1)`, `|t| ≤ 0.172`,
/// as an odd series through `t¹⁵` (truncation < 4e-14 relative), plus
/// the exact two-part `e·ln2`. Subnormal inputs are pre-scaled by
/// `2^54`. `ln(0) = -∞`, `ln(x<0) = NaN`, `ln(∞) = ∞`, NaN propagates.
///
/// Max relative error over the hot domain: < 5e-14 (see
/// `tests/accuracy.rs`).
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    let mut e: i64 = 0;
    let mut bits = x.to_bits();
    if x < f64::MIN_POSITIVE {
        // Subnormal: renormalize with an exact power-of-two scale.
        bits = (x * 18_014_398_509_481_984.0).to_bits(); // 2^54
        e -= 54;
    }
    e += ((bits >> 52) as i64) - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m >= std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // atanh series: ln m = 2t·(1 + t²/3 + t⁴/5 + … + t¹⁴/15), in Estrin
    // form (pairs in t², merged through t⁴ and t⁸) — a fixed tree, so
    // the bits stay pinned, but only ~4 dependent levels after the
    // division instead of 7.
    let t4 = t2 * t2;
    let t8 = t4 * t4;
    let q01 = 1.0 + t2 * (1.0 / 3.0);
    let q23 = 1.0 / 5.0 + t2 * (1.0 / 7.0);
    let q45 = 1.0 / 9.0 + t2 * (1.0 / 11.0);
    let q67 = 1.0 / 13.0 + t2 * (1.0 / 15.0);
    let s = (q01 + t4 * q23) + t8 * (q45 + t4 * q67);
    let ef = e as f64;
    (2.0 * t * s + ef * LN2_LO) + ef * LN2_HI
}

/// Deterministic simultaneous `(sin x, cos x)`.
///
/// Quadrant reduction `n = round(x·2/π)` with a two-part Cody–Waite
/// π/2 (exact `n·PIO2_HI` for `|n| < 2^20`, i.e. `|x| ≲ 8e5`), Taylor
/// polynomials of degree 13 (sin) / 14 (cos) on `[-π/4, π/4]`, and a
/// quadrant swap. The hot domain is Box–Muller's `2π·u, u ∈ [0,1)` and
/// the diurnal rate table's `2π·frac`; both sit far inside the exact
/// reduction range. Non-finite inputs return `(NaN, NaN)`.
///
/// Max error over `[-2π, 2π]`: < 5e-14 absolute on both components
/// (equivalently, < 5e-14 relative on the unit circle); relative error
/// where the true value exceeds 1e-3 is < 1e-11 (see
/// `tests/accuracy.rs`).
#[inline]
pub fn fast_sincos(x: f64) -> (f64, f64) {
    if !x.is_finite() {
        return (f64::NAN, f64::NAN);
    }
    let nf = (x * FRAC_2_PI).round();
    let r = (x - nf * PIO2_HI) - nf * PIO2_LO;
    let r2 = r * r;
    // Both polynomials in Estrin form (pairs in r², merged through r⁴
    // and r⁸): fixed trees, pinned bits, ~4 dependent levels each, and
    // the sin and cos trees share r²/r⁴/r⁸ and execute concurrently.
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    // sin r = r·(1 − r²/3! + r⁴/5! − … + r¹²/13!).
    let s01 = 1.0 + r2 * (-1.0 / 6.0);
    let s23 = 1.0 / 120.0 + r2 * (-1.0 / 5_040.0);
    let s45 = 1.0 / 362_880.0 + r2 * (-1.0 / 39_916_800.0);
    let s6 = 1.0 / 6_227_020_800.0;
    let s = r * ((s01 + r4 * s23) + r8 * (s45 + r4 * s6));
    // cos r = 1 − r²/2! + r⁴/4! − … − r¹⁴/14!.
    let c01 = 1.0 + r2 * (-1.0 / 2.0);
    let c23 = 1.0 / 24.0 + r2 * (-1.0 / 720.0);
    let c45 = 1.0 / 40_320.0 + r2 * (-1.0 / 3_628_800.0);
    let c67 = 1.0 / 479_001_600.0 + r2 * (-1.0 / 87_178_291_200.0);
    let c = (c01 + r4 * c23) + r8 * (c45 + r4 * c67);
    // Two's-complement masking maps negative n to the right quadrant.
    match (nf as i64) & 3 {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// Deterministic `x^y` for positive bases, as `exp(y·ln x)`.
///
/// Edge cases: `y == 0` returns `1.0` (for any `x`, including `0` and
/// `NaN` — matching `powf`), `0^y` is `0` for `y > 0` and `+∞` for
/// `y < 0`, and negative bases return `NaN` (the simulator only raises
/// positive quantities — uniforms, ranks, utilizations — to real
/// powers).
///
/// Relative error ≈ `|y·ln x| · relerr(fast_ln) + relerr(fast_exp)`:
/// < 1e-11 for `|y·ln x| ≤ 40`, the documented hot domain (see
/// `tests/accuracy.rs`).
#[inline]
pub fn fast_pow(x: f64, y: f64) -> f64 {
    if y == 0.0 {
        return 1.0;
    }
    if x == 0.0 {
        return if y > 0.0 { 0.0 } else { f64::INFINITY };
    }
    if x < 0.0 {
        return f64::NAN;
    }
    fast_exp(y * fast_ln(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_anchor_points() {
        // Values IEEE arithmetic pins exactly: the kernels must hit them
        // bit for bit, not merely approximately.
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_ln(1.0), 0.0);
        assert_eq!(fast_pow(1.0, 123.456), 1.0);
        assert_eq!(fast_pow(123.456, 0.0), 1.0);
        assert_eq!(fast_sincos(0.0), (0.0, 1.0));
    }

    #[test]
    fn edge_cases_match_ieee_conventions() {
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(1000.0), f64::INFINITY);
        assert_eq!(fast_exp(-1000.0), 0.0);
        assert!(fast_ln(f64::NAN).is_nan());
        assert!(fast_ln(-1.0).is_nan());
        assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
        assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
        assert!(fast_sincos(f64::NAN).0.is_nan());
        assert!(fast_sincos(f64::INFINITY).1.is_nan());
        assert_eq!(fast_pow(0.0, 2.0), 0.0);
        assert_eq!(fast_pow(0.0, -2.0), f64::INFINITY);
        assert!(fast_pow(-2.0, 0.5).is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // ln of a subnormal goes through the 2^54 renormalization.
        let tiny = f64::MIN_POSITIVE / 1024.0;
        let got = fast_ln(tiny);
        let want = tiny.ln();
        assert!((got - want).abs() / want.abs() < 1e-12, "ln(subnormal): {got} vs {want}");
        // exp into the subnormal range takes the two-step scale.
        let x = -720.0;
        let got = fast_exp(x);
        assert!(got > 0.0 && got < f64::MIN_POSITIVE, "exp(-720) must be subnormal, got {got}");
        let rel = (got - x.exp()).abs() / x.exp();
        assert!(rel < 1e-9, "exp(-720) rel err {rel}");
    }

    #[test]
    fn quadrants_cover_negative_arguments() {
        for k in -9i64..=9 {
            let x = k as f64 * std::f64::consts::FRAC_PI_3;
            let (s, c) = fast_sincos(x);
            assert!((s - x.sin()).abs() < 1e-12, "sin({x})");
            assert!((c - x.cos()).abs() < 1e-12, "cos({x})");
        }
    }

    #[test]
    fn bit_determinism_across_calls() {
        // Same input, same bits — trivially true for pure code, but this
        // is the contract the whole crate exists for, so pin it.
        for i in 0..1000 {
            let x = 0.001 + i as f64 * 0.7318;
            assert_eq!(fast_ln(x).to_bits(), fast_ln(x).to_bits());
            assert_eq!(fast_exp(x % 40.0).to_bits(), fast_exp(x % 40.0).to_bits());
        }
    }
}
