//! Accuracy sweeps of the deterministic kernels against libm.
//!
//! libm is the *reference*, not the contract — the kernels may differ
//! from it by up to their documented error bounds (and libm itself is
//! only faithfully rounded) — but every bound asserted here is two
//! orders of magnitude inside the crate's ≤ 1e-9 target, so the sweeps
//! double as the acceptance check for that target.

use tpv_math::{fast_exp, fast_ln, fast_pow, fast_sincos};

/// Relative error against a libm reference, with the usual guard for
/// references at or near zero.
fn rel_err(got: f64, want: f64) -> f64 {
    if want == 0.0 {
        got.abs()
    } else {
        (got - want).abs() / want.abs()
    }
}

/// A deterministic dense sweep of `n` points over `[lo, hi]`.
fn sweep(lo: f64, hi: f64, n: usize) -> impl Iterator<Item = f64> {
    let step = (hi - lo) / n as f64;
    (0..=n).map(move |i| lo + step * i as f64)
}

#[test]
fn exp_stays_inside_the_error_budget() {
    let mut worst = 0.0f64;
    // The samplers' hot domain: |mu + sigma*z| rarely leaves [-40, 40].
    for x in sweep(-40.0, 40.0, 400_000) {
        worst = worst.max(rel_err(fast_exp(x), x.exp()));
    }
    assert!(worst < 1e-9, "exp hot-domain max rel err {worst:.3e}");
    assert!(worst < 1e-12, "exp headroom regressed: {worst:.3e}");
    // The full finite range, coarser.
    let mut worst_full = 0.0f64;
    for x in sweep(-700.0, 709.0, 200_000) {
        worst_full = worst_full.max(rel_err(fast_exp(x), x.exp()));
    }
    assert!(worst_full < 1e-9, "exp full-range max rel err {worst_full:.3e}");
}

#[test]
fn ln_stays_inside_the_error_budget() {
    let mut worst = 0.0f64;
    // (0, 1]: the uniform-inversion domain every sampler feeds ln.
    for i in 1..=400_000u64 {
        let u = i as f64 / 400_000.0;
        worst = worst.max(rel_err(fast_ln(u), u.ln()));
    }
    // Wide positive range, log-spaced via exact powers of two times a
    // dense mantissa sweep.
    for e in -60i32..=60 {
        let scale = (e as f64 * std::f64::consts::LN_2).exp();
        for m in sweep(1.0, 2.0, 2_000) {
            let x = m * scale;
            worst = worst.max(rel_err(fast_ln(x), x.ln()));
        }
    }
    assert!(worst < 1e-9, "ln max rel err {worst:.3e}");
    assert!(worst < 5e-14, "ln headroom regressed: {worst:.3e}");
}

#[test]
fn ln_handles_the_near_one_cancellation_zone() {
    // The √2-bracketed mantissa forces e = 0 around 1.0, so there is no
    // e·ln2 − ln m cancellation: relative error must stay tiny even for
    // x = 1 ± 1e-9, where ln x ≈ ±1e-9.
    let mut worst = 0.0f64;
    for i in 1..=100_000u64 {
        let d = i as f64 * 1e-14;
        for x in [1.0 + d, 1.0 - d] {
            worst = worst.max(rel_err(fast_ln(x), x.ln()));
        }
    }
    assert!(worst < 1e-9, "ln near-1 max rel err {worst:.3e}");
}

#[test]
fn sincos_stays_inside_the_error_budget() {
    // Hot domain: Box–Muller feeds 2π·u, u ∈ [0, 1); the diurnal rate
    // table 2π·frac. Sweep [-2π, 2π] densely and a wider band coarsely.
    let tau = std::f64::consts::TAU;
    let mut worst_abs = 0.0f64;
    let mut worst_rel = 0.0f64;
    for x in sweep(-tau, tau, 400_000).chain(sweep(-20.0, 20.0, 100_000)) {
        let (s, c) = fast_sincos(x);
        worst_abs = worst_abs.max((s - x.sin()).abs()).max((c - x.cos()).abs());
        // Relative error is only meaningful away from the zeros.
        if x.sin().abs() > 1e-3 {
            worst_rel = worst_rel.max(rel_err(s, x.sin()));
        }
        if x.cos().abs() > 1e-3 {
            worst_rel = worst_rel.max(rel_err(c, x.cos()));
        }
    }
    assert!(worst_abs < 1e-9, "sincos max abs err {worst_abs:.3e}");
    assert!(worst_abs < 5e-14, "sincos abs headroom regressed: {worst_abs:.3e}");
    assert!(worst_rel < 1e-9, "sincos max rel err {worst_rel:.3e}");
}

#[test]
fn sincos_respects_the_pythagorean_identity() {
    for x in sweep(-10.0, 10.0, 100_000) {
        let (s, c) = fast_sincos(x);
        assert!((s * s + c * c - 1.0).abs() < 1e-12, "sin²+cos² at {x}");
    }
}

#[test]
fn pow_stays_inside_the_error_budget() {
    // The call sites: Zipf tables 1/k^s (k up to 1e6, s ≤ ~1.3), Pareto
    // u^(1/α), GPD/GEV u^(-k) with u ∈ (0, 1], and the collision model's
    // x^1.5 with x ∈ [0, 1]. All satisfy |y·ln x| ≤ 40.
    let mut worst = 0.0f64;
    for (x, y) in [(214.48, 0.348), (8.0, -1.25), (1e6, -1.3), (0.5, 30.0)] {
        worst = worst.max(rel_err(fast_pow(x, y), x.powf(y)));
    }
    for i in 1..=200_000u64 {
        let u = i as f64 / 200_000.0;
        for y in [1.5, -0.348, -0.078688, 0.99, 1.0 / 3.0] {
            worst = worst.max(rel_err(fast_pow(u, y), u.powf(y)));
        }
    }
    for k in 1..=100_000u64 {
        let x = k as f64;
        for s in [0.5, 0.99, 1.2] {
            worst = worst.max(rel_err(fast_pow(x, -s), x.powf(-s)));
        }
    }
    assert!(worst < 1e-9, "pow max rel err {worst:.3e}");
    assert!(worst < 1e-11, "pow headroom regressed: {worst:.3e}");
}

#[test]
fn ln_and_exp_are_monotone_on_dense_grids() {
    // Monotonicity is what the inverse-CDF samplers actually rely on: a
    // larger uniform must never produce a smaller variate. Checked on
    // dense grids across several magnitudes (the polynomial kernels are
    // not proven globally monotone ulp-by-ulp; the grids cover the
    // granularity the samplers see).
    let mut prev = f64::NEG_INFINITY;
    for i in 1..=1_000_000u64 {
        let x = i as f64 * 1e-6; // (0, 1]
        let y = fast_ln(x);
        assert!(y >= prev, "fast_ln not monotone at {x}: {y} < {prev}");
        prev = y;
    }
    let mut prev = 0.0f64;
    for i in 0..=1_000_000u64 {
        let x = -20.0 + i as f64 * 4e-5; // [-20, 20]
        let y = fast_exp(x);
        assert!(y >= prev, "fast_exp not monotone at {x}: {y} < {prev}");
        prev = y;
    }
}

#[test]
fn round_trip_is_stable() {
    // exp(ln x) and ln(exp x) must return to their argument within the
    // composed error budget.
    for i in 1..=100_000u64 {
        let x = i as f64 * 1e-3; // (0, 100]
        assert!(rel_err(fast_exp(fast_ln(x)), x) < 1e-12, "exp(ln({x}))");
    }
    for x in sweep(-30.0, 30.0, 100_000) {
        assert!((fast_ln(fast_exp(x)) - x).abs() < 1e-11, "ln(exp({x}))");
    }
}
