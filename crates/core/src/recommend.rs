//! The configuration recommendations of §VI, as an executable engine.
//!
//! Given how a workload generator is built (its §II taxonomy) and what is
//! known about the target production environment, produce the paper's
//! advice: how to configure the client machines, and which repetition
//! methodology to use.

use tpv_hw::MachineConfig;
use tpv_loadgen::{GeneratorSpec, TimingMode};
use tpv_stats::normality::shapiro_wilk;

/// What is known about the production environment the study should
/// represent.
#[derive(Debug, Clone)]
pub enum TargetEnvironment {
    /// The production client configuration is known.
    Known(Box<MachineConfig>),
    /// Unknown.
    Unknown,
}

/// How to configure the client machines.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientTuning {
    /// Tune the client for performance (C-states off, performance
    /// governor, fixed uncore): §VI's advice for time-sensitive
    /// generators.
    TuneForPerformance,
    /// Match the target environment's configuration: §VI's advice for
    /// time-insensitive generators with a known target.
    MatchTarget(Box<MachineConfig>),
    /// Explore the configuration space (homogeneous and heterogeneous
    /// client/server combinations): the advice when the target is
    /// unknown.
    ExploreSpace,
}

/// Which repetition-count methodology applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationMethod {
    /// Jain's parametric Eq. (3) — valid when samples look normal.
    Parametric,
    /// CONFIRM — the non-parametric fallback.
    Confirm,
    /// No samples provided: run a pilot, test normality, then choose.
    PilotNeeded,
}

/// The engine's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// How to configure the client machines.
    pub tuning: ClientTuning,
    /// Which repetition methodology to use.
    pub iteration_method: IterationMethod,
    /// Caveats the paper attaches to the advice.
    pub caveats: Vec<String>,
}

/// Produces the §VI recommendation for a generator and target
/// environment, optionally using pilot samples to pick the repetition
/// method.
pub fn recommend(
    generator: &GeneratorSpec,
    target: &TargetEnvironment,
    pilot_samples: Option<&[f64]>,
) -> Recommendation {
    let mut caveats = Vec::new();

    let tuning = match generator.timing {
        TimingMode::BlockWait => {
            // Time-sensitive: the client must be tuned so sends leave on
            // schedule.
            if let TargetEnvironment::Known(cfg) = target {
                if **cfg != MachineConfig::high_performance() {
                    caveats.push(
                        "the tuned client deviates from the target production configuration: \
                         end-to-end metrics may over- or under-estimate production behaviour, \
                         affecting resource-provisioning conclusions"
                            .to_string(),
                    );
                }
            } else {
                caveats.push(
                    "target environment unknown: verify how closely the performance-tuned \
                     client reflects production before provisioning from these numbers"
                        .to_string(),
                );
            }
            ClientTuning::TuneForPerformance
        }
        TimingMode::BusyWait => match target {
            // Time-insensitive: the workload is safe either way, so match
            // the environment being modelled.
            TargetEnvironment::Known(cfg) => ClientTuning::MatchTarget(cfg.clone()),
            TargetEnvironment::Unknown => {
                caveats.push(
                    "evaluate under several client/server configuration combinations \
                     (homogeneous and heterogeneous) since the target is unknown"
                        .to_string(),
                );
                ClientTuning::ExploreSpace
            }
        },
    };

    let iteration_method = match pilot_samples {
        None => IterationMethod::PilotNeeded,
        Some(xs) => match shapiro_wilk(xs) {
            Ok(r) if !r.rejects_normality(0.05) => IterationMethod::Parametric,
            _ => IterationMethod::Confirm,
        },
    };

    Recommendation { tuning, iteration_method, caveats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpv_sim::SimRng;

    #[test]
    fn time_sensitive_generators_get_performance_tuning() {
        let rec = recommend(&GeneratorSpec::mutilate(), &TargetEnvironment::Unknown, None);
        assert_eq!(rec.tuning, ClientTuning::TuneForPerformance);
        assert_eq!(rec.iteration_method, IterationMethod::PilotNeeded);
        assert!(!rec.caveats.is_empty(), "unknown target must carry a caveat");
    }

    #[test]
    fn time_sensitive_with_divergent_target_warns_about_representativeness() {
        let lp_target = TargetEnvironment::Known(Box::new(MachineConfig::low_power()));
        let rec = recommend(&GeneratorSpec::mutilate(), &lp_target, None);
        assert_eq!(rec.tuning, ClientTuning::TuneForPerformance);
        assert!(rec.caveats.iter().any(|c| c.contains("provisioning")), "{:?}", rec.caveats);
    }

    #[test]
    fn time_sensitive_with_matching_target_has_no_caveat() {
        let hp_target = TargetEnvironment::Known(Box::new(MachineConfig::high_performance()));
        let rec = recommend(&GeneratorSpec::mutilate(), &hp_target, None);
        assert!(rec.caveats.is_empty());
    }

    #[test]
    fn time_insensitive_matches_known_target() {
        let target_cfg = MachineConfig::low_power();
        let rec = recommend(
            &GeneratorSpec::microsuite_client(),
            &TargetEnvironment::Known(Box::new(target_cfg)),
            None,
        );
        match rec.tuning {
            ClientTuning::MatchTarget(cfg) => assert_eq!(*cfg, target_cfg),
            other => panic!("expected MatchTarget, got {other:?}"),
        }
    }

    #[test]
    fn time_insensitive_with_unknown_target_explores() {
        let rec = recommend(&GeneratorSpec::microsuite_client(), &TargetEnvironment::Unknown, None);
        assert_eq!(rec.tuning, ClientTuning::ExploreSpace);
        assert!(rec.caveats.iter().any(|c| c.contains("heterogeneous")));
    }

    #[test]
    fn iteration_method_follows_normality() {
        let mut rng = SimRng::seed_from_u64(1);
        // Normal-looking pilot → parametric.
        let normal: Vec<f64> =
            (0..50).map(|_| 100.0 + tpv_sim::dist::Normal::standard_sample(&mut rng)).collect();
        let rec = recommend(&GeneratorSpec::mutilate(), &TargetEnvironment::Unknown, Some(&normal));
        assert_eq!(rec.iteration_method, IterationMethod::Parametric);
        // Heavy-tailed pilot → CONFIRM.
        let skewed: Vec<f64> = (1..=50).map(|i| (i as f64 / 6.0).exp()).collect();
        let rec2 = recommend(&GeneratorSpec::mutilate(), &TargetEnvironment::Unknown, Some(&skewed));
        assert_eq!(rec2.iteration_method, IterationMethod::Confirm);
        // Degenerate pilot (all equal) → CONFIRM (SW undefined).
        let flat = vec![5.0; 50];
        let rec3 = recommend(&GeneratorSpec::mutilate(), &TargetEnvironment::Unknown, Some(&flat));
        assert_eq!(rec3.iteration_method, IterationMethod::Confirm);
    }
}
