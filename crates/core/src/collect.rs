//! Pluggable metric collection for the topology kernel.
//!
//! The kernel always produces the aggregate [`RunResult`]; a
//! [`Collector`] hooks into the hot loop to accumulate anything beyond
//! it — per-node latency histograms ([`PerNodeCollector`]), bounded
//! fidelity traces ([`TraceCollector`]), or nothing at all
//! ([`NullCollector`], the zero-cost default `run_once` compiles
//! against). The kernel is generic over the collector, so the null case
//! monomorphizes to empty inlined hooks.

use tpv_sim::{LatencyHistogram, SimDuration, SimTime};

use crate::runtime::{RunResult, RunTrace};

/// Per-node end-of-run statistics handed to [`Collector::on_node_done`].
#[derive(Debug, Clone, Copy)]
pub struct NodeStats {
    /// The node's generator-thread wake-ups per C-state `[C0, C1, C1E, C6]`.
    pub wakes: [u64; 4],
    /// The node's generator-thread energy over the run (core-seconds of
    /// C0-equivalent power).
    pub energy_core_secs: f64,
    /// The node's raw send-schedule counters.
    pub sends: tpv_loadgen::SendStats,
    /// This node's in-window requests cut off by the drain horizon.
    pub truncated_inflight: u64,
    /// The node's offered load.
    pub target_qps: f64,
    /// Length of the measurement window (duration − warmup).
    pub measured: SimDuration,
}

/// Hot-loop observation points of the topology kernel.
///
/// All hooks default to no-ops; implement only what the collection needs.
/// Node indices refer to declaration order in the
/// [`TopologySpec`](crate::topology::TopologySpec).
pub trait Collector {
    /// A request left `node` on node-local connection `conn`: `due` is
    /// the scheduled send instant, `wire` the actual wire departure.
    fn on_send(&mut self, node: usize, conn: u32, due: SimTime, wire: SimTime) {
        let _ = (node, conn, due, wire);
    }

    /// An in-window request from `node` completed with end-to-end latency
    /// `measured` (called exactly when the aggregate histogram records).
    fn on_latency(&mut self, node: usize, measured: SimDuration) {
        let _ = (node, measured);
    }

    /// End-of-run statistics for `node`.
    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        let _ = (node, stats);
    }
}

/// Collects nothing; what [`crate::runtime::run_once`] runs with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {}

/// Accumulates one latency histogram per client node and folds each
/// node's end-of-run statistics into a per-node [`RunResult`].
#[derive(Debug)]
pub struct PerNodeCollector {
    hists: Vec<LatencyHistogram>,
    results: Vec<Option<RunResult>>,
}

impl PerNodeCollector {
    /// A collector for a topology of `nodes` client nodes.
    pub fn new(nodes: usize) -> Self {
        PerNodeCollector {
            hists: (0..nodes).map(|_| LatencyHistogram::new()).collect(),
            results: vec![None; nodes],
        }
    }

    /// The per-node results, in node declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has not run to completion with this collector.
    pub fn into_results(self) -> Vec<RunResult> {
        self.results.into_iter().map(|r| r.expect("kernel did not finish this node")).collect()
    }
}

impl Collector for PerNodeCollector {
    fn on_latency(&mut self, node: usize, measured: SimDuration) {
        self.hists[node].record(measured);
    }

    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        self.results[node] = Some(RunResult::from_histogram(
            &self.hists[node],
            stats.measured,
            stats.target_qps,
            stats.sends,
            stats.wakes,
            stats.energy_core_secs,
            stats.truncated_inflight,
        ));
    }
}

/// Collects a bounded [`RunTrace`] for workload-fidelity diagnostics
/// (what [`crate::runtime::run_traced`] runs with).
#[derive(Debug)]
pub struct TraceCollector {
    trace: RunTrace,
    max_trace: usize,
    window_start: SimTime,
}

impl TraceCollector {
    /// A collector recording up to `max_trace` sends and latencies from
    /// the window starting at `window_start`.
    ///
    /// Pre-allocation is capped by `expected_sends` — an estimate from
    /// `qps × duration` — as well as by `max_trace` and a 1 Mi hard
    /// ceiling, so a short run with a huge `max_trace` does not reserve
    /// a million slots up front.
    pub fn new(
        max_trace: usize,
        window_start: SimTime,
        scheduled_gap: SimDuration,
        expected_sends: usize,
    ) -> Self {
        let cap = max_trace.min(expected_sends).min(1 << 20);
        TraceCollector {
            trace: RunTrace {
                wire_departures: Vec::with_capacity(cap),
                latencies_us: Vec::with_capacity(cap),
                scheduled_gap_us: scheduled_gap.as_us(),
            },
            max_trace,
            window_start,
        }
    }

    /// The collected trace.
    pub fn into_trace(self) -> RunTrace {
        self.trace
    }
}

impl Collector for TraceCollector {
    fn on_send(&mut self, _node: usize, conn: u32, due: SimTime, wire: SimTime) {
        if self.trace.wire_departures.len() < self.max_trace && due >= self.window_start {
            self.trace.wire_departures.push((conn, wire));
        }
    }

    fn on_latency(&mut self, _node: usize, measured: SimDuration) {
        if self.trace.latencies_us.len() < self.max_trace {
            self.trace.latencies_us.push(measured.as_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_preallocation_is_bounded_by_the_send_estimate() {
        // A short run cannot justify a 1 Mi reservation even when the
        // caller asks to trace "everything".
        let c = TraceCollector::new(1 << 20, SimTime::ZERO, SimDuration::from_us(100), 1_200);
        assert!(c.trace.wire_departures.capacity() <= 1_200);
        assert!(c.trace.latencies_us.capacity() <= 1_200);
        // And max_trace still caps below the estimate.
        let c = TraceCollector::new(64, SimTime::ZERO, SimDuration::from_us(100), 1_200);
        assert!(c.trace.wire_departures.capacity() <= 64);
    }

    #[test]
    fn trace_collector_respects_window_and_bound() {
        let mut c = TraceCollector::new(2, SimTime::from_ms(1), SimDuration::from_us(10), 100);
        // Before the window: ignored.
        c.on_send(0, 0, SimTime::from_us(10), SimTime::from_us(12));
        assert!(c.trace.wire_departures.is_empty());
        c.on_send(0, 1, SimTime::from_ms(2), SimTime::from_ms(2));
        c.on_send(0, 2, SimTime::from_ms(3), SimTime::from_ms(3));
        c.on_send(0, 3, SimTime::from_ms(4), SimTime::from_ms(4));
        assert_eq!(c.trace.wire_departures.len(), 2, "bounded at max_trace");
        c.on_latency(0, SimDuration::from_us(50));
        c.on_latency(0, SimDuration::from_us(60));
        c.on_latency(0, SimDuration::from_us(70));
        let trace = c.into_trace();
        assert_eq!(trace.latencies_us, vec![50.0, 60.0]);
        assert_eq!(trace.scheduled_gap_us, 10.0);
    }

    #[test]
    fn null_collector_is_inert() {
        let mut c = NullCollector;
        c.on_send(0, 0, SimTime::ZERO, SimTime::ZERO);
        c.on_latency(0, SimDuration::ZERO);
    }
}
