//! Pluggable metric collection for the topology kernel.
//!
//! The kernel always produces the aggregate [`RunResult`]; a
//! [`Collector`] hooks into the hot loop to accumulate anything beyond
//! it — per-node latency histograms ([`PerNodeCollector`]), bounded
//! fidelity traces ([`TraceCollector`]), or nothing at all
//! ([`NullCollector`], the zero-cost default `run_once` compiles
//! against). The kernel is generic over the collector, so the null case
//! monomorphizes to empty inlined hooks.
//!
//! # Example
//!
//! A [`PerNodeCollector`] splits the aggregate into per-node latency
//! distributions without touching the kernel:
//!
//! ```
//! use tpv_core::collect::PerNodeCollector;
//! use tpv_core::runtime::run_collected;
//! use tpv_core::topology::{ClientNode, TopologySpec};
//! use tpv_hw::MachineConfig;
//! use tpv_loadgen::GeneratorSpec;
//! use tpv_net::LinkConfig;
//! use tpv_sim::SimDuration;
//!
//! let service = tpv_core::experiment::Benchmark::memcached().service;
//! let server = MachineConfig::server_baseline();
//! let gen = GeneratorSpec::mutilate();
//! let nodes = [
//!     ClientNode::new("hp", MachineConfig::high_performance(), gen, LinkConfig::cloudlab_lan(), 15_000.0),
//!     ClientNode::new("lp", MachineConfig::low_power(), gen, LinkConfig::cloudlab_lan(), 15_000.0),
//! ];
//! let topo = TopologySpec {
//!     service: &service,
//!     server: &server,
//!     nodes: &nodes,
//!     duration: SimDuration::from_ms(15),
//!     warmup: SimDuration::from_ms(3),
//!     shards: None,
//!     cohorts: &[],
//! };
//! let mut per_node = PerNodeCollector::new(nodes.len());
//! let aggregate = run_collected(&topo, 11, &mut per_node);
//! let results = per_node.into_results();
//! assert_eq!(results.len(), 2);
//! assert_eq!(aggregate.samples, results.iter().map(|r| r.samples).sum::<u64>());
//! ```

use tpv_sim::{LatencyHistogram, PhaseSchedule, SimDuration, SimTime};

use crate::runtime::{RunResult, RunTrace};

/// Per-node end-of-run statistics handed to [`Collector::on_node_done`].
#[derive(Debug, Clone, Copy)]
pub struct NodeStats {
    /// The node's generator-thread wake-ups per C-state `[C0, C1, C1E, C6]`.
    pub wakes: [u64; 4],
    /// The node's generator-thread energy over the run (core-seconds of
    /// C0-equivalent power).
    pub energy_core_secs: f64,
    /// The node's raw send-schedule counters.
    pub sends: tpv_loadgen::SendStats,
    /// This node's in-window requests cut off by the drain horizon.
    pub truncated_inflight: u64,
    /// The node's offered load.
    pub target_qps: f64,
    /// Length of the measurement window (duration − warmup).
    pub measured: SimDuration,
}

/// Hot-loop observation points of the topology kernel.
///
/// All hooks default to no-ops; implement only what the collection needs.
/// Node indices refer to declaration order in the
/// [`TopologySpec`](crate::topology::TopologySpec).
pub trait Collector {
    /// One simulation event was popped and is about to dispatch at `now`.
    /// This is the kernel's highest-frequency hook — implementations
    /// must stay O(1) and allocation-free; the default no-op compiles to
    /// nothing in the monomorphized kernel.
    #[inline]
    fn on_event(&mut self, now: SimTime) {
        let _ = now;
    }

    /// A request left `node` on node-local connection `conn`: `due` is
    /// the scheduled send instant, `wire` the actual wire departure.
    fn on_send(&mut self, node: usize, conn: u32, due: SimTime, wire: SimTime) {
        let _ = (node, conn, due, wire);
    }

    /// An in-window request from `node`, stamped at `stamp`, completed
    /// with end-to-end latency `measured` (called exactly when the
    /// aggregate histogram records). The stamp attributes the sample to
    /// a point of the run — e.g. its phase, for [`PhaseCollector`].
    fn on_latency(&mut self, node: usize, stamp: SimTime, measured: SimDuration) {
        let _ = (node, stamp, measured);
    }

    /// End-of-run statistics for `node`.
    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        let _ = (node, stats);
    }

    /// A hedge leg fired for an in-window request from `node`: its
    /// primary response overran the hedge deadline and the analytic
    /// duplicate on the hedge backend was consulted (see
    /// [`crate::control::HedgeSpec`]). Called at most once per recorded
    /// sample — a hedge never dispatches extra kernel events, so
    /// [`EventCountCollector`] is unaffected by hedging.
    fn on_hedge(&mut self, node: usize) {
        let _ = node;
    }
}

/// A collector whose per-shard instances can be folded back into one —
/// what lets the sharded kernel
/// ([`crate::runtime::run_sharded_collected`]) give every concurrent
/// shard its own collector and still hand the caller a single merged
/// collection. `other` is always the *next* shard in stable shard
/// declaration order, and shards observe disjoint node sets, so an
/// implementation merging by node index is automatically
/// order-insensitive.
pub trait MergeCollector: Collector {
    /// Folds `other` — the same run's next shard, in stable shard
    /// order — into `self`.
    fn merge(&mut self, other: Self);
}

/// Collects nothing; what [`crate::runtime::run_once`] runs with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {}

impl MergeCollector for NullCollector {
    fn merge(&mut self, _other: Self) {}
}

/// Counts dispatched simulation events — the denominator of the perf
/// harness's events/sec metric (`perf_probe` in `tpv-bench`). The count
/// is deterministic: the same `(topology, seed)` dispatches the same
/// event sequence whatever the wall-clock speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventCountCollector {
    events: u64,
}

impl EventCountCollector {
    /// A fresh counter.
    pub fn new() -> Self {
        EventCountCollector::default()
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Collector for EventCountCollector {
    #[inline]
    fn on_event(&mut self, _now: SimTime) {
        self.events += 1;
    }
}

impl MergeCollector for EventCountCollector {
    fn merge(&mut self, other: Self) {
        self.events += other.events;
    }
}

/// Accumulates one latency histogram per client node and folds each
/// node's end-of-run statistics into a per-node [`RunResult`].
#[derive(Debug)]
pub struct PerNodeCollector {
    hists: Vec<LatencyHistogram>,
    results: Vec<Option<RunResult>>,
}

impl PerNodeCollector {
    /// A collector for a topology of `nodes` client nodes.
    pub fn new(nodes: usize) -> Self {
        PerNodeCollector {
            hists: (0..nodes).map(|_| LatencyHistogram::new()).collect(),
            results: vec![None; nodes],
        }
    }

    /// The per-node results, in node declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has not run to completion with this collector.
    pub fn into_results(self) -> Vec<RunResult> {
        self.results.into_iter().map(|r| r.expect("kernel did not finish this node")).collect()
    }
}

impl MergeCollector for PerNodeCollector {
    /// Takes `other`'s finished nodes. Shards partition the fleet, so at
    /// most one shard's collector carries any given node.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.results.len(), other.results.len(), "collectors cover different fleets");
        for (i, (result, hist)) in other.results.into_iter().zip(other.hists).enumerate() {
            if result.is_some() {
                assert!(self.results[i].is_none(), "node {i} finished on two shards");
                self.results[i] = result;
                self.hists[i] = hist;
            }
        }
    }
}

impl Collector for PerNodeCollector {
    fn on_latency(&mut self, node: usize, _stamp: SimTime, measured: SimDuration) {
        self.hists[node].record(measured);
    }

    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        self.results[node] = Some(RunResult::from_histogram(
            &self.hists[node],
            stats.measured,
            stats.target_qps,
            stats.sends,
            stats.wakes,
            stats.energy_core_secs,
            stats.truncated_inflight,
        ));
    }
}

/// Accumulates one latency histogram and one statistics block per
/// *cohort* of a cohort-compressed fleet — the collection behind
/// [`crate::runtime::run_cohorted`].
///
/// Node indices are mapped to cohorts through the lowered fleet's
/// cohort map (see
/// [`TopologySpec::layout`](crate::topology::TopologySpec)); explicit
/// nodes map to no cohort and are simply skipped, so the collector's
/// footprint is `O(cohorts)`, flat in the modeled population. Per-node
/// float contributions (offered load, energy) are buffered and folded
/// with a canonical-order stable sum at the end, so a cohort whose
/// members span shards yields bit-identical results serial vs
/// sharded-parallel.
#[derive(Debug)]
pub struct PerCohortCollector {
    cohort_of: Vec<Option<usize>>,
    hists: Vec<LatencyHistogram>,
    wakes: Vec<[u64; 4]>,
    energies: Vec<Vec<f64>>,
    sends: Vec<tpv_loadgen::SendStats>,
    truncated: Vec<u64>,
    targets: Vec<Vec<f64>>,
}

impl PerCohortCollector {
    /// A collector for a lowered fleet whose node `i` belongs to cohort
    /// `cohort_of[i]` (`None` for explicit, non-cohort nodes), with
    /// `cohorts` cohorts in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if any mapped cohort index is out of range.
    pub fn new(cohort_of: Vec<Option<usize>>, cohorts: usize) -> Self {
        assert!(cohort_of.iter().flatten().all(|&c| c < cohorts), "cohort map points past the cohort list");
        PerCohortCollector {
            cohort_of,
            hists: (0..cohorts).map(|_| LatencyHistogram::new()).collect(),
            wakes: vec![[0; 4]; cohorts],
            energies: vec![Vec::new(); cohorts],
            sends: vec![
                tpv_loadgen::SendStats {
                    late_sends: 0,
                    total_sends: 0,
                    total_slip: SimDuration::ZERO,
                };
                cohorts
            ],
            truncated: vec![0; cohorts],
            targets: vec![Vec::new(); cohorts],
        }
    }

    /// One pooled [`RunResult`] per cohort, in cohort declaration order,
    /// over the measurement window `measured`. Float accumulations
    /// (offered load, energy) are folded in canonical order, so the
    /// result does not depend on which shard finished first.
    pub fn into_results(self, measured: SimDuration) -> Vec<RunResult> {
        self.hists
            .iter()
            .zip(&self.targets)
            .zip(&self.energies)
            .zip(&self.sends)
            .zip(&self.wakes)
            .zip(&self.truncated)
            .map(|(((((hist, targets), energies), sends), wakes), truncated)| {
                RunResult::from_histogram(
                    hist,
                    measured,
                    crate::topology::stable_sum(targets.clone()),
                    *sends,
                    *wakes,
                    crate::topology::stable_sum(energies.clone()),
                    *truncated,
                )
            })
            .collect()
    }
}

impl Collector for PerCohortCollector {
    fn on_latency(&mut self, node: usize, _stamp: SimTime, measured: SimDuration) {
        if let Some(c) = self.cohort_of[node] {
            self.hists[c].record(measured);
        }
    }

    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        let Some(c) = self.cohort_of[node] else { return };
        for (w, s) in self.wakes[c].iter_mut().zip(stats.wakes) {
            *w += s;
        }
        self.energies[c].push(stats.energy_core_secs);
        self.sends[c].late_sends += stats.sends.late_sends;
        self.sends[c].total_sends += stats.sends.total_sends;
        self.sends[c].total_slip += stats.sends.total_slip;
        self.truncated[c] += stats.truncated_inflight;
        self.targets[c].push(stats.target_qps);
    }
}

impl MergeCollector for PerCohortCollector {
    /// Folds the next shard's cohort partials into `self`. Shards
    /// partition the fleet but a cohort's members can span shards, so —
    /// unlike [`PerNodeCollector`] — merging accumulates rather than
    /// moves; stable shard order keeps the float folds canonical.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.cohort_of, other.cohort_of, "collectors cover different fleets");
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.wakes.iter_mut().zip(other.wakes) {
            for (w, s) in mine.iter_mut().zip(theirs) {
                *w += s;
            }
        }
        for (mine, theirs) in self.energies.iter_mut().zip(other.energies) {
            mine.extend_from_slice(&theirs);
        }
        for (mine, theirs) in self.sends.iter_mut().zip(other.sends) {
            mine.late_sends += theirs.late_sends;
            mine.total_sends += theirs.total_sends;
            mine.total_slip += theirs.total_slip;
        }
        for (mine, theirs) in self.truncated.iter_mut().zip(other.truncated) {
            *mine += theirs;
        }
        for (mine, theirs) in self.targets.iter_mut().zip(other.targets) {
            mine.extend_from_slice(&theirs);
        }
    }
}

/// Collects a bounded [`RunTrace`] for workload-fidelity diagnostics
/// (what [`crate::runtime::run_traced`] runs with).
#[derive(Debug)]
pub struct TraceCollector {
    trace: RunTrace,
    max_trace: usize,
    window_start: SimTime,
}

impl TraceCollector {
    /// A collector recording up to `max_trace` sends and latencies from
    /// the window starting at `window_start`.
    ///
    /// Pre-allocation is capped by `expected_sends` — an estimate from
    /// `qps × duration` — as well as by `max_trace` and a 1 Mi hard
    /// ceiling, so a short run with a huge `max_trace` does not reserve
    /// a million slots up front.
    pub fn new(
        max_trace: usize,
        window_start: SimTime,
        scheduled_gap: SimDuration,
        expected_sends: usize,
    ) -> Self {
        let cap = max_trace.min(expected_sends).min(1 << 20);
        TraceCollector {
            trace: RunTrace {
                wire_departures: Vec::with_capacity(cap),
                latencies_us: Vec::with_capacity(cap),
                scheduled_gap_us: scheduled_gap.as_us(),
            },
            max_trace,
            window_start,
        }
    }

    /// The collected trace.
    pub fn into_trace(self) -> RunTrace {
        self.trace
    }
}

impl Collector for TraceCollector {
    fn on_send(&mut self, _node: usize, conn: u32, due: SimTime, wire: SimTime) {
        if self.trace.wire_departures.len() < self.max_trace && due >= self.window_start {
            self.trace.wire_departures.push((conn, wire));
        }
    }

    fn on_latency(&mut self, _node: usize, _stamp: SimTime, measured: SimDuration) {
        if self.trace.latencies_us.len() < self.max_trace {
            self.trace.latencies_us.push(measured.as_us());
        }
    }
}

/// Forwards every hook to both collectors — composition for runs that
/// need two independent collections in one pass (e.g. per-node *and*
/// per-phase, which is what [`crate::runtime::run_phased`] does).
impl<A: Collector, B: Collector> Collector for (A, B) {
    #[inline]
    fn on_event(&mut self, now: SimTime) {
        self.0.on_event(now);
        self.1.on_event(now);
    }

    fn on_send(&mut self, node: usize, conn: u32, due: SimTime, wire: SimTime) {
        self.0.on_send(node, conn, due, wire);
        self.1.on_send(node, conn, due, wire);
    }

    fn on_latency(&mut self, node: usize, stamp: SimTime, measured: SimDuration) {
        self.0.on_latency(node, stamp, measured);
        self.1.on_latency(node, stamp, measured);
    }

    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        self.0.on_node_done(node, stats);
        self.1.on_node_done(node, stats);
    }

    fn on_hedge(&mut self, node: usize) {
        self.0.on_hedge(node);
        self.1.on_hedge(node);
    }
}

impl<A: MergeCollector, B: MergeCollector> MergeCollector for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

/// Pooled latency statistics of one phase of a run — the per-phase
/// counterpart of a [`RunResult`]'s latency block. A phase boundary that
/// changes machine state or load shows up as a regime change between
/// consecutive `PhaseStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase index in the collector's schedule.
    pub phase: usize,
    /// First instant of the phase, clamped to the measurement window.
    pub start: SimTime,
    /// First instant after the phase, clamped to the measurement window.
    pub end: SimTime,
    /// Requests stamped inside this phase (and the window).
    pub samples: u64,
    /// Mean end-to-end latency of the phase's requests.
    pub avg: SimDuration,
    /// Median latency of the phase's requests.
    pub p50: SimDuration,
    /// 99th-percentile latency of the phase's requests.
    pub p99: SimDuration,
    /// Largest latency of the phase's requests.
    pub max: SimDuration,
    /// Within-phase coefficient of variation (`std_dev / mean`; 0 when
    /// the phase is empty).
    pub cov: f64,
    /// Completions per second of phase time.
    pub achieved_qps: f64,
}

/// Buckets in-window latencies by the phase their request was *stamped*
/// in, yielding one [`PhaseStats`] per phase that overlaps the
/// measurement window.
///
/// Attribution is by send stamp, not completion: a request belongs to the
/// regime that produced it, even if its response lands after the next
/// boundary.
///
/// Sharded runs give every shard its own collector (built with
/// [`PhaseCollector::for_partition`], carrying the shard's canonical
/// content key) and fold them through [`MergeCollector`]. The merge does
/// **not** accumulate float state in fold order: absorbed partitions are
/// buffered and [`PhaseCollector::into_stats`] combines them in canonical
/// `(shard_key, shard_index)` order — the same enumeration-insensitivity
/// argument the aggregate's `finish_run` merge rests on — so the
/// per-phase Welford state (mean/CoV) is bit-identical whatever the
/// shard enumeration, worker count or steal schedule.
#[derive(Debug)]
pub struct PhaseCollector {
    schedule: PhaseSchedule,
    window_start: SimTime,
    window_end: SimTime,
    hists: Vec<LatencyHistogram>,
    /// Canonical merge rank of this collector's partition:
    /// `(shard content key, shard declaration index)` — the tiebreak
    /// mirrors the aggregate merge in `finish_run`. `(0, 0)` for the
    /// unsharded path.
    rank: (u64, usize),
    /// Partitions absorbed by [`MergeCollector::merge`], awaiting the
    /// canonical-order fold in [`PhaseCollector::into_stats`].
    absorbed: Vec<((u64, usize), Vec<LatencyHistogram>)>,
}

impl PhaseCollector {
    /// A collector bucketing by `schedule` over the measurement window
    /// `[window_start, window_end)`.
    ///
    /// # Panics
    ///
    /// Panics unless the window is non-empty.
    pub fn new(schedule: PhaseSchedule, window_start: SimTime, window_end: SimTime) -> Self {
        PhaseCollector::for_partition(schedule, window_start, window_end, 0, 0)
    }

    /// A per-shard collector for the partition with canonical content
    /// key `shard_key` and declaration index `shard` — what the sharded
    /// kernel hands each shard so merged per-phase stats fold in
    /// canonical order.
    ///
    /// # Panics
    ///
    /// Panics unless the window is non-empty.
    pub fn for_partition(
        schedule: PhaseSchedule,
        window_start: SimTime,
        window_end: SimTime,
        shard_key: u64,
        shard: usize,
    ) -> Self {
        assert!(window_start < window_end, "empty measurement window");
        let phases = schedule.phase_count();
        PhaseCollector {
            schedule,
            window_start,
            window_end,
            hists: (0..phases).map(|_| LatencyHistogram::new()).collect(),
            rank: (shard_key, shard),
            absorbed: Vec::new(),
        }
    }

    /// Per-phase statistics for every phase overlapping the window, in
    /// phase order.
    ///
    /// Any partitions absorbed through [`MergeCollector::merge`] are
    /// folded here, in canonical `(shard_key, shard_index)` order; with
    /// none absorbed (the unsharded and K=1 paths) the fold merges one
    /// partition into empty histograms, which is bit-exact.
    pub fn into_stats(self) -> Vec<PhaseStats> {
        let mut parts: Vec<((u64, usize), Vec<LatencyHistogram>)> =
            Vec::with_capacity(1 + self.absorbed.len());
        parts.push((self.rank, self.hists));
        parts.extend(self.absorbed);
        parts.sort_by_key(|&(rank, _)| rank);
        let mut hists: Vec<LatencyHistogram> =
            (0..self.schedule.phase_count()).map(|_| LatencyHistogram::new()).collect();
        for (_, part) in &parts {
            assert_eq!(part.len(), hists.len(), "merged phase collectors cover different schedules");
            for (acc, h) in hists.iter_mut().zip(part) {
                acc.merge(h);
            }
        }
        (0..self.schedule.phase_count())
            .filter_map(|p| {
                let start = self.schedule.phase_start(p).max(self.window_start);
                let end = self.schedule.phase_end(p).min(self.window_end);
                if start >= end {
                    return None;
                }
                let h = &hists[p];
                let mean = h.mean();
                let cov =
                    if h.count() == 0 || mean.is_zero() { 0.0 } else { h.std_dev().as_us() / mean.as_us() };
                Some(PhaseStats {
                    phase: p,
                    start,
                    end,
                    samples: h.count(),
                    avg: mean,
                    p50: h.median(),
                    p99: h.percentile(99.0),
                    max: h.max(),
                    cov,
                    achieved_qps: h.count() as f64 / end.since(start).as_secs(),
                })
            })
            .collect()
    }
}

impl Collector for PhaseCollector {
    fn on_latency(&mut self, _node: usize, stamp: SimTime, measured: SimDuration) {
        self.hists[self.schedule.phase_at(stamp)].record(measured);
    }
}

impl MergeCollector for PhaseCollector {
    /// Buffers `other`'s per-phase histograms (and anything it absorbed
    /// in turn) under its canonical rank. The float-sensitive fold is
    /// deferred to [`PhaseCollector::into_stats`], which sorts by
    /// `(shard_key, shard_index)` first — so the merged per-phase stats
    /// are independent of fold order, and therefore of shard
    /// enumeration, unlike an eager in-order histogram merge.
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.schedule, other.schedule, "merged phase collectors follow one schedule");
        self.absorbed.push((other.rank, other.hists));
        self.absorbed.extend(other.absorbed);
    }
}

/// What one client node did inside one observation window — the per-node
/// row of a [`WindowedObserver`] collection, and the signal a
/// [`crate::control::MitigationPolicy`] decides on.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWindow {
    /// Node declaration index.
    pub node: usize,
    /// Requests recorded for this node inside the window.
    pub samples: u64,
    /// The node's windowed 99th-percentile latency
    /// ([`SimDuration::ZERO`] when the window recorded nothing).
    pub p99: SimDuration,
    /// Completions per second of window time (0 when empty).
    pub achieved_qps: f64,
    /// The node's offered load during the window.
    pub target_qps: f64,
    /// Hedge legs fired for this node inside the window.
    pub hedges: u64,
}

/// What one server shard absorbed inside one observation window — the
/// per-shard row of a [`WindowedObserver`] collection.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWindow {
    /// Shard declaration index.
    pub shard: usize,
    /// Requests recorded against this shard inside the window.
    pub samples: u64,
    /// The shard's windowed 99th-percentile latency.
    pub p99: SimDuration,
    /// Completions per second of window time (0 when empty).
    pub achieved_qps: f64,
}

/// The controller's eyes: per-node *and* per-shard windowed latency
/// tails plus achieved rates, collected in one kernel pass.
///
/// Sharded runs give every shard its own observer (built with
/// [`WindowedObserver::for_partition`]); the fold mirrors
/// [`PhaseCollector`]'s canonical-order discipline. Per-node state moves
/// (shards partition the fleet, like [`PerNodeCollector`]); per-shard
/// histograms are buffered whole under their canonical
/// `(shard_key, shard_index)` rank and never cross-merged, so nothing in
/// the observation depends on fold order, worker count or steal
/// schedule. That is what lets a [`crate::control::MitigationPolicy`]
/// treat the observation as a pure function of the run.
#[derive(Debug)]
pub struct WindowedObserver {
    node_hists: Vec<LatencyHistogram>,
    node_stats: Vec<Option<NodeStats>>,
    hedges: Vec<u64>,
    shard_hist: LatencyHistogram,
    rank: (u64, usize),
    absorbed: Vec<((u64, usize), LatencyHistogram)>,
}

impl WindowedObserver {
    /// An observer for an unsharded topology of `nodes` client nodes.
    pub fn new(nodes: usize) -> Self {
        WindowedObserver::for_partition(nodes, 0, 0)
    }

    /// A per-shard observer for the partition with canonical content key
    /// `shard_key` and declaration index `shard` — pass this as the
    /// collector factory of
    /// [`crate::runtime::run_sharded_collected_with`].
    pub fn for_partition(nodes: usize, shard_key: u64, shard: usize) -> Self {
        WindowedObserver {
            node_hists: (0..nodes).map(|_| LatencyHistogram::new()).collect(),
            node_stats: vec![None; nodes],
            hedges: vec![0; nodes],
            shard_hist: LatencyHistogram::new(),
            rank: (shard_key, shard),
            absorbed: Vec::new(),
        }
    }

    /// Total hedge legs fired across the fleet.
    pub fn total_hedges(&self) -> u64 {
        self.hedges.iter().sum()
    }

    /// The windowed per-node and per-shard views, over a measurement
    /// window of length `measured`. Node rows come in declaration order,
    /// shard rows sorted by shard index; an empty window (first-boundary
    /// edge case: nothing recorded yet) yields zero-sample rows with
    /// [`SimDuration::ZERO`] tails rather than panicking, so a policy
    /// can treat "no signal" uniformly with "fast".
    pub fn into_windows(self, measured: SimDuration) -> (Vec<NodeWindow>, Vec<ShardWindow>) {
        let secs = measured.as_secs();
        let rate = |samples: u64| if secs > 0.0 { samples as f64 / secs } else { 0.0 };
        let nodes = self
            .node_hists
            .iter()
            .zip(&self.node_stats)
            .zip(&self.hedges)
            .enumerate()
            .map(|(node, ((hist, stats), &hedges))| NodeWindow {
                node,
                samples: hist.count(),
                p99: hist.percentile(99.0),
                achieved_qps: rate(hist.count()),
                target_qps: stats.as_ref().map_or(0.0, |s| s.target_qps),
                hedges,
            })
            .collect();
        let mut parts: Vec<((u64, usize), LatencyHistogram)> = Vec::with_capacity(1 + self.absorbed.len());
        parts.push((self.rank, self.shard_hist));
        parts.extend(self.absorbed);
        parts.sort_by_key(|&((key, shard), _)| (shard, key));
        let shards = parts
            .into_iter()
            .map(|((_, shard), hist)| ShardWindow {
                shard,
                samples: hist.count(),
                p99: hist.percentile(99.0),
                achieved_qps: rate(hist.count()),
            })
            .collect();
        (nodes, shards)
    }
}

impl Collector for WindowedObserver {
    fn on_latency(&mut self, node: usize, _stamp: SimTime, measured: SimDuration) {
        self.node_hists[node].record(measured);
        self.shard_hist.record(measured);
    }

    fn on_node_done(&mut self, node: usize, stats: &NodeStats) {
        self.node_stats[node] = Some(*stats);
    }

    fn on_hedge(&mut self, node: usize) {
        self.hedges[node] += 1;
    }
}

impl MergeCollector for WindowedObserver {
    /// Takes `other`'s finished nodes (disjoint across shards) and
    /// buffers its shard histogram whole under its canonical rank — no
    /// float state is ever folded across shards, so the observation is
    /// independent of merge order.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.node_hists.len(), other.node_hists.len(), "observers cover different fleets");
        for (i, (stats, (hist, hedges))) in
            other.node_stats.into_iter().zip(other.node_hists.into_iter().zip(other.hedges)).enumerate()
        {
            if stats.is_some() {
                assert!(self.node_stats[i].is_none(), "node {i} finished on two shards");
                self.node_stats[i] = stats;
                self.node_hists[i] = hist;
            }
            self.hedges[i] += hedges;
        }
        self.absorbed.push((other.rank, other.shard_hist));
        self.absorbed.extend(other.absorbed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_preallocation_is_bounded_by_the_send_estimate() {
        // A short run cannot justify a 1 Mi reservation even when the
        // caller asks to trace "everything".
        let c = TraceCollector::new(1 << 20, SimTime::ZERO, SimDuration::from_us(100), 1_200);
        assert!(c.trace.wire_departures.capacity() <= 1_200);
        assert!(c.trace.latencies_us.capacity() <= 1_200);
        // And max_trace still caps below the estimate.
        let c = TraceCollector::new(64, SimTime::ZERO, SimDuration::from_us(100), 1_200);
        assert!(c.trace.wire_departures.capacity() <= 64);
    }

    #[test]
    fn trace_collector_respects_window_and_bound() {
        let mut c = TraceCollector::new(2, SimTime::from_ms(1), SimDuration::from_us(10), 100);
        // Before the window: ignored.
        c.on_send(0, 0, SimTime::from_us(10), SimTime::from_us(12));
        assert!(c.trace.wire_departures.is_empty());
        c.on_send(0, 1, SimTime::from_ms(2), SimTime::from_ms(2));
        c.on_send(0, 2, SimTime::from_ms(3), SimTime::from_ms(3));
        c.on_send(0, 3, SimTime::from_ms(4), SimTime::from_ms(4));
        assert_eq!(c.trace.wire_departures.len(), 2, "bounded at max_trace");
        c.on_latency(0, SimTime::from_ms(2), SimDuration::from_us(50));
        c.on_latency(0, SimTime::from_ms(3), SimDuration::from_us(60));
        c.on_latency(0, SimTime::from_ms(4), SimDuration::from_us(70));
        let trace = c.into_trace();
        assert_eq!(trace.latencies_us, vec![50.0, 60.0]);
        assert_eq!(trace.scheduled_gap_us, 10.0);
    }

    #[test]
    fn null_collector_is_inert() {
        let mut c = NullCollector;
        c.on_send(0, 0, SimTime::ZERO, SimTime::ZERO);
        c.on_latency(0, SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn phase_collector_buckets_by_stamp_and_clamps_to_window() {
        let schedule = PhaseSchedule::new(vec![SimTime::from_ms(10)]);
        let mut c = PhaseCollector::new(schedule, SimTime::from_ms(2), SimTime::from_ms(20));
        // Two fast requests in phase 0, two slow ones in phase 1.
        c.on_latency(0, SimTime::from_ms(3), SimDuration::from_us(50));
        c.on_latency(0, SimTime::from_ms(9), SimDuration::from_us(60));
        c.on_latency(1, SimTime::from_ms(10), SimDuration::from_us(200));
        c.on_latency(0, SimTime::from_ms(15), SimDuration::from_us(300));
        let stats = c.into_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].phase, 0);
        assert_eq!((stats[0].start, stats[0].end), (SimTime::from_ms(2), SimTime::from_ms(10)));
        assert_eq!(stats[0].samples, 2);
        assert!(stats[0].p99 <= SimDuration::from_us(70));
        assert_eq!((stats[1].start, stats[1].end), (SimTime::from_ms(10), SimTime::from_ms(20)));
        assert_eq!(stats[1].samples, 2);
        // The boundary is visible as a latency regime change.
        assert!(stats[1].p50 > stats[0].p50 * 2);
        // Achieved rate uses phase time: 2 samples over 8 ms and 10 ms.
        assert!((stats[0].achieved_qps - 250.0).abs() < 1.0);
        assert!((stats[1].achieved_qps - 200.0).abs() < 1.0);
    }

    #[test]
    fn phase_collector_skips_phases_outside_the_window() {
        let schedule = PhaseSchedule::new(vec![SimTime::from_ms(5), SimTime::from_ms(50)]);
        let c = PhaseCollector::new(schedule, SimTime::from_ms(10), SimTime::from_ms(40));
        let stats = c.into_stats();
        // Phase 0 ends before the window opens; phase 2 starts after it
        // closes: only phase 1 remains, empty but well-formed.
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].phase, 1);
        assert_eq!(stats[0].samples, 0);
        assert_eq!(stats[0].cov, 0.0);
    }

    fn node_stats(target_qps: f64, energy: f64) -> NodeStats {
        NodeStats {
            wakes: [3, 2, 1, 0],
            energy_core_secs: energy,
            sends: tpv_loadgen::SendStats {
                late_sends: 1,
                total_sends: 10,
                total_slip: SimDuration::from_us(5),
            },
            truncated_inflight: 2,
            target_qps,
            measured: SimDuration::from_ms(10),
        }
    }

    #[test]
    fn per_cohort_collector_pools_members_and_skips_explicit_nodes() {
        // Nodes 0 (explicit), 1 and 2 (cohort 0), 3 (cohort 1).
        let map = vec![None, Some(0), Some(0), Some(1)];
        let mut c = PerCohortCollector::new(map, 2);
        c.on_latency(0, SimTime::ZERO, SimDuration::from_us(999));
        c.on_latency(1, SimTime::ZERO, SimDuration::from_us(50));
        c.on_latency(2, SimTime::ZERO, SimDuration::from_us(70));
        c.on_latency(3, SimTime::ZERO, SimDuration::from_us(200));
        c.on_node_done(0, &node_stats(1_000.0, 9.0));
        c.on_node_done(1, &node_stats(2_000.0, 1.0));
        c.on_node_done(2, &node_stats(3_000.0, 2.0));
        c.on_node_done(3, &node_stats(4_000.0, 4.0));
        let results = c.into_results(SimDuration::from_ms(10));
        assert_eq!(results.len(), 2);
        // Cohort 0 pools nodes 1 and 2; the explicit node never leaks in.
        assert_eq!(results[0].samples, 2);
        assert_eq!(results[0].target_qps, 5_000.0);
        assert_eq!(results[0].client_wakes, [6, 4, 2, 0]);
        assert_eq!(results[0].client_energy_core_secs, 3.0);
        assert_eq!(results[0].late_send_fraction, 0.1);
        assert_eq!(results[0].truncated_inflight, 4);
        assert_eq!(results[1].samples, 1);
        assert_eq!(results[1].target_qps, 4_000.0);
    }

    #[test]
    fn per_cohort_merge_is_canonical_when_members_span_shards() {
        // Cohort 0's two members land on different shards.
        let map = vec![Some(0), Some(0)];
        let observe = |order: [usize; 2], qps: [f64; 2]| {
            let mut shards: Vec<PerCohortCollector> =
                (0..2).map(|_| PerCohortCollector::new(map.clone(), 1)).collect();
            for (shard, node) in order.into_iter().enumerate() {
                shards[shard].on_latency(node, SimTime::ZERO, SimDuration::from_us(40 + 10 * node as u64));
                shards[shard].on_node_done(node, &node_stats(qps[node], 0.1 + node as f64));
            }
            // Fold in stable shard order, as run_sharded_collected does.
            let mut iter = shards.into_iter();
            let mut merged = iter.next().unwrap();
            for s in iter {
                merged.merge(s);
            }
            merged.into_results(SimDuration::from_ms(10))
        };
        // Which shard hosts which member must not change the pooled result.
        let a = observe([0, 1], [2_000.0, 3_000.0]);
        let b = observe([1, 0], [2_000.0, 3_000.0]);
        assert_eq!(a, b);
        assert_eq!(a[0].samples, 2);
        assert_eq!(a[0].target_qps, 5_000.0);
    }

    #[test]
    #[should_panic(expected = "cohort map points past the cohort list")]
    fn per_cohort_collector_rejects_out_of_range_map() {
        let _ = PerCohortCollector::new(vec![Some(1)], 1);
    }

    #[test]
    fn windowed_observer_empty_window_yields_zero_rows() {
        // First-boundary edge case: the window closed before anything
        // recorded. The observation must be well-formed zeros, not a panic.
        let obs = WindowedObserver::new(2);
        let (nodes, shards) = obs.into_windows(SimDuration::from_ms(10));
        assert_eq!(nodes.len(), 2);
        for n in &nodes {
            assert_eq!(n.samples, 0);
            assert_eq!(n.p99, SimDuration::ZERO);
            assert_eq!(n.achieved_qps, 0.0);
            assert_eq!(n.hedges, 0);
        }
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].samples, 0);
        assert_eq!(shards[0].p99, SimDuration::ZERO);
    }

    #[test]
    fn windowed_observer_single_sample_p99_is_that_sample() {
        // One sample in the window: the percentile clamps to the exact
        // observed value, not a bucket bound past it.
        let mut obs = WindowedObserver::new(1);
        obs.on_latency(0, SimTime::from_ms(1), SimDuration::from_us(137));
        let (nodes, shards) = obs.into_windows(SimDuration::from_ms(10));
        assert_eq!(nodes[0].samples, 1);
        assert_eq!(nodes[0].p99, SimDuration::from_us(137));
        assert_eq!(shards[0].p99, SimDuration::from_us(137));
        assert!((nodes[0].achieved_qps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_observer_merge_is_canonical_and_counts_hedges() {
        let observe = |order: [usize; 2]| {
            let mut parts: Vec<WindowedObserver> =
                (0..2).map(|shard| WindowedObserver::for_partition(2, 100 + shard as u64, shard)).collect();
            for (shard, node) in order.into_iter().enumerate() {
                parts[shard].on_latency(node, SimTime::ZERO, SimDuration::from_us(40 + 10 * node as u64));
                parts[shard].on_hedge(node);
                parts[shard].on_node_done(node, &node_stats(2_000.0, 0.5));
            }
            let mut iter = parts.into_iter();
            let mut merged = iter.next().unwrap();
            for p in iter {
                merged.merge(p);
            }
            assert_eq!(merged.total_hedges(), 2);
            merged.into_windows(SimDuration::from_ms(10))
        };
        // Which shard hosts which node must not change the observation.
        let a = observe([0, 1]);
        let b = observe([1, 0]);
        assert_eq!(a.0, b.0);
        // Shard rows follow the shard index, not the fold order...
        assert_eq!(a.1.iter().map(|s| s.shard).collect::<Vec<_>>(), vec![0, 1]);
        // ...but swap their contents with the hosting (node 0's sample
        // follows node 0 to the other shard).
        assert_eq!(a.1[0].samples, 1);
        assert_eq!(a.1[0].p99, SimDuration::from_us(40));
        assert_eq!(b.1[0].p99, SimDuration::from_us(50));
        assert_eq!(a.0[0].hedges, 1);
    }

    #[test]
    fn pair_collector_feeds_both_halves() {
        let mut pair = (
            PerNodeCollector::new(1),
            PhaseCollector::new(PhaseSchedule::single(), SimTime::ZERO, SimTime::from_ms(10)),
        );
        pair.on_latency(0, SimTime::from_ms(1), SimDuration::from_us(70));
        let (per_node, phases) = pair;
        assert_eq!(per_node.hists[0].count(), 1);
        assert_eq!(phases.into_stats()[0].samples, 1);
    }
}
