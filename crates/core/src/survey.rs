//! The literature survey of Table I.
//!
//! "Table I surveys the client- and server-side hardware configuration in
//! recent publications (from the years 2021, 2022, and 2023) across
//! various system and architecture conferences, including ISPASS, IISWC
//! and MICRO. We find that only 10 % of the papers studied specify the
//! client-side hardware configuration."
//!
//! The paper does not name the surveyed publications; entries here are
//! anonymized (venue class + year) and reproduce the table's counts
//! exactly: 0 client-only, 8 server-only, 2 both, 10 none — 20 total.

/// What a publication's experimental-setup section characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Characterization {
    /// Client hardware only.
    ClientOnly,
    /// Server hardware only.
    ServerOnly,
    /// Both client and server hardware.
    ClientAndServer,
    /// Neither.
    None,
}

impl std::fmt::Display for Characterization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Characterization::ClientOnly => write!(f, "Client only"),
            Characterization::ServerOnly => write!(f, "Server only"),
            Characterization::ClientAndServer => write!(f, "Client and server"),
            Characterization::None => write!(f, "None"),
        }
    }
}

/// An anonymized surveyed publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyedPaper {
    /// Publication year (2021–2023 in the paper's survey).
    pub year: u16,
    /// Venue class (systems/architecture conference).
    pub venue: &'static str,
    /// What its evaluation section characterizes.
    pub characterization: Characterization,
}

/// The 20 surveyed publications (anonymized).
pub fn surveyed_papers() -> Vec<SurveyedPaper> {
    use Characterization::*;
    let spec: [(u16, &'static str, Characterization); 20] = [
        (2021, "MICRO", ServerOnly),
        (2021, "IISWC", ServerOnly),
        (2021, "ISPASS", None),
        (2021, "MICRO", None),
        (2021, "IISWC", ClientAndServer),
        (2021, "ISPASS", ServerOnly),
        (2021, "MICRO", None),
        (2022, "IISWC", ServerOnly),
        (2022, "ISPASS", None),
        (2022, "MICRO", ServerOnly),
        (2022, "IISWC", None),
        (2022, "ISPASS", ServerOnly),
        (2022, "MICRO", None),
        (2022, "IISWC", ClientAndServer),
        (2023, "ISPASS", None),
        (2023, "MICRO", ServerOnly),
        (2023, "IISWC", None),
        (2023, "ISPASS", ServerOnly),
        (2023, "MICRO", None),
        (2023, "IISWC", None),
    ];
    spec.iter()
        .map(|&(year, venue, characterization)| SurveyedPaper { year, venue, characterization })
        .collect()
}

/// Table I: counts per characterization.
pub fn table_i_counts() -> Vec<(Characterization, usize)> {
    let papers = surveyed_papers();
    let count = |c: Characterization| papers.iter().filter(|p| p.characterization == c).count();
    vec![
        (Characterization::ClientOnly, count(Characterization::ClientOnly)),
        (Characterization::ServerOnly, count(Characterization::ServerOnly)),
        (Characterization::ClientAndServer, count(Characterization::ClientAndServer)),
        (Characterization::None, count(Characterization::None)),
    ]
}

/// The survey's headline: the fraction of papers specifying the
/// client-side configuration.
pub fn client_specified_fraction() -> f64 {
    let papers = surveyed_papers();
    let specified = papers
        .iter()
        .filter(|p| {
            matches!(p.characterization, Characterization::ClientOnly | Characterization::ClientAndServer)
        })
        .count();
    specified as f64 / papers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_table_i_exactly() {
        let counts = table_i_counts();
        assert_eq!(counts[0], (Characterization::ClientOnly, 0));
        assert_eq!(counts[1], (Characterization::ServerOnly, 8));
        assert_eq!(counts[2], (Characterization::ClientAndServer, 2));
        assert_eq!(counts[3], (Characterization::None, 10));
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn ten_percent_specify_the_client() {
        assert!((client_specified_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn survey_covers_2021_to_2023() {
        let papers = surveyed_papers();
        assert!(papers.iter().all(|p| (2021..=2023).contains(&p.year)));
        let venues: std::collections::HashSet<_> = papers.iter().map(|p| p.venue).collect();
        assert!(venues.contains("ISPASS") && venues.contains("IISWC") && venues.contains("MICRO"));
    }

    #[test]
    fn display_names_match_the_table() {
        assert_eq!(Characterization::ClientAndServer.to_string(), "Client and server");
        assert_eq!(Characterization::None.to_string(), "None");
    }
}
